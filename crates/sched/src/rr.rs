//! Round-robin dispatch of incoming calls to local schedulers (§5.1).

use std::sync::atomic::{AtomicUsize, Ordering};

use faasm_net::HostId;
use parking_lot::RwLock;

/// A thread-safe round-robin rotation over the cluster's runtime instances —
/// the stand-in for the unmodified platform ingress that "sends calls
/// round-robin to local schedulers".
#[derive(Debug, Default)]
pub struct RoundRobin {
    hosts: RwLock<Vec<HostId>>,
    next: AtomicUsize,
}

impl RoundRobin {
    /// An empty rotation.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }

    /// A rotation over `hosts`.
    pub fn with_hosts(hosts: Vec<HostId>) -> RoundRobin {
        RoundRobin {
            hosts: RwLock::new(hosts),
            next: AtomicUsize::new(0),
        }
    }

    /// Add a host to the rotation (scale-up).
    pub fn add(&self, host: HostId) {
        let mut hosts = self.hosts.write();
        if !hosts.contains(&host) {
            hosts.push(host);
        }
    }

    /// Remove a host (scale-down or failure); returns whether it was
    /// present.
    pub fn remove(&self, host: HostId) -> bool {
        let mut hosts = self.hosts.write();
        let before = hosts.len();
        hosts.retain(|h| *h != host);
        hosts.len() != before
    }

    /// Number of hosts in rotation.
    pub fn len(&self) -> usize {
        self.hosts.read().len()
    }

    /// True if no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.hosts.read().is_empty()
    }

    /// The next host in rotation, or `None` if empty.
    pub fn next(&self) -> Option<HostId> {
        let hosts = self.hosts.read();
        if hosts.is_empty() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        Some(hosts[i % hosts.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_in_order() {
        let rr = RoundRobin::with_hosts(vec![HostId(0), HostId(1), HostId(2)]);
        let picks: Vec<HostId> = (0..6).map(|_| rr.next().unwrap()).collect();
        assert_eq!(
            picks,
            vec![
                HostId(0),
                HostId(1),
                HostId(2),
                HostId(0),
                HostId(1),
                HostId(2)
            ]
        );
    }

    #[test]
    fn empty_yields_none() {
        let rr = RoundRobin::new();
        assert!(rr.next().is_none());
        assert!(rr.is_empty());
    }

    #[test]
    fn add_remove() {
        let rr = RoundRobin::new();
        rr.add(HostId(5));
        rr.add(HostId(5));
        assert_eq!(rr.len(), 1);
        assert_eq!(rr.next(), Some(HostId(5)));
        assert!(rr.remove(HostId(5)));
        assert!(!rr.remove(HostId(5)));
        assert!(rr.next().is_none());
    }

    #[test]
    fn concurrent_next_spreads_evenly() {
        let rr = std::sync::Arc::new(RoundRobin::with_hosts(vec![
            HostId(0),
            HostId(1),
            HostId(2),
            HostId(3),
        ]));
        let mut handles = vec![];
        for _ in 0..4 {
            let rr = rr.clone();
            handles.push(std::thread::spawn(move || {
                let mut counts = [0usize; 4];
                for _ in 0..1000 {
                    counts[rr.next().unwrap().0 as usize] += 1;
                }
                counts
            }));
        }
        let mut total = [0usize; 4];
        for h in handles {
            let c = h.join().unwrap();
            for i in 0..4 {
                total[i] += c[i];
            }
        }
        assert_eq!(total.iter().sum::<usize>(), 4000);
        for &c in &total {
            assert_eq!(c, 1000, "perfectly even under atomic rotation: {total:?}");
        }
    }
}
