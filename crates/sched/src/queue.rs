//! Per-instance sharing queues (Fig. 5).
//!
//! Each runtime instance owns a bounded queue of calls shared with it by
//! other hosts' schedulers. Bounding matters: an unbounded queue would hide
//! overload, whereas the paper's design degrades to cold starts when warm
//! capacity is exhausted.

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};

use crate::types::CallSpec;

/// A bounded multi-producer multi-consumer queue of shared calls.
#[derive(Debug, Clone)]
pub struct SharingQueue {
    tx: Sender<CallSpec>,
    rx: Receiver<CallSpec>,
    capacity: usize,
}

impl SharingQueue {
    /// A queue holding at most `capacity` pending calls.
    pub fn new(capacity: usize) -> SharingQueue {
        let (tx, rx) = bounded(capacity.max(1));
        SharingQueue {
            tx,
            rx,
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending calls.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no calls are pending.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Offer a call; returns it back if the queue is full (caller falls back
    /// to a cold start).
    pub fn offer(&self, call: CallSpec) -> Result<(), CallSpec> {
        match self.tx.try_send(call) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => Err(c),
        }
    }

    /// Take the next call if one is pending.
    pub fn take(&self) -> Option<CallSpec> {
        match self.rx.try_recv() {
            Ok(c) => Some(c),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Block up to `timeout` for the next call.
    pub fn take_timeout(&self, timeout: std::time::Duration) -> Option<CallSpec> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CallId;

    fn call(n: u64) -> CallSpec {
        CallSpec {
            id: CallId(n),
            user: "u".into(),
            function: "f".into(),
            input: vec![],
            trace: crate::types::TraceCtx::NONE,
        }
    }

    #[test]
    fn fifo_order() {
        let q = SharingQueue::new(4);
        q.offer(call(1)).unwrap();
        q.offer(call(2)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.take().unwrap().id, CallId(1));
        assert_eq!(q.take().unwrap().id, CallId(2));
        assert!(q.take().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_returns_call() {
        let q = SharingQueue::new(1);
        q.offer(call(1)).unwrap();
        let back = q.offer(call(2)).unwrap_err();
        assert_eq!(back.id, CallId(2));
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn take_timeout_waits() {
        let q = SharingQueue::new(2);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            q2.offer(call(9)).unwrap();
        });
        let got = q
            .take_timeout(std::time::Duration::from_millis(500))
            .unwrap();
        assert_eq!(got.id, CallId(9));
        t.join().unwrap();
        assert!(q
            .take_timeout(std::time::Duration::from_millis(5))
            .is_none());
    }

    #[test]
    fn multiple_consumers_split_work() {
        let q = SharingQueue::new(64);
        for i in 0..50 {
            q.offer(call(i)).unwrap();
        }
        let q1 = q.clone();
        let q2 = q.clone();
        let t1 = std::thread::spawn(move || std::iter::from_fn(|| q1.take()).count());
        let t2 = std::thread::spawn(move || std::iter::from_fn(|| q2.take()).count());
        let total = t1.join().unwrap() + t2.join().unwrap();
        assert_eq!(total, 50);
    }
}
