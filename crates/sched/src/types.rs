//! Function-call types shared by the scheduler, runtime and message bus.

use bytes::{Buf, BufMut};
pub use faasm_telemetry::TraceCtx;

/// A unique call identifier, as returned by `chain_call` (Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId(pub u64);

impl std::fmt::Display for CallId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "call-{}", self.0)
    }
}

/// A function invocation request travelling through the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSpec {
    /// The call id.
    pub id: CallId,
    /// Owning user/tenant (namespaces functions and files).
    pub user: String,
    /// Function name ("users' functions have unique names", §3.2).
    pub function: String,
    /// Input data as a byte array — the generic, language-agnostic
    /// interface of §3.2.
    pub input: Vec<u8>,
    /// The ingress call's trace context ([`TraceCtx::NONE`] for untraced
    /// calls): rides the call across forwards and batch dispatch so every
    /// tier's spans link back to one trace.
    pub trace: TraceCtx,
}

/// Terminal status of a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallStatus {
    /// Completed with a return code of zero.
    Success,
    /// Completed with a non-zero return code.
    Failed(i32),
    /// Trapped or errored in the runtime; carries the message.
    Error(String),
}

/// The result of a completed call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallResult {
    /// The call this result belongs to.
    pub id: CallId,
    /// Terminal status.
    pub status: CallStatus,
    /// Output data written by `write_call_output`.
    pub output: Vec<u8>,
}

impl CallResult {
    /// A successful result.
    pub fn success(id: CallId, output: Vec<u8>) -> CallResult {
        CallResult {
            id,
            status: CallStatus::Success,
            output,
        }
    }

    /// An errored result.
    pub fn error(id: CallId, msg: impl Into<String>) -> CallResult {
        CallResult {
            id,
            status: CallStatus::Error(msg.into()),
            output: Vec::new(),
        }
    }

    /// The return code convention used by `await_call`: 0 success, guest
    /// code for `Failed`, -1 for runtime errors.
    pub fn return_code(&self) -> i32 {
        match &self.status {
            CallStatus::Success => 0,
            CallStatus::Failed(code) => *code,
            CallStatus::Error(_) => -1,
        }
    }
}

/// Encode a call spec for the fabric (used when sharing work across hosts).
pub fn encode_call(call: &CallSpec) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u64_le(call.id.0);
    out.put_u64_le(call.trace.trace_id);
    out.put_u64_le(call.trace.span_id);
    out.put_u32_le(call.user.len() as u32);
    out.put_slice(call.user.as_bytes());
    out.put_u32_le(call.function.len() as u32);
    out.put_slice(call.function.as_bytes());
    out.put_u32_le(call.input.len() as u32);
    out.put_slice(&call.input);
    out
}

/// Decode a call spec from the fabric.
pub fn decode_call(mut buf: &[u8]) -> Option<CallSpec> {
    if buf.remaining() < 24 {
        return None;
    }
    let id = CallId(buf.get_u64_le());
    let trace = TraceCtx {
        trace_id: buf.get_u64_le(),
        span_id: buf.get_u64_le(),
    };
    let user = get_string(&mut buf)?;
    let function = get_string(&mut buf)?;
    let input = get_blob(&mut buf)?;
    if buf.has_remaining() {
        return None;
    }
    Some(CallSpec {
        id,
        user,
        function,
        input,
        trace,
    })
}

/// Encode a call result for the fabric.
pub fn encode_result(r: &CallResult) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u64_le(r.id.0);
    match &r.status {
        CallStatus::Success => out.put_u8(0),
        CallStatus::Failed(code) => {
            out.put_u8(1);
            out.put_i32_le(*code);
        }
        CallStatus::Error(msg) => {
            out.put_u8(2);
            out.put_u32_le(msg.len() as u32);
            out.put_slice(msg.as_bytes());
        }
    }
    out.put_u32_le(r.output.len() as u32);
    out.put_slice(&r.output);
    out
}

/// Decode a call result from the fabric.
pub fn decode_result(mut buf: &[u8]) -> Option<CallResult> {
    if buf.remaining() < 9 {
        return None;
    }
    let id = CallId(buf.get_u64_le());
    let status = match buf.get_u8() {
        0 => CallStatus::Success,
        1 => {
            if buf.remaining() < 4 {
                return None;
            }
            CallStatus::Failed(buf.get_i32_le())
        }
        2 => {
            let msg = get_string(&mut buf)?;
            CallStatus::Error(msg)
        }
        _ => return None,
    };
    let output = get_blob(&mut buf)?;
    if buf.has_remaining() {
        return None;
    }
    Some(CallResult { id, status, output })
}

fn get_blob(buf: &mut &[u8]) -> Option<Vec<u8>> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    Some(v)
}

fn get_string(buf: &mut &[u8]) -> Option<String> {
    String::from_utf8(get_blob(buf)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let call = CallSpec {
            id: CallId(42),
            user: "alice".into(),
            function: "sgd_main".into(),
            input: vec![1, 2, 3],
            trace: TraceCtx::NONE,
        };
        assert_eq!(decode_call(&encode_call(&call)), Some(call.clone()));
        // A traced call carries its context across the fabric untouched.
        let traced = CallSpec {
            trace: TraceCtx {
                trace_id: 7,
                span_id: 9,
            },
            ..call
        };
        assert_eq!(decode_call(&encode_call(&traced)), Some(traced));
    }

    #[test]
    fn result_roundtrips_all_statuses() {
        for status in [
            CallStatus::Success,
            CallStatus::Failed(7),
            CallStatus::Error("trap: out of fuel".into()),
        ] {
            let r = CallResult {
                id: CallId(1),
                status,
                output: b"out".to_vec(),
            };
            assert_eq!(decode_result(&encode_result(&r)), Some(r));
        }
    }

    #[test]
    fn return_codes() {
        assert_eq!(CallResult::success(CallId(1), vec![]).return_code(), 0);
        assert_eq!(
            CallResult {
                id: CallId(1),
                status: CallStatus::Failed(3),
                output: vec![]
            }
            .return_code(),
            3
        );
        assert_eq!(CallResult::error(CallId(1), "x").return_code(), -1);
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(decode_call(&[]), None);
        assert_eq!(decode_result(&[]), None);
        let good = encode_call(&CallSpec {
            id: CallId(1),
            user: "u".into(),
            function: "f".into(),
            input: vec![9; 10],
            trace: TraceCtx::NONE,
        });
        for cut in 1..good.len() {
            assert!(decode_call(&good[..cut]).is_none(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_call(&trailing).is_none());
    }
}
