//! Omega-style distributed shared-state scheduling (§5.1).
//!
//! FAASM schedules without modifying the underlying platform's scheduler:
//! an external dispatcher round-robins calls to local schedulers; each local
//! scheduler consults the **warm sets** held in the global tier and either
//! runs the call in a warm local Faaslet, forwards it to another warm host's
//! **sharing queue**, or cold-starts a new Faaslet. This crate provides the
//! pieces (call types + wire codec, warm sets, the placement decision, the
//! bounded sharing queue, a round-robin dispatcher); `faasm-core` wires them
//! to actual Faaslet pools.

#![warn(missing_docs)]

pub mod boards;
pub mod decide;
pub mod queue;
pub mod rr;
pub mod types;
pub mod warm;

pub use boards::SchedBoards;
pub use decide::{decide, Decision, Placement};
pub use queue::SharingQueue;
pub use rr::RoundRobin;
pub use types::{
    decode_call, decode_result, encode_call, encode_result, CallId, CallResult, CallSpec,
    CallStatus,
};
// Re-exported so consumers building `CallSpec`s can name the trace context
// without depending on the telemetry crate directly.
pub use types::TraceCtx;
pub use warm::WarmSets;
