//! Shared scheduling boards: peer load and state affinity.
//!
//! Two gossip surfaces the local scheduling decision and the ingress tier
//! read when choosing a host:
//!
//! * **Load board** — every host publishes its run-queue depth; a
//!   forwarding host picks the least-loaded warm peer instead of blind
//!   rotation.
//! * **Affinity board** — hosts running a function with a warm state cache
//!   report how much of the function's working set their cache served
//!   (per-call cache-hit counts from the function-side cache). Placement
//!   prefers hosts whose caches already hold the function's hot keys —
//!   state-locality scheduling: the call moves to the data, not the data to
//!   the call. The board also keeps the function's hot keys themselves, so
//!   diagnostics can map a working set to the shards that own it.
//!
//! Both boards are advisory: scores decay as new reports fold in (an EWMA,
//! so a host that stops serving a function fades), absent entries read as
//! zero, and the decision's correctness never depends on board freshness.

use std::collections::HashMap;

use faasm_net::HostId;
use parking_lot::RwLock;

/// Hot keys retained per function on the affinity board.
const HOT_KEYS_PER_FN: usize = 64;

/// One function's affinity state.
#[derive(Debug, Default)]
struct FnAffinity {
    /// EWMA of per-call cache-hit weight, per host.
    hosts: HashMap<HostId, u64>,
    /// Decayed hit counts for the function's hottest keys.
    keys: HashMap<String, u64>,
}

/// Shared scheduling boards — see the module docs. One per cluster,
/// published to every instance and the ingress tier.
#[derive(Debug, Default)]
pub struct SchedBoards {
    depths: RwLock<HashMap<HostId, usize>>,
    affinity: RwLock<HashMap<(String, String), FnAffinity>>,
}

impl SchedBoards {
    /// An empty board set.
    pub fn new() -> SchedBoards {
        SchedBoards::default()
    }

    /// Publish this host's current run-queue depth.
    pub fn publish_depth(&self, host: HostId, depth: usize) {
        self.depths.write().insert(host, depth);
    }

    /// Known queue depths for `hosts`, in input order (unpublished hosts
    /// are omitted — unknown reads as zero at the decision).
    pub fn depths(&self, hosts: &[HostId]) -> Vec<(HostId, usize)> {
        let depths = self.depths.read();
        hosts
            .iter()
            .filter_map(|h| depths.get(h).map(|&d| (*h, d)))
            .collect()
    }

    /// Fold one call's cache-touch report into the function's affinity:
    /// the host's score moves as an EWMA of the call's total cache-hit
    /// weight (`new = old*3/4 + weight`, so it is bounded and self-decays),
    /// and the touched keys fold into the function's hot-key set the same
    /// way.
    pub fn report_affinity(
        &self,
        user: &str,
        function: &str,
        host: HostId,
        touched: &[(String, u64)],
    ) {
        let weight: u64 = touched.iter().map(|(_, n)| n).sum();
        let mut board = self.affinity.write();
        let f = board
            .entry((user.to_string(), function.to_string()))
            .or_default();
        let slot = f.hosts.entry(host).or_insert(0);
        *slot = *slot - *slot / 4 + weight;
        for (key, n) in touched {
            let slot = f.keys.entry(key.clone()).or_insert(0);
            *slot = *slot - *slot / 4 + n;
        }
        if f.keys.len() > HOT_KEYS_PER_FN {
            // Keep only the hottest keys; the map stays bounded per
            // function regardless of working-set churn.
            let mut counts: Vec<u64> = f.keys.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let cutoff = counts[HOT_KEYS_PER_FN - 1];
            f.keys.retain(|_, v| *v >= cutoff);
        }
    }

    /// Known affinity scores for `hosts`, in input order (hosts with no
    /// score are omitted — absent reads as zero at the decision).
    pub fn affinities(&self, user: &str, function: &str, hosts: &[HostId]) -> Vec<(HostId, u64)> {
        let board = self.affinity.read();
        let Some(f) = board.get(&(user.to_string(), function.to_string())) else {
            return Vec::new();
        };
        hosts
            .iter()
            .filter_map(|h| f.hosts.get(h).map(|&a| (*h, a)))
            .collect()
    }

    /// The function's hottest keys (score-descending, then by key), and the
    /// global-tier shard each would route to under `shard_count` shards —
    /// the hot-key → owning-shard map behind the affinity signal.
    pub fn hot_key_shards(
        &self,
        user: &str,
        function: &str,
        shard_count: usize,
    ) -> Vec<(String, u64, usize)> {
        let board = self.affinity.read();
        let Some(f) = board.get(&(user.to_string(), function.to_string())) else {
            return Vec::new();
        };
        let mut keys: Vec<(String, u64, usize)> = f
            .keys
            .iter()
            .map(|(k, &n)| (k.clone(), n, faasm_kvs::shard_index_for(k, shard_count)))
            .collect();
        keys.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depths_publish_and_read() {
        let b = SchedBoards::new();
        b.publish_depth(HostId(1), 3);
        b.publish_depth(HostId(2), 0);
        assert_eq!(
            b.depths(&[HostId(1), HostId(2), HostId(9)]),
            vec![(HostId(1), 3), (HostId(2), 0)]
        );
        b.publish_depth(HostId(1), 7); // latest wins
        assert_eq!(b.depths(&[HostId(1)]), vec![(HostId(1), 7)]);
    }

    #[test]
    fn affinity_accumulates_and_decays() {
        let b = SchedBoards::new();
        let touched = [("u/k".to_string(), 8u64)];
        b.report_affinity("u", "f", HostId(1), &touched);
        let a1 = b.affinities("u", "f", &[HostId(1)])[0].1;
        assert_eq!(a1, 8);
        // Repeated reports converge (EWMA bound = 4 × weight), never grow
        // without bound.
        for _ in 0..64 {
            b.report_affinity("u", "f", HostId(1), &touched);
        }
        let a2 = b.affinities("u", "f", &[HostId(1)])[0].1;
        assert!(a2 <= 32, "EWMA must stay bounded, got {a2}");
        assert!(a2 > a1);
        // Other functions and hosts are independent.
        assert!(b.affinities("u", "g", &[HostId(1)]).is_empty());
        assert!(b.affinities("u", "f", &[HostId(2)]).is_empty());
    }

    #[test]
    fn hot_keys_map_to_owning_shards() {
        let b = SchedBoards::new();
        b.report_affinity(
            "u",
            "f",
            HostId(1),
            &[("u/a".to_string(), 9), ("u/b".to_string(), 2)],
        );
        let hot = b.hot_key_shards("u", "f", 4);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, "u/a"); // hottest first
        assert_eq!(hot[0].2, faasm_kvs::shard_index_for("u/a", 4));
        assert!(hot.iter().all(|(_, _, s)| *s < 4));
    }

    #[test]
    fn hot_key_set_stays_bounded() {
        let b = SchedBoards::new();
        for i in 0..(HOT_KEYS_PER_FN * 4) {
            b.report_affinity("u", "f", HostId(1), &[(format!("u/k{i}"), 1 + i as u64)]);
        }
        let hot = b.hot_key_shards("u", "f", 2);
        assert!(hot.len() <= HOT_KEYS_PER_FN + 1, "got {}", hot.len());
    }
}
