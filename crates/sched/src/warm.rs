//! Warm-set tracking in the global tier (§5.1).
//!
//! "The set of warm hosts for each function is held in the FAASM state
//! global tier, and each scheduler may query and atomically update this set
//! during the scheduling decision." Warm sets are KVS sets keyed by user and
//! function; members are host ids.

use faasm_kvs::{KvError, SharedKv};
use faasm_net::HostId;

/// The global warm-host registry, shared by all local schedulers.
pub struct WarmSets {
    kv: SharedKv,
}

impl std::fmt::Debug for WarmSets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmSets").finish()
    }
}

fn warm_key(user: &str, function: &str) -> String {
    format!("sched:warm:{user}:{function}")
}

impl WarmSets {
    /// A registry over the given global-tier client.
    pub fn new(kv: SharedKv) -> WarmSets {
        WarmSets { kv }
    }

    /// Atomically register `host` as warm for `user/function`; returns true
    /// if it was not already registered.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn register(&self, user: &str, function: &str, host: HostId) -> Result<bool, KvError> {
        self.kv
            .sadd(&warm_key(user, function), &host.0.to_le_bytes())
    }

    /// Remove `host` from the warm set (e.g. when its Faaslets are evicted
    /// or the host fails).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn deregister(&self, user: &str, function: &str, host: HostId) -> Result<bool, KvError> {
        self.kv
            .srem(&warm_key(user, function), &host.0.to_le_bytes())
    }

    /// The current warm hosts for `user/function`, sorted by id.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn hosts(&self, user: &str, function: &str) -> Result<Vec<HostId>, KvError> {
        let members = self.kv.smembers(&warm_key(user, function))?;
        let mut out: Vec<HostId> = members
            .into_iter()
            .filter_map(|m| {
                let bytes: [u8; 4] = m.try_into().ok()?;
                Some(HostId(u32::from_le_bytes(bytes)))
            })
            .collect();
        out.sort();
        Ok(out)
    }

    /// A warm host other than `not`, if any (round-robin'd by `seed` so
    /// repeated shares spread over the warm set).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn pick_other(
        &self,
        user: &str,
        function: &str,
        not: HostId,
        seed: usize,
    ) -> Result<Option<HostId>, KvError> {
        let candidates: Vec<HostId> = self
            .hosts(user, function)?
            .into_iter()
            .filter(|h| *h != not)
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        Ok(Some(candidates[seed % candidates.len()]))
    }

    /// Number of warm hosts.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn count(&self, user: &str, function: &str) -> Result<u64, KvError> {
        self.kv.scard(&warm_key(user, function))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_kvs::{KvClient, KvStore};
    use std::sync::Arc;

    fn warm() -> WarmSets {
        WarmSets::new(Arc::new(KvClient::local(Arc::new(KvStore::new()))))
    }

    #[test]
    fn register_query_deregister() {
        let w = warm();
        assert!(w.register("u", "f", HostId(1)).unwrap());
        assert!(!w.register("u", "f", HostId(1)).unwrap(), "idempotent");
        w.register("u", "f", HostId(3)).unwrap();
        assert_eq!(w.hosts("u", "f").unwrap(), vec![HostId(1), HostId(3)]);
        assert_eq!(w.count("u", "f").unwrap(), 2);
        assert!(w.deregister("u", "f", HostId(1)).unwrap());
        assert_eq!(w.hosts("u", "f").unwrap(), vec![HostId(3)]);
    }

    #[test]
    fn sets_are_per_user_and_function() {
        let w = warm();
        w.register("u1", "f", HostId(1)).unwrap();
        w.register("u2", "f", HostId(2)).unwrap();
        w.register("u1", "g", HostId(3)).unwrap();
        assert_eq!(w.hosts("u1", "f").unwrap(), vec![HostId(1)]);
        assert_eq!(w.hosts("u2", "f").unwrap(), vec![HostId(2)]);
        assert_eq!(w.hosts("u1", "g").unwrap(), vec![HostId(3)]);
    }

    #[test]
    fn pick_other_excludes_self_and_rotates() {
        let w = warm();
        assert_eq!(w.pick_other("u", "f", HostId(0), 0).unwrap(), None);
        w.register("u", "f", HostId(0)).unwrap();
        assert_eq!(
            w.pick_other("u", "f", HostId(0), 0).unwrap(),
            None,
            "only self warm"
        );
        w.register("u", "f", HostId(1)).unwrap();
        w.register("u", "f", HostId(2)).unwrap();
        let picks: Vec<HostId> = (0..4)
            .map(|seed| w.pick_other("u", "f", HostId(0), seed).unwrap().unwrap())
            .collect();
        assert_eq!(picks[0], picks[2], "rotation cycles");
        assert_ne!(picks[0], picks[1], "rotation spreads");
        assert!(picks.iter().all(|h| *h != HostId(0)));
    }
}
