//! The local scheduling decision (§5.1).
//!
//! "Function calls are sent round-robin to local schedulers, which execute
//! the function locally if they are warm and have capacity, or share it with
//! another warm host if one exists. If a function call is received and there
//! are no instances with warm Faaslets, the instance that received the call
//! creates a new Faaslet, incurring a 'cold start'."

use faasm_net::HostId;

/// Local run-queue depth beyond which a host stops accepting work it could
/// otherwise run warm, and shares it with another warm host instead. Keeps
/// one hot host from absorbing an entire burst while warm peers idle — the
/// queue-depth signal the ingress tier also reads when placing batches.
pub const QUEUE_SHARE_THRESHOLD: usize = 8;

/// Where a call should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute on this host in an existing warm Faaslet.
    WarmLocal,
    /// Forward to another host's sharing queue.
    Forward(HostId),
    /// Create a new Faaslet here (cold start).
    ColdStartLocal,
}

/// Inputs to one scheduling decision, gathered by the caller (warm-set
/// lookup is the only global operation and is passed in pre-resolved).
#[derive(Debug, Clone, Copy)]
pub struct Decision<'a> {
    /// This host.
    pub this_host: HostId,
    /// Warm Faaslets for the function on this host.
    pub warm_local: usize,
    /// Idle warm Faaslets (warm and not currently executing).
    pub idle_local: usize,
    /// The function's warm hosts from the global tier.
    pub warm_hosts: &'a [HostId],
    /// Depth of this host's local run queue (all functions), the
    /// backpressure signal: a warm host drowning in queued work shares
    /// rather than queueing more.
    pub queue_depth: usize,
    /// Rotation seed for spreading forwarded calls.
    pub seed: usize,
}

/// Decide a placement.
pub fn decide(d: &Decision<'_>) -> Placement {
    let overloaded = d.queue_depth >= QUEUE_SHARE_THRESHOLD;
    // Warm here with spare capacity and a shallow queue: run locally.
    if d.warm_local > 0 && d.idle_local > 0 && !overloaded {
        return Placement::WarmLocal;
    }
    // Otherwise share with another warm host if one exists.
    let others: Vec<HostId> = d
        .warm_hosts
        .iter()
        .copied()
        .filter(|h| *h != d.this_host)
        .collect();
    if !others.is_empty() {
        return Placement::Forward(others[d.seed % others.len()]);
    }
    // No warm peer: run here even when deep — queueing beats failing.
    if d.warm_local > 0 && d.idle_local > 0 {
        return Placement::WarmLocal;
    }
    // No warm capacity anywhere: cold start here.
    Placement::ColdStartLocal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(warm_local: usize, idle_local: usize, warm_hosts: &[HostId], seed: usize) -> Placement {
        decide(&Decision {
            this_host: HostId(0),
            warm_local,
            idle_local,
            warm_hosts,
            queue_depth: 0,
            seed,
        })
    }

    #[test]
    fn warm_and_idle_runs_local() {
        assert_eq!(d(2, 1, &[HostId(0), HostId(1)], 0), Placement::WarmLocal);
    }

    #[test]
    fn warm_but_busy_forwards_to_other_warm() {
        assert_eq!(
            d(2, 0, &[HostId(0), HostId(1)], 0),
            Placement::Forward(HostId(1))
        );
    }

    #[test]
    fn cold_host_forwards_to_warm_host() {
        assert_eq!(d(0, 0, &[HostId(3)], 0), Placement::Forward(HostId(3)));
    }

    #[test]
    fn nobody_warm_cold_starts_locally() {
        assert_eq!(d(0, 0, &[], 0), Placement::ColdStartLocal);
        // A warm set containing only ourselves (stale after eviction) also
        // cold starts.
        assert_eq!(d(0, 0, &[HostId(0)], 0), Placement::ColdStartLocal);
    }

    #[test]
    fn deep_queue_shares_despite_local_warmth() {
        // Warm and idle here, but the run queue is saturated: share with the
        // warm peer instead of queueing deeper.
        let got = decide(&Decision {
            this_host: HostId(0),
            warm_local: 2,
            idle_local: 2,
            warm_hosts: &[HostId(0), HostId(1)],
            queue_depth: QUEUE_SHARE_THRESHOLD,
            seed: 0,
        });
        assert_eq!(got, Placement::Forward(HostId(1)));
        // With no warm peer, a deep queue still runs locally.
        let got = decide(&Decision {
            this_host: HostId(0),
            warm_local: 2,
            idle_local: 2,
            warm_hosts: &[HostId(0)],
            queue_depth: QUEUE_SHARE_THRESHOLD * 2,
            seed: 0,
        });
        assert_eq!(got, Placement::WarmLocal);
    }

    #[test]
    fn forwarding_rotates_over_warm_hosts() {
        let hosts = [HostId(1), HostId(2), HostId(3)];
        let picks: Vec<Placement> = (0..3).map(|s| d(0, 0, &hosts, s)).collect();
        assert_eq!(
            picks,
            vec![
                Placement::Forward(HostId(1)),
                Placement::Forward(HostId(2)),
                Placement::Forward(HostId(3)),
            ]
        );
    }
}
