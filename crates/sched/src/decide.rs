//! The local scheduling decision (§5.1).
//!
//! "Function calls are sent round-robin to local schedulers, which execute
//! the function locally if they are warm and have capacity, or share it with
//! another warm host if one exists. If a function call is received and there
//! are no instances with warm Faaslets, the instance that received the call
//! creates a new Faaslet, incurring a 'cold start'."

use faasm_net::HostId;

/// Local run-queue depth beyond which a host stops accepting work it could
/// otherwise run warm, and shares it with another warm host instead. Keeps
/// one hot host from absorbing an entire burst while warm peers idle — the
/// queue-depth signal the ingress tier also reads when placing batches.
pub const QUEUE_SHARE_THRESHOLD: usize = 8;

/// Where a call should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute on this host in an existing warm Faaslet.
    WarmLocal,
    /// Forward to another host's sharing queue.
    Forward(HostId),
    /// Create a new Faaslet here (cold start).
    ColdStartLocal,
}

/// How many queued calls one step of log-scaled state affinity is worth
/// when scoring forward targets: depth dominates (an overloaded peer is
/// never preferred for its cache), affinity breaks meaningful gaps.
const DEPTH_WEIGHT: i64 = 4;

/// Inputs to one scheduling decision, gathered by the caller (warm-set
/// lookup is the only global operation and is passed in pre-resolved).
#[derive(Debug, Clone, Copy)]
pub struct Decision<'a> {
    /// This host.
    pub this_host: HostId,
    /// Warm Faaslets for the function on this host.
    pub warm_local: usize,
    /// Idle warm Faaslets (warm and not currently executing).
    pub idle_local: usize,
    /// The function's warm hosts from the global tier.
    pub warm_hosts: &'a [HostId],
    /// Depth of this host's local run queue (all functions), the
    /// backpressure signal: a warm host drowning in queued work shares
    /// rather than queueing more.
    pub queue_depth: usize,
    /// Rotation seed for breaking ties between equally-scored peers.
    pub seed: usize,
    /// Known run-queue depths of peers (from the load board); hosts not
    /// listed read as depth 0. Empty when no board is wired — forwarding
    /// then degrades to pure seed rotation.
    pub peer_depths: &'a [(HostId, usize)],
    /// Known state-affinity scores of peers (from the affinity board:
    /// how much of this function's working set each host's state cache
    /// recently served); hosts not listed read as 0.
    pub peer_affinity: &'a [(HostId, u64)],
}

/// Log-scale an affinity score so raw hit counts cannot starve load
/// balancing: 0 → 0, else `⌊log2⌋ + 1` (bounded by 64).
fn affinity_bonus(score: u64) -> i64 {
    (64 - score.leading_zeros()) as i64
}

/// Decide a placement.
pub fn decide(d: &Decision<'_>) -> Placement {
    let overloaded = d.queue_depth >= QUEUE_SHARE_THRESHOLD;
    // Warm here with spare capacity and a shallow queue: run locally.
    if d.warm_local > 0 && d.idle_local > 0 && !overloaded {
        return Placement::WarmLocal;
    }
    // Otherwise share with another warm host if one exists: the
    // least-loaded warm peer, nudged toward peers whose state caches
    // already hold the function's working set, seed-rotating among ties.
    let others: Vec<HostId> = d
        .warm_hosts
        .iter()
        .copied()
        .filter(|h| *h != d.this_host)
        .collect();
    if !others.is_empty() {
        let depth_of = |h: HostId| -> i64 {
            d.peer_depths
                .iter()
                .find(|(p, _)| *p == h)
                .map_or(0, |(_, depth)| *depth as i64)
        };
        let affinity_of = |h: HostId| -> u64 {
            d.peer_affinity
                .iter()
                .find(|(p, _)| *p == h)
                .map_or(0, |(_, a)| *a)
        };
        // Lower is better: queued work costs DEPTH_WEIGHT per call, cache
        // warmth refunds its log2.
        let score = |h: HostId| DEPTH_WEIGHT * depth_of(h) - affinity_bonus(affinity_of(h));
        let best = others.iter().map(|&h| score(h)).min().expect("non-empty");
        let tied: Vec<HostId> = others
            .iter()
            .copied()
            .filter(|&h| score(h) == best)
            .collect();
        return Placement::Forward(tied[d.seed % tied.len()]);
    }
    // No warm peer: run here even when deep — queueing beats failing.
    if d.warm_local > 0 && d.idle_local > 0 {
        return Placement::WarmLocal;
    }
    // No warm capacity anywhere: cold start here.
    Placement::ColdStartLocal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(warm_local: usize, idle_local: usize, warm_hosts: &[HostId], seed: usize) -> Placement {
        decide(&Decision {
            this_host: HostId(0),
            warm_local,
            idle_local,
            warm_hosts,
            queue_depth: 0,
            seed,
            peer_depths: &[],
            peer_affinity: &[],
        })
    }

    #[test]
    fn warm_and_idle_runs_local() {
        assert_eq!(d(2, 1, &[HostId(0), HostId(1)], 0), Placement::WarmLocal);
    }

    #[test]
    fn warm_but_busy_forwards_to_other_warm() {
        assert_eq!(
            d(2, 0, &[HostId(0), HostId(1)], 0),
            Placement::Forward(HostId(1))
        );
    }

    #[test]
    fn cold_host_forwards_to_warm_host() {
        assert_eq!(d(0, 0, &[HostId(3)], 0), Placement::Forward(HostId(3)));
    }

    #[test]
    fn nobody_warm_cold_starts_locally() {
        assert_eq!(d(0, 0, &[], 0), Placement::ColdStartLocal);
        // A warm set containing only ourselves (stale after eviction) also
        // cold starts.
        assert_eq!(d(0, 0, &[HostId(0)], 0), Placement::ColdStartLocal);
    }

    #[test]
    fn deep_queue_shares_despite_local_warmth() {
        // Warm and idle here, but the run queue is saturated: share with the
        // warm peer instead of queueing deeper.
        let got = decide(&Decision {
            this_host: HostId(0),
            warm_local: 2,
            idle_local: 2,
            warm_hosts: &[HostId(0), HostId(1)],
            queue_depth: QUEUE_SHARE_THRESHOLD,
            seed: 0,
            peer_depths: &[],
            peer_affinity: &[],
        });
        assert_eq!(got, Placement::Forward(HostId(1)));
        // With no warm peer, a deep queue still runs locally.
        let got = decide(&Decision {
            this_host: HostId(0),
            warm_local: 2,
            idle_local: 2,
            warm_hosts: &[HostId(0)],
            queue_depth: QUEUE_SHARE_THRESHOLD * 2,
            seed: 0,
            peer_depths: &[],
            peer_affinity: &[],
        });
        assert_eq!(got, Placement::WarmLocal);
    }

    #[test]
    fn forwarding_rotates_over_warm_hosts() {
        // With no load/affinity signal every peer ties: pure seed rotation.
        let hosts = [HostId(1), HostId(2), HostId(3)];
        let picks: Vec<Placement> = (0..3).map(|s| d(0, 0, &hosts, s)).collect();
        assert_eq!(
            picks,
            vec![
                Placement::Forward(HostId(1)),
                Placement::Forward(HostId(2)),
                Placement::Forward(HostId(3)),
            ]
        );
    }

    #[test]
    fn forwarding_prefers_least_loaded_peer() {
        // Regression: forwarding used to rotate blindly over the warm set
        // (`others[seed % len]`), dumping every `seed ≡ 0` call on a peer
        // already drowning in queued work. It must pick the least-loaded
        // warm peer, whatever the seed says.
        let hosts = [HostId(1), HostId(2), HostId(3)];
        let depths = [(HostId(1), 9), (HostId(2), 0), (HostId(3), 5)];
        for seed in 0..8 {
            let got = decide(&Decision {
                this_host: HostId(0),
                warm_local: 0,
                idle_local: 0,
                warm_hosts: &hosts,
                queue_depth: 0,
                seed,
                peer_depths: &depths,
                peer_affinity: &[],
            });
            assert_eq!(got, Placement::Forward(HostId(2)), "seed {seed}");
        }
        // Equal depths tie; the seed rotates among the tied peers only.
        let tied = [(HostId(1), 2), (HostId(2), 2), (HostId(3), 7)];
        let picks: Vec<Placement> = (0..4)
            .map(|seed| {
                decide(&Decision {
                    this_host: HostId(0),
                    warm_local: 0,
                    idle_local: 0,
                    warm_hosts: &hosts,
                    queue_depth: 0,
                    seed,
                    peer_depths: &tied,
                    peer_affinity: &[],
                })
            })
            .collect();
        assert_eq!(
            picks,
            vec![
                Placement::Forward(HostId(1)),
                Placement::Forward(HostId(2)),
                Placement::Forward(HostId(1)),
                Placement::Forward(HostId(2)),
            ]
        );
    }

    #[test]
    fn affinity_breaks_close_calls_but_never_overrides_load() {
        let hosts = [HostId(1), HostId(2)];
        // Depths within one call of each other: the peer whose cache holds
        // the function's working set wins (log2(100)+1 = 7 > 4·1).
        let got = decide(&Decision {
            this_host: HostId(0),
            warm_local: 0,
            idle_local: 0,
            warm_hosts: &hosts,
            queue_depth: 0,
            seed: 0,
            peer_depths: &[(HostId(1), 1), (HostId(2), 2)],
            peer_affinity: &[(HostId(2), 100)],
        });
        assert_eq!(got, Placement::Forward(HostId(2)));
        // But a drowning peer is never preferred for its cache: the log
        // scale caps the bonus at 64, far under a deep queue's cost.
        let got = decide(&Decision {
            this_host: HostId(0),
            warm_local: 0,
            idle_local: 0,
            warm_hosts: &hosts,
            queue_depth: 0,
            seed: 0,
            peer_depths: &[(HostId(1), 1), (HostId(2), 40)],
            peer_affinity: &[(HostId(2), u64::MAX)],
        });
        assert_eq!(got, Placement::Forward(HostId(1)));
    }
}
