//! Containers and the container-side host interface.
//!
//! "All experiments are implemented using the same code for both FAASM and
//! Knative, with a Knative-specific implementation of the Faaslet host
//! interface for container-based code. This interface uses the same
//! underlying state management code as FAASM, but cannot share the local
//! tier between co-located functions" (§6.1). A [`ContainerApi`] therefore
//! offers the same operations as the Faaslet host interface, but every state
//! access goes to the global tier and lands in a **private, serialised
//! copy** — the data-shipping architecture of §2.1.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use faasm_kvs::KvClient;
use faasm_sched::{CallId, CallResult};

use crate::image::{materialise_container, ImageConfig};

/// Chained-call routing for containers (implemented by the platform's HTTP
/// gateway).
pub trait HttpRouter: Send + Sync {
    /// Dispatch a chained call through the gateway.
    fn chain_call(&self, user: &str, function: &str, input: Vec<u8>) -> CallId;

    /// Block for a result.
    fn await_call(&self, id: CallId) -> CallResult;
}

/// A guest function running in a container.
pub trait ContainerGuest: Send + Sync {
    /// Run one invocation; returns the call's return code.
    ///
    /// # Errors
    ///
    /// A message describing the failure.
    fn invoke(&self, api: &mut ContainerApi<'_>) -> Result<i32, String>;
}

impl<F> ContainerGuest for F
where
    F: Fn(&mut ContainerApi<'_>) -> Result<i32, String> + Send + Sync,
{
    fn invoke(&self, api: &mut ContainerApi<'_>) -> Result<i32, String> {
        self(api)
    }
}

/// Serialise/deserialise cost model: a byte-touching copy, so serialisation
/// is real work proportional to the data (the paper charges "repeated
/// serialisation" to container platforms, §1).
pub fn serialise(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc: u8 = 0;
    for &b in data {
        acc = acc.wrapping_add(b);
        out.push(b);
    }
    // Keep the checksum observable.
    std::hint::black_box(acc);
    out
}

/// One container: private writable layer, private state copies, its own
/// clock — process-level isolation with no memory sharing.
pub struct Container {
    /// Container id on its host.
    pub id: u64,
    /// Owning user.
    pub user: String,
    /// Function name.
    pub function: String,
    /// Private writable layer (the image copy).
    writable: Vec<u8>,
    /// Private deserialised copies of state values.
    state_cache: HashMap<String, Vec<u8>>,
    kv: Arc<KvClient>,
    router: Arc<dyn HttpRouter>,
    created: Instant,
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Container")
            .field("id", &self.id)
            .field("function", &self.function)
            .field("rss", &self.rss_bytes())
            .finish()
    }
}

impl Container {
    /// Cold-start a container: the real-work materialisation of the image.
    pub fn cold_start(
        id: u64,
        user: &str,
        function: &str,
        image: &[u8],
        config: &ImageConfig,
        kv: Arc<KvClient>,
        router: Arc<dyn HttpRouter>,
    ) -> Container {
        let (writable, _checksum) = materialise_container(image, config);
        Container {
            id,
            user: user.to_string(),
            function: function.to_string(),
            writable,
            state_cache: HashMap::new(),
            kv,
            router,
            created: Instant::now(),
        }
    }

    /// Resident set size: writable layer + private state copies. Containers
    /// are charged in full — nothing is shared (§6.2: billable memory grows
    /// with parallelism under Knative).
    pub fn rss_bytes(&self) -> usize {
        self.writable.len() + self.state_cache.values().map(Vec::len).sum::<usize>()
    }

    /// Proportional set size: image pages are shared with the host page
    /// cache across same-image containers, so PSS charges only the private
    /// state plus a fraction of the image (Tab. 3 distinguishes 1.3 MB PSS
    /// from 5 MB RSS for Docker).
    pub fn pss_bytes(&self, co_located_same_image: usize) -> f64 {
        let image_share = self.writable.len() as f64 / co_located_same_image.max(1) as f64;
        image_share + self.state_cache.values().map(Vec::len).sum::<usize>() as f64
    }

    /// Container age.
    pub fn age(&self) -> std::time::Duration {
        self.created.elapsed()
    }

    /// Run one call.
    pub fn run(&mut self, guest: &dyn ContainerGuest, call_id: CallId, input: &[u8]) -> CallResult {
        let mut api = ContainerApi {
            call_id,
            input,
            output: Vec::new(),
            results: HashMap::new(),
            container: self,
        };
        match guest.invoke(&mut api) {
            Ok(0) => {
                let output = api.output;
                CallResult::success(call_id, output)
            }
            Ok(code) => CallResult {
                id: call_id,
                status: faasm_sched::CallStatus::Failed(code),
                output: api.output,
            },
            Err(msg) => CallResult::error(call_id, msg),
        }
    }
}

/// The host interface as containers see it: same operations, external state.
pub struct ContainerApi<'a> {
    call_id: CallId,
    input: &'a [u8],
    output: Vec<u8>,
    results: HashMap<CallId, CallResult>,
    container: &'a mut Container,
}

impl<'a> ContainerApi<'a> {
    /// The call's input.
    pub fn input(&self) -> &[u8] {
        self.input
    }

    /// The current call id.
    pub fn call_id(&self) -> CallId {
        self.call_id
    }

    /// Append output bytes.
    pub fn write_output(&mut self, data: &[u8]) {
        self.output.extend_from_slice(data);
    }

    /// Read a state range. The first access to a key fetches and privately
    /// caches the **entire value** (deserialised copy); later reads hit the
    /// private copy. This is the container data-shipping path: no
    /// co-located sharing, full-value transfer, serialisation both ways.
    ///
    /// # Errors
    ///
    /// Global-tier errors as strings.
    pub fn state_read(&mut self, key: &str, offset: usize, len: usize) -> Result<Vec<u8>, String> {
        if !self.container.state_cache.contains_key(key) {
            let raw = self
                .container
                .kv
                .get(key)
                .map_err(|e| e.to_string())?
                .unwrap_or_default();
            let copy = serialise(&raw);
            self.container.state_cache.insert(key.to_string(), copy);
        }
        let v = &self.container.state_cache[key];
        if offset >= v.len() {
            return Ok(Vec::new());
        }
        let end = (offset + len).min(v.len());
        Ok(v[offset..end].to_vec())
    }

    /// Write a state range: updates the private copy and writes through to
    /// the global tier (serialised) — "each function must write directly to
    /// external storage" (§6.2).
    ///
    /// # Errors
    ///
    /// Global-tier errors as strings.
    pub fn state_write(&mut self, key: &str, offset: usize, data: &[u8]) -> Result<(), String> {
        let cache = self
            .container
            .state_cache
            .entry(key.to_string())
            .or_default();
        if cache.len() < offset + data.len() {
            cache.resize(offset + data.len(), 0);
        }
        cache[offset..offset + data.len()].copy_from_slice(data);
        let wire = serialise(data);
        self.container
            .kv
            .set_range(key, offset as u64, wire)
            .map_err(|e| e.to_string())
    }

    /// Size of a global state value.
    ///
    /// # Errors
    ///
    /// Global-tier errors as strings.
    pub fn state_size(&self, key: &str) -> Result<usize, String> {
        self.container
            .kv
            .strlen(key)
            .map(|n| n as usize)
            .map_err(|e| e.to_string())
    }

    /// Drop the private copy so the next read re-fetches (a fresh container
    /// would behave this way; long-lived ones must poll).
    pub fn state_invalidate(&mut self, key: &str) {
        self.container.state_cache.remove(key);
    }

    /// Atomic counter in the global tier.
    ///
    /// # Errors
    ///
    /// Global-tier errors as strings.
    pub fn counter_add(&mut self, key: &str, delta: i64) -> Result<i64, String> {
        self.container
            .kv
            .incr(key, delta)
            .map_err(|e| e.to_string())
    }

    /// Chain a call through the HTTP gateway.
    pub fn chain(&mut self, function: &str, input: Vec<u8>) -> CallId {
        self.container
            .router
            .chain_call(&self.container.user, function, input)
    }

    /// Await a chained call; returns its return code.
    pub fn await_call(&mut self, id: CallId) -> i32 {
        let r = self.container.router.await_call(id);
        let code = r.return_code();
        self.results.insert(id, r);
        code
    }

    /// Output of an awaited chained call.
    pub fn call_output(&self, id: CallId) -> Option<&[u8]> {
        self.results.get(&id).map(|r| r.output.as_slice())
    }

    /// The owning user.
    pub fn user(&self) -> &str {
        &self.container.user
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_kvs::KvStore;
    use faasm_sched::CallStatus;

    struct NoHttp;
    impl HttpRouter for NoHttp {
        fn chain_call(&self, _u: &str, _f: &str, _i: Vec<u8>) -> CallId {
            CallId(0)
        }
        fn await_call(&self, id: CallId) -> CallResult {
            CallResult::error(id, "no gateway")
        }
    }

    fn container() -> (Arc<KvClient>, Container) {
        let kv = Arc::new(KvClient::local(Arc::new(KvStore::new())));
        let image = vec![7u8; 64 * 1024];
        let cfg = ImageConfig {
            image_bytes: image.len(),
            layers: 2,
            boot_passes: 1,
        };
        let c = Container::cold_start(1, "u", "f", &image, &cfg, Arc::clone(&kv), Arc::new(NoHttp));
        (kv, c)
    }

    #[test]
    fn run_guest_with_io() {
        let (_kv, mut c) = container();
        let guest = |api: &mut ContainerApi<'_>| {
            let doubled: Vec<u8> = api.input().iter().map(|b| b * 3).collect();
            api.write_output(&doubled);
            Ok(0)
        };
        let r = c.run(&guest, CallId(1), &[1, 2]);
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, vec![3, 6]);
    }

    #[test]
    fn guest_failure_codes() {
        let (_kv, mut c) = container();
        let fail = |_api: &mut ContainerApi<'_>| Ok(9);
        assert_eq!(c.run(&fail, CallId(1), &[]).status, CallStatus::Failed(9));
        let err = |_api: &mut ContainerApi<'_>| Err("boom".to_string());
        assert!(matches!(
            c.run(&err, CallId(2), &[]).status,
            CallStatus::Error(_)
        ));
    }

    #[test]
    fn state_read_fetches_whole_value_privately() {
        let (kv, mut c) = container();
        kv.set("big", vec![5u8; 10_000]).unwrap();
        let rss_before = c.rss_bytes();
        let guest = |api: &mut ContainerApi<'_>| {
            // Read just 10 bytes...
            let part = api.state_read("big", 100, 10)?;
            assert_eq!(part, vec![5u8; 10]);
            Ok(0)
        };
        c.run(&guest, CallId(1), &[]);
        // ...but the whole 10 kB value was shipped and cached privately.
        assert_eq!(c.rss_bytes(), rss_before + 10_000);
    }

    #[test]
    fn state_write_goes_to_global_tier() {
        let (kv, mut c) = container();
        let guest = |api: &mut ContainerApi<'_>| {
            api.state_write("out", 4, &[9u8; 4])?;
            Ok(0)
        };
        c.run(&guest, CallId(1), &[]);
        assert_eq!(
            kv.get("out").unwrap().unwrap(),
            vec![0, 0, 0, 0, 9, 9, 9, 9]
        );
    }

    #[test]
    fn no_sharing_between_containers() {
        let kv = Arc::new(KvClient::local(Arc::new(KvStore::new())));
        let image = vec![0u8; 1024];
        let cfg = ImageConfig {
            image_bytes: 1024,
            layers: 1,
            boot_passes: 1,
        };
        let mut c1 =
            Container::cold_start(1, "u", "f", &image, &cfg, Arc::clone(&kv), Arc::new(NoHttp));
        let mut c2 =
            Container::cold_start(2, "u", "f", &image, &cfg, Arc::clone(&kv), Arc::new(NoHttp));
        kv.set("k", b"v1".to_vec()).unwrap();
        let read_guest = |api: &mut ContainerApi<'_>| {
            let v = api.state_read("k", 0, 2)?;
            api.write_output(&v);
            Ok(0)
        };
        assert_eq!(c1.run(&read_guest, CallId(1), &[]).output, b"v1");
        // A write by c2 through the global tier...
        let write_guest = |api: &mut ContainerApi<'_>| {
            api.state_write("k", 0, b"v2")?;
            Ok(0)
        };
        c2.run(&write_guest, CallId(2), &[]);
        // ...is NOT visible to c1's stale private copy (unlike the Faaslet
        // shared local tier).
        assert_eq!(c1.run(&read_guest, CallId(3), &[]).output, b"v1");
        // Only invalidation (or a fresh container) sees the update.
        let refresh = |api: &mut ContainerApi<'_>| {
            api.state_invalidate("k");
            let v = api.state_read("k", 0, 2)?;
            api.write_output(&v);
            Ok(0)
        };
        assert_eq!(c1.run(&refresh, CallId(4), &[]).output, b"v2");
    }

    #[test]
    fn pss_shares_image_but_not_state() {
        let (kv, mut c) = container();
        kv.set("s", vec![1u8; 1000]).unwrap();
        let guest = |api: &mut ContainerApi<'_>| {
            api.state_read("s", 0, 1)?;
            Ok(0)
        };
        c.run(&guest, CallId(1), &[]);
        let pss_alone = c.pss_bytes(1);
        let pss_shared = c.pss_bytes(4);
        assert!(pss_shared < pss_alone);
        // State copies are charged in full either way.
        assert!(pss_shared >= 1000.0);
    }

    #[test]
    fn counter_and_state_size() {
        let (kv, mut c) = container();
        kv.set("sz", vec![0u8; 77]).unwrap();
        let guest = |api: &mut ContainerApi<'_>| {
            assert_eq!(api.state_size("sz")?, 77);
            assert_eq!(api.counter_add("n", 5)?, 5);
            assert_eq!(api.user(), "u");
            Ok(0)
        };
        let r = c.run(&guest, CallId(1), &[]);
        assert_eq!(r.status, CallStatus::Success);
    }
}
