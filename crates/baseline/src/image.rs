//! Container images and the host image cache.
//!
//! The baseline's cold-start cost is *real work*, not a sleep: pulling the
//! image to the host (counted bytes), copying it into a per-container
//! writable layer, assembling the overlay index, and "booting" the runtime
//! by touching every page. The default image size follows the paper's
//! observation that each function container carries ~8 MB of memory overhead
//! versus ~270 kB per Faaslet (§6.2).

use std::sync::Arc;

use faasm_vfs::ObjectStore;

/// Default container image size in bytes.
pub const DEFAULT_IMAGE_BYTES: usize = 8 * 1024 * 1024;

/// Default number of overlay layers assembled per container.
pub const DEFAULT_LAYERS: usize = 5;

/// Default runtime-boot passes over the writable layer.
pub const DEFAULT_BOOT_PASSES: usize = 4;

/// Image configuration for a container platform.
#[derive(Debug, Clone, Copy)]
pub struct ImageConfig {
    /// Image size in bytes.
    pub image_bytes: usize,
    /// Overlay layers per container.
    pub layers: usize,
    /// Boot passes (page-touch sweeps) per cold start.
    pub boot_passes: usize,
}

impl Default for ImageConfig {
    fn default() -> ImageConfig {
        ImageConfig {
            image_bytes: DEFAULT_IMAGE_BYTES,
            layers: DEFAULT_LAYERS,
            boot_passes: DEFAULT_BOOT_PASSES,
        }
    }
}

/// Registry path of the platform's function image.
pub const IMAGE_PATH: &str = "shared/image/function-base";

/// Publish the base image to the registry (the object store).
pub fn publish_image(store: &ObjectStore, config: &ImageConfig) {
    // Deterministic non-zero content so checksum work cannot be elided.
    let data: Vec<u8> = (0..config.image_bytes)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
        .collect();
    store.put(IMAGE_PATH, data);
}

/// Pull the image to a host (counted by the object store) — the once-per-host
/// cost a registry pull would incur.
pub fn pull_image(store: &ObjectStore) -> Option<Arc<Vec<u8>>> {
    store.pull(IMAGE_PATH)
}

/// The per-container cold-start work: copy the image into a writable layer,
/// assemble the overlay index, and run boot passes. Returns the writable
/// layer and a checksum (so the work is observable and cannot be optimised
/// away).
pub fn materialise_container(image: &[u8], config: &ImageConfig) -> (Vec<u8>, u64) {
    // 1. Writable layer: a private copy of the image (the RSS the paper
    //    charges to each container).
    let mut writable = image.to_vec();

    // 2. Overlay assembly: build per-layer file indices, as a layered
    //    filesystem mount would.
    let mut overlay_index: Vec<Vec<(usize, usize)>> = Vec::with_capacity(config.layers);
    let chunk = (writable.len() / config.layers.max(1)).max(1);
    for layer in 0..config.layers {
        let mut files = Vec::new();
        let mut off = layer * chunk;
        let end = ((layer + 1) * chunk).min(writable.len());
        while off < end {
            let flen = 4096.min(end - off);
            files.push((off, flen));
            off += flen;
        }
        overlay_index.push(files);
    }

    // 3. Runtime boot: touch every page of the writable layer repeatedly
    //    (interpreter startup, shared-library relocation, etc.).
    let mut checksum: u64 = 0;
    for pass in 0..config.boot_passes {
        let mut i = 0;
        while i < writable.len() {
            checksum = checksum
                .wrapping_mul(0x100000001b3)
                .wrapping_add(writable[i] as u64 + pass as u64);
            writable[i] = writable[i].wrapping_add(1);
            i += 64;
        }
    }
    // Fold the overlay index into the checksum so it is not dead code.
    checksum = checksum.wrapping_add(overlay_index.iter().map(|l| l.len() as u64).sum::<u64>());
    (writable, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_pull_counted() {
        let store = ObjectStore::new();
        let cfg = ImageConfig {
            image_bytes: 4096,
            ..Default::default()
        };
        publish_image(&store, &cfg);
        assert_eq!(store.size(IMAGE_PATH), Some(4096));
        let img = pull_image(&store).unwrap();
        assert_eq!(img.len(), 4096);
        assert_eq!(store.pulled_bytes(), 4096);
    }

    #[test]
    fn materialise_produces_private_copy_and_checksum() {
        let image: Vec<u8> = (0..8192).map(|i| i as u8).collect();
        let cfg = ImageConfig {
            image_bytes: 8192,
            layers: 3,
            boot_passes: 2,
        };
        let (writable, sum) = materialise_container(&image, &cfg);
        assert_eq!(writable.len(), image.len());
        assert_ne!(writable, image, "boot passes mutate the writable layer");
        assert_ne!(sum, 0);
        // Deterministic.
        let (_, sum2) = materialise_container(&image, &cfg);
        assert_eq!(sum, sum2);
    }

    #[test]
    fn cold_start_cost_scales_with_image_size() {
        let small: Vec<u8> = vec![1u8; 64 * 1024];
        let large: Vec<u8> = vec![1u8; 4 * 1024 * 1024];
        let cfg = ImageConfig {
            image_bytes: 0,
            layers: 4,
            boot_passes: 4,
        };
        let t0 = std::time::Instant::now();
        for _ in 0..4 {
            materialise_container(&small, &cfg);
        }
        let t_small = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..4 {
            materialise_container(&large, &cfg);
        }
        let t_large = t1.elapsed();
        assert!(
            t_large > t_small,
            "larger images must cost more: {t_small:?} vs {t_large:?}"
        );
    }
}
