//! The container-based serverless baseline ("Knative" in the paper's
//! evaluation, §6.1; DESIGN.md substitution S5).
//!
//! Containers here are honest simulations, not sleeps: cold starts copy a
//! multi-megabyte image into a private writable layer, assemble overlay
//! indices and run boot passes over every page; state access ships whole
//! values from the global tier into private per-container copies with
//! byte-touching serialisation; chaining pays HTTP framing through a
//! gateway; hosts refuse containers beyond their memory budget (OOM). Every
//! byte still crosses the same measured fabric as FAASM, so the two
//! platforms are compared on identical substrates — only the isolation
//! mechanism differs.

#![warn(missing_docs)]

pub mod container;
pub mod image;
pub mod platform;

pub use container::{serialise, Container, ContainerApi, ContainerGuest, HttpRouter};
pub use image::{publish_image, ImageConfig, DEFAULT_IMAGE_BYTES, IMAGE_PATH};
pub use platform::{BaselineConfig, BaselineHost, BaselinePlatform};
