//! The container platform: hosts, HTTP-style gateway and autoscaling pools.
//!
//! The stand-in for Knative on Kubernetes (§6.1, DESIGN.md S5): an ingress
//! gateway round-robins calls over hosts; each host runs containers from a
//! shared image, keeps finished containers warm, and refuses new containers
//! once its memory limit is reached (the OOM behaviour behind Knative's
//! collapse above ~30 parallel functions in Fig. 6a). Function chaining goes
//! back through the gateway with per-call HTTP framing overhead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use faasm_core::msg::{decode_msg, encode_msg, InstanceMsg};
use faasm_core::{Metrics, Pending, StartKind};
use faasm_kvs::{KvClient, KvServer, SharedKv};
use faasm_net::{Fabric, HostId, Nic};
use faasm_sched::{CallId, CallResult, CallSpec, RoundRobin};
use faasm_vfs::ObjectStore;
use parking_lot::Mutex;

use crate::container::{Container, ContainerGuest, HttpRouter};
use crate::image::{publish_image, pull_image, ImageConfig};

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Worker threads per host.
    pub workers: usize,
    /// Container image parameters.
    pub image: ImageConfig,
    /// Per-host memory budget; cold starts beyond it fail (OOM).
    pub host_memory_limit: usize,
    /// Extra bytes charged per gateway hop (HTTP framing).
    pub http_overhead_bytes: usize,
    /// KVS worker threads.
    pub kvs_workers: usize,
    /// Synchronous invoke timeout.
    pub invoke_timeout: Duration,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            hosts: 2,
            workers: 4,
            image: ImageConfig::default(),
            host_memory_limit: 2 * 1024 * 1024 * 1024,
            http_overhead_bytes: 256,
            kvs_workers: 2,
            invoke_timeout: Duration::from_secs(60),
        }
    }
}

/// Frame a protocol message with HTTP-style padding overhead.
fn frame(msg: &InstanceMsg, overhead: usize) -> Vec<u8> {
    let body = encode_msg(msg);
    let mut out = Vec::with_capacity(4 + body.len() + overhead);
    out.put_u32_le(body.len() as u32);
    out.put_slice(&body);
    out.resize(4 + body.len() + overhead, 0);
    out
}

/// Strip HTTP framing.
fn unframe(mut buf: &[u8]) -> Option<InstanceMsg> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    decode_msg(&buf[..len])
}

type FnKey = (String, String);

/// The platform-wide function registry.
#[derive(Default)]
pub struct BaselineRegistry {
    guests: Mutex<HashMap<FnKey, Arc<dyn ContainerGuest>>>,
}

impl BaselineRegistry {
    fn get(&self, user: &str, function: &str) -> Option<Arc<dyn ContainerGuest>> {
        self.guests
            .lock()
            .get(&(user.to_string(), function.to_string()))
            .cloned()
    }
}

struct QueuedCall {
    call: CallSpec,
    reply_to: HostId,
}

/// One baseline host running containers.
pub struct BaselineHost {
    host_id: HostId,
    nic: Nic,
    kv: Arc<KvClient>,
    registry: Arc<BaselineRegistry>,
    object_store: Arc<ObjectStore>,
    image: Mutex<Option<Arc<Vec<u8>>>>,
    pool: Mutex<HashMap<FnKey, Vec<Container>>>,
    resident_bytes: Mutex<usize>,
    queue_tx: Sender<QueuedCall>,
    queue_rx: Receiver<QueuedCall>,
    pending: Arc<Pending>,
    metrics: Arc<Metrics>,
    next_container: AtomicU64,
    call_seq: Arc<AtomicU64>,
    routing: Arc<RoundRobin>,
    config: BaselineConfig,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for BaselineHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineHost")
            .field("host", &self.host_id)
            .finish()
    }
}

impl BaselineHost {
    fn start(
        fabric: &Fabric,
        kvs_host: HostId,
        object_store: Arc<ObjectStore>,
        registry: Arc<BaselineRegistry>,
        call_seq: Arc<AtomicU64>,
        routing: Arc<RoundRobin>,
        config: BaselineConfig,
    ) -> Arc<BaselineHost> {
        let nic = fabric.add_host();
        let kv = Arc::new(KvClient::connect(nic.clone(), kvs_host));
        let (queue_tx, queue_rx) = unbounded();
        let host = Arc::new(BaselineHost {
            host_id: nic.id(),
            nic,
            kv,
            registry,
            object_store,
            image: Mutex::new(None),
            pool: Mutex::new(HashMap::new()),
            resident_bytes: Mutex::new(0),
            queue_tx,
            queue_rx,
            pending: Arc::new(Pending::default()),
            metrics: Arc::new(Metrics::new()),
            next_container: AtomicU64::new(1),
            call_seq,
            routing,
            config,
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
        });
        {
            let h = Arc::clone(&host);
            let handle = std::thread::Builder::new()
                .name(format!("bl-{}-bus", h.host_id))
                .spawn(move || h.bus_loop())
                .expect("spawn bus");
            host.threads.lock().push(handle);
        }
        for w in 0..host.config.workers {
            let h = Arc::clone(&host);
            let handle = std::thread::Builder::new()
                .name(format!("bl-{}-w{}", h.host_id, w))
                .spawn(move || h.worker_loop())
                .expect("spawn worker");
            host.threads.lock().push(handle);
        }
        host.register_self();
        host
    }

    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host_id
    }

    /// Host metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Total resident container bytes on this host.
    pub fn resident_bytes(&self) -> usize {
        *self.resident_bytes.lock()
    }

    /// Number of idle (warm) containers.
    pub fn pooled_containers(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    /// Drop all warm containers (scale to zero).
    pub fn evict_all(&self) {
        let mut pool = self.pool.lock();
        let freed: usize = pool
            .values()
            .flat_map(|v| v.iter().map(Container::rss_bytes))
            .sum();
        pool.clear();
        let mut resident = self.resident_bytes.lock();
        *resident = resident.saturating_sub(freed);
    }

    fn bus_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            match self.nic.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => match unframe(&env.payload) {
                    Some(InstanceMsg::Invoke { call, reply_to, .. }) => {
                        let _ = self.queue_tx.send(QueuedCall { call, reply_to });
                    }
                    Some(InstanceMsg::Result { result }) => self.pending.fulfill(result),
                    // The container baseline has no batch submit path; a
                    // batched message still executes every call (protocol
                    // compatibility with the FAASM ingress tier).
                    Some(InstanceMsg::InvokeBatch {
                        calls, reply_to, ..
                    }) => {
                        for call in calls {
                            let _ = self.queue_tx.send(QueuedCall { call, reply_to });
                        }
                    }
                    // Containers have no snapshot plane to pre-stage into.
                    Some(InstanceMsg::PreStage { .. }) => {}
                    None => {}
                },
                Err(faasm_net::NetError::Timeout) => {}
                Err(_) => break,
            }
        }
    }

    fn worker_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            match self.queue_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(q) => self.execute(q),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    fn host_image(&self) -> Option<Arc<Vec<u8>>> {
        if let Some(img) = self.image.lock().as_ref() {
            return Some(Arc::clone(img));
        }
        // Registry pull, once per host (counted by the object store).
        let img = pull_image(&self.object_store)?;
        *self.image.lock() = Some(Arc::clone(&img));
        Some(img)
    }

    /// Obtain a container; returns it plus its start kind, init time and
    /// RSS at checkout (so post-run growth can be charged accurately).
    /// Busy containers stay in the resident accounting — a container's
    /// memory is held for its whole lifetime, not just while pooled.
    fn checkout(
        self: &Arc<Self>,
        key: &FnKey,
    ) -> Result<(Container, StartKind, u64, usize), String> {
        if let Some(c) = self.pool.lock().get_mut(key).and_then(Vec::pop) {
            let before = c.rss_bytes();
            return Ok((c, StartKind::Warm, 0, before));
        }
        // Cold start: reserve the image's worth of memory under the lock so
        // concurrent admissions cannot jointly overshoot (the OOM behaviour
        // of §6.2 at high parallelism).
        {
            let mut resident = self.resident_bytes.lock();
            let projected = *resident + self.config.image.image_bytes;
            if projected > self.config.host_memory_limit {
                return Err(format!(
                    "OOMKilled: container would exceed host memory ({projected} > {})",
                    self.config.host_memory_limit
                ));
            }
            *resident = projected;
        }
        let image = match self.host_image() {
            Some(i) => i,
            None => {
                let mut resident = self.resident_bytes.lock();
                *resident = resident.saturating_sub(self.config.image.image_bytes);
                return Err("image missing from registry".to_string());
            }
        };
        let t0 = Instant::now();
        let c = Container::cold_start(
            self.next_container.fetch_add(1, Ordering::Relaxed),
            &key.0,
            &key.1,
            &image,
            &self.config.image,
            Arc::clone(&self.kv),
            Arc::clone(self) as Arc<dyn HttpRouter>,
        );
        let before = c.rss_bytes();
        {
            // Replace the reservation with the actual footprint.
            let mut resident = self.resident_bytes.lock();
            *resident = resident.saturating_sub(self.config.image.image_bytes) + before;
        }
        Ok((c, StartKind::Cold, t0.elapsed().as_nanos() as u64, before))
    }

    fn execute(self: &Arc<Self>, q: QueuedCall) {
        let key = (q.call.user.clone(), q.call.function.clone());
        let Some(guest) = self.registry.get(&key.0, &key.1) else {
            self.deliver(
                CallResult::error(q.call.id, format!("unknown function {}/{}", key.0, key.1)),
                q.reply_to,
            );
            return;
        };
        let (mut container, kind, init_ns, rss_before) = match self.checkout(&key) {
            Ok(c) => c,
            Err(e) => {
                self.deliver(CallResult::error(q.call.id, e), q.reply_to);
                return;
            }
        };
        self.metrics.record_start(kind, init_ns);

        let t0 = Instant::now();
        let result = container.run(guest.as_ref(), q.call.id, &q.call.input);
        let exec_ns = t0.elapsed().as_nanos() as u64;
        // Containers are billed their full RSS — no page sharing with
        // co-located functions (§6.2).
        let rss_after = container.rss_bytes();
        self.metrics.record_call(exec_ns, 0, 0, rss_after as f64);

        // Charge state-cache growth and keep warm.
        {
            let mut resident = self.resident_bytes.lock();
            *resident = resident.saturating_sub(rss_before) + rss_after;
        }
        self.pool.lock().entry(key).or_default().push(container);
        self.deliver(result, q.reply_to);
    }

    fn deliver(&self, result: CallResult, reply_to: HostId) {
        if reply_to == self.host_id {
            self.pending.fulfill(result);
        } else {
            let msg = frame(
                &InstanceMsg::Result { result },
                self.config.http_overhead_bytes,
            );
            let _ = self.nic.send(reply_to, msg);
        }
    }

    fn self_arc(&self) -> Option<Arc<BaselineHost>> {
        BASELINE_REGISTRY
            .lock()
            .get(&self.host_id)
            .and_then(std::sync::Weak::upgrade)
    }

    fn register_self(self: &Arc<Self>) {
        BASELINE_REGISTRY
            .lock()
            .insert(self.host_id, Arc::downgrade(self));
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.pool.lock().clear();
        BASELINE_REGISTRY.lock().remove(&self.host_id);
    }
}

impl HttpRouter for BaselineHost {
    fn chain_call(&self, user: &str, function: &str, input: Vec<u8>) -> CallId {
        let id = CallId(self.call_seq.fetch_add(1, Ordering::Relaxed));
        self.pending.register(id.0);
        let call = CallSpec {
            id,
            user: user.to_string(),
            function: function.to_string(),
            input,
            trace: faasm_sched::TraceCtx::NONE,
        };
        // Chaining goes back through the gateway: pick any host (including
        // possibly ourselves) and pay HTTP framing for the hop.
        let target = self.routing.next().unwrap_or(self.host_id);
        let msg = frame(
            &InstanceMsg::Invoke {
                call,
                reply_to: self.host_id,
                forwarded: true,
            },
            self.config.http_overhead_bytes,
        );
        if self.nic.send(target, msg).is_err() {
            self.pending
                .fulfill(CallResult::error(id, "gateway unreachable"));
        }
        id
    }

    fn await_call(&self, id: CallId) -> CallResult {
        loop {
            if let Some(r) = self.pending.try_take(id.0) {
                return r;
            }
            // Help execute queued work to avoid worker-pool deadlocks on
            // deep chains.
            if let Ok(q) = self.queue_rx.try_recv() {
                if let Some(me) = self.self_arc() {
                    me.execute(q);
                    continue;
                }
                let _ = self.queue_tx.send(q);
            }
            if let Some(r) = self.pending.wait(id.0, Duration::from_millis(1)) {
                return r;
            }
            if self.stop.load(Ordering::Relaxed) {
                return CallResult::error(id, "platform shutting down");
            }
        }
    }
}

static BASELINE_REGISTRY: BaselineSelfRegistry = BaselineSelfRegistry::new();

struct BaselineSelfRegistry {
    inner: std::sync::OnceLock<Mutex<HashMap<HostId, std::sync::Weak<BaselineHost>>>>,
}

impl BaselineSelfRegistry {
    const fn new() -> BaselineSelfRegistry {
        BaselineSelfRegistry {
            inner: std::sync::OnceLock::new(),
        }
    }

    fn lock(&self) -> parking_lot::MutexGuard<'_, HashMap<HostId, std::sync::Weak<BaselineHost>>> {
        self.inner.get_or_init(|| Mutex::new(HashMap::new())).lock()
    }
}

/// The running container platform.
pub struct BaselinePlatform {
    fabric: Fabric,
    kvs: Option<KvServer>,
    object_store: Arc<ObjectStore>,
    registry: Arc<BaselineRegistry>,
    hosts: Vec<Arc<BaselineHost>>,
    routing: Arc<RoundRobin>,
    gateway_nic: Nic,
    gateway_pending: Arc<Pending>,
    gateway_stop: Arc<AtomicBool>,
    gateway_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    driver_kv: SharedKv,
    call_seq: Arc<AtomicU64>,
    config: BaselineConfig,
}

impl std::fmt::Debug for BaselinePlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselinePlatform")
            .field("hosts", &self.hosts.len())
            .finish()
    }
}

impl BaselinePlatform {
    /// Start a platform with `hosts` hosts and default settings.
    pub fn new(hosts: usize) -> BaselinePlatform {
        BaselinePlatform::with_config(BaselineConfig {
            hosts,
            ..BaselineConfig::default()
        })
    }

    /// Start a platform from explicit configuration.
    pub fn with_config(config: BaselineConfig) -> BaselinePlatform {
        let fabric = Fabric::new();
        let kvs_nic = fabric.add_host();
        let kvs = KvServer::start(kvs_nic, config.kvs_workers.max(1));
        let kvs_host = kvs.host_id();
        let object_store = Arc::new(ObjectStore::new());
        publish_image(&object_store, &config.image);
        let registry = Arc::new(BaselineRegistry::default());
        let call_seq = Arc::new(AtomicU64::new(1));
        let routing = Arc::new(RoundRobin::new());

        let hosts: Vec<Arc<BaselineHost>> = (0..config.hosts.max(1))
            .map(|_| {
                BaselineHost::start(
                    &fabric,
                    kvs_host,
                    Arc::clone(&object_store),
                    Arc::clone(&registry),
                    Arc::clone(&call_seq),
                    Arc::clone(&routing),
                    config.clone(),
                )
            })
            .collect();
        for h in &hosts {
            routing.add(h.host_id());
        }

        let gateway_nic = fabric.add_host();
        let gateway_pending = Arc::new(Pending::default());
        let gateway_stop = Arc::new(AtomicBool::new(false));
        let gateway_thread = {
            let nic = gateway_nic.clone();
            let pending = Arc::clone(&gateway_pending);
            let stop = Arc::clone(&gateway_stop);
            std::thread::Builder::new()
                .name("bl-gateway".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match nic.recv_timeout(Duration::from_millis(20)) {
                            Ok(env) => {
                                if let Some(InstanceMsg::Result { result }) = unframe(&env.payload)
                                {
                                    pending.fulfill(result);
                                }
                            }
                            Err(faasm_net::NetError::Timeout) => {}
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn gateway")
        };
        let driver_kv: SharedKv = Arc::new(KvClient::connect(fabric.add_host(), kvs_host));

        BaselinePlatform {
            fabric,
            kvs: Some(kvs),
            object_store,
            registry,
            hosts,
            routing,
            gateway_nic,
            gateway_pending,
            gateway_stop,
            gateway_thread: Mutex::new(Some(gateway_thread)),
            driver_kv,
            call_seq,
            config,
        }
    }

    /// Register a function.
    pub fn register(&self, user: &str, function: &str, guest: Arc<dyn ContainerGuest>) {
        self.registry
            .guests
            .lock()
            .insert((user.to_string(), function.to_string()), guest);
    }

    /// Invoke synchronously.
    pub fn invoke(&self, user: &str, function: &str, input: Vec<u8>) -> CallResult {
        let id = self.invoke_async(user, function, input);
        self.await_result(id)
    }

    /// Invoke asynchronously.
    pub fn invoke_async(&self, user: &str, function: &str, input: Vec<u8>) -> CallId {
        let id = CallId(self.call_seq.fetch_add(1, Ordering::Relaxed));
        self.gateway_pending.register(id.0);
        let call = CallSpec {
            id,
            user: user.to_string(),
            function: function.to_string(),
            input,
            trace: faasm_sched::TraceCtx::NONE,
        };
        let Some(target) = self.routing.next() else {
            self.gateway_pending
                .fulfill(CallResult::error(id, "no hosts"));
            return id;
        };
        let msg = frame(
            &InstanceMsg::Invoke {
                call,
                reply_to: self.gateway_nic.id(),
                forwarded: true,
            },
            self.config.http_overhead_bytes,
        );
        if self.gateway_nic.send(target, msg).is_err() {
            self.gateway_pending
                .fulfill(CallResult::error(id, "host unreachable"));
        }
        id
    }

    /// Wait for an asynchronous invocation.
    pub fn await_result(&self, id: CallId) -> CallResult {
        self.gateway_pending
            .wait(id.0, self.config.invoke_timeout)
            .unwrap_or_else(|| CallResult::error(id, "invocation timed out"))
    }

    /// The platform fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The image registry / object store.
    pub fn object_store(&self) -> &Arc<ObjectStore> {
        &self.object_store
    }

    /// Driver-side KVS client.
    pub fn kv(&self) -> &SharedKv {
        &self.driver_kv
    }

    /// The hosts.
    pub fn hosts(&self) -> &[Arc<BaselineHost>] {
        &self.hosts
    }

    /// Completed calls across hosts.
    pub fn total_calls(&self) -> u64 {
        self.hosts.iter().map(|h| h.metrics().calls()).sum()
    }

    /// Billable memory across hosts (Fig. 6c, container side).
    pub fn billable_gb_seconds(&self) -> f64 {
        self.hosts
            .iter()
            .map(|h| h.metrics().billable_gb_seconds())
            .sum()
    }

    /// Resident container bytes across hosts.
    pub fn resident_bytes(&self) -> usize {
        self.hosts.iter().map(|h| h.resident_bytes()).sum()
    }

    /// Evict all warm containers (force cold starts).
    pub fn evict_all(&self) {
        for h in &self.hosts {
            h.evict_all();
        }
    }

    /// Stop everything; called on drop.
    pub fn shutdown(&self) {
        for h in &self.hosts {
            h.shutdown();
        }
        self.gateway_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.gateway_thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for BaselinePlatform {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(kvs) = self.kvs.take() {
            kvs.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerApi;
    use faasm_sched::CallStatus;

    fn echo_guest() -> Arc<dyn ContainerGuest> {
        Arc::new(|api: &mut ContainerApi<'_>| {
            let data = api.input().to_vec();
            api.write_output(&data);
            Ok(0)
        })
    }

    fn small_platform(hosts: usize) -> BaselinePlatform {
        BaselinePlatform::with_config(BaselineConfig {
            hosts,
            image: ImageConfig {
                image_bytes: 256 * 1024,
                layers: 3,
                boot_passes: 2,
            },
            ..BaselineConfig::default()
        })
    }

    #[test]
    fn end_to_end_invoke() {
        let p = small_platform(2);
        p.register("u", "echo", echo_guest());
        let r = p.invoke("u", "echo", b"container".to_vec());
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, b"container");
        assert_eq!(p.total_calls(), 1);
    }

    #[test]
    fn unknown_function_errors() {
        let p = small_platform(1);
        let r = p.invoke("u", "ghost", vec![]);
        assert!(matches!(r.status, CallStatus::Error(_)));
    }

    #[test]
    fn containers_kept_warm_and_evictable() {
        let p = small_platform(1);
        p.register("u", "echo", echo_guest());
        p.invoke("u", "echo", vec![1]);
        p.invoke("u", "echo", vec![2]);
        let m = p.hosts()[0].metrics();
        assert_eq!(m.cold_starts(), 1);
        assert_eq!(m.warm_starts(), 1);
        assert_eq!(p.hosts()[0].pooled_containers(), 1);
        p.evict_all();
        assert_eq!(p.hosts()[0].pooled_containers(), 0);
        p.invoke("u", "echo", vec![3]);
        assert_eq!(m.cold_starts(), 2, "eviction forces a cold start");
    }

    #[test]
    fn cold_start_is_slower_than_warm() {
        let p = small_platform(1);
        p.register("u", "echo", echo_guest());
        p.invoke("u", "echo", vec![0]);
        let cold_ns = p.hosts()[0].metrics().mean_init_ns();
        assert!(cold_ns > 10_000, "cold start does real work: {cold_ns} ns");
    }

    #[test]
    fn oom_at_memory_limit() {
        let p = BaselinePlatform::with_config(BaselineConfig {
            hosts: 1,
            image: ImageConfig {
                image_bytes: 512 * 1024,
                layers: 2,
                boot_passes: 1,
            },
            // Budget for ~2 containers.
            host_memory_limit: 1100 * 1024,
            ..BaselineConfig::default()
        });
        // A guest that parks until told otherwise would be complex; instead
        // grow the pool by invoking distinct functions (each keeps one warm
        // container resident).
        p.register("u", "f1", echo_guest());
        p.register("u", "f2", echo_guest());
        p.register("u", "f3", echo_guest());
        assert_eq!(p.invoke("u", "f1", vec![]).status, CallStatus::Success);
        assert_eq!(p.invoke("u", "f2", vec![]).status, CallStatus::Success);
        let r = p.invoke("u", "f3", vec![]);
        assert!(
            matches!(&r.status, CallStatus::Error(e) if e.contains("OOM")),
            "third container must OOM: {:?}",
            r.status
        );
    }

    #[test]
    fn chaining_through_gateway() {
        let p = small_platform(2);
        p.register(
            "u",
            "child",
            Arc::new(|api: &mut ContainerApi<'_>| {
                let v = api.input()[0] * 2;
                api.write_output(&[v]);
                Ok(0)
            }),
        );
        p.register(
            "u",
            "parent",
            Arc::new(|api: &mut ContainerApi<'_>| {
                let input = api.input().to_vec();
                let id = api.chain("child", input);
                if api.await_call(id) != 0 {
                    return Err("child failed".into());
                }
                let out = api.call_output(id).unwrap()[0] + 1;
                api.write_output(&[out]);
                Ok(0)
            }),
        );
        let r = p.invoke("u", "parent", vec![20]);
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, vec![41]);
    }

    #[test]
    fn image_pulled_once_per_host() {
        let p = small_platform(2);
        p.register("u", "echo", echo_guest());
        for i in 0..6 {
            p.invoke("u", "echo", vec![i]);
        }
        // At most one pull per host (2 hosts).
        assert!(p.object_store().pulls() <= 2);
    }

    #[test]
    fn http_overhead_charged_per_hop() {
        let p = small_platform(1);
        p.register("u", "echo", echo_guest());
        let before = p.fabric().stats().snapshot();
        p.invoke("u", "echo", vec![0; 8]);
        let delta = p.fabric().stats().snapshot().delta(&before);
        // Invoke + result, each with ≥256 bytes HTTP overhead on top of the
        // protocol bytes.
        assert!(
            delta.bytes_sent >= 2 * 256,
            "HTTP framing must be charged: {delta:?}"
        );
    }

    #[test]
    fn billable_memory_charges_full_rss() {
        let p = small_platform(1);
        p.register("u", "echo", echo_guest());
        p.invoke("u", "echo", vec![0]);
        assert!(p.billable_gb_seconds() > 0.0);
        assert!(p.resident_bytes() >= 256 * 1024);
    }
}
