//! Ablation: zero-copy shared regions vs copy-based state access (§3.3).
//!
//! The paper's core claim: co-located functions should *share* state memory
//! rather than copy it. Compares reading a 64 KiB value through a mapped
//! shared region against fetching a private copy from the global tier.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_kvs::{KvClient, KvServer, KvStore};
use faasm_mem::{LinearMemory, SharedRegion, PAGE_SIZE};
use faasm_net::Fabric;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_sharing");

    // Zero-copy: region mapped into a linear memory once, then read.
    let region = SharedRegion::from_bytes(&vec![7u8; PAGE_SIZE]);
    let mut mem = LinearMemory::new(1, 8).unwrap();
    let base = mem.map_shared(&region).unwrap();
    group.bench_function("shared_region_read_64k", |b| {
        let mut buf = vec![0u8; PAGE_SIZE];
        b.iter(|| {
            mem.read(base, &mut buf).unwrap();
            std::hint::black_box(buf[123])
        })
    });

    // Copy path: the container model — fetch the whole value from the
    // global tier over the fabric into a private copy (what every container
    // replica pays per cold access; co-located Faaslets pay it once).
    let store = Arc::new(KvStore::new());
    store.set("k", vec![7u8; PAGE_SIZE]);
    let fabric = Fabric::new();
    let server = KvServer::start_with_store(fabric.add_host(), 2, store);
    let kv = KvClient::connect(fabric.add_host(), server.host_id());
    group.bench_function("kv_fetch_copy_64k_over_fabric", |b| {
        b.iter(|| std::hint::black_box(kv.get("k").unwrap().unwrap()))
    });

    // Mapping cost itself (amortised once per Faaslet).
    group.bench_function("map_shared_region", |b| {
        b.iter(|| {
            let mut m = LinearMemory::new(1, 8).unwrap();
            std::hint::black_box(m.map_shared(&region).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
