//! Interpreter dispatch throughput: instructions per second on arithmetic
//! and memory-heavy loops (context for the Fig. 9a ratios).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use faasm_fvm::prelude::*;

fn instance(src: &str) -> Instance {
    let module = faasm_lang::compile(src).unwrap();
    let object = ObjectModule::prepare(module).unwrap();
    Instance::new(object, &Linker::new(), Box::new(())).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_dispatch");
    // ~6 instructions per iteration, 10k iterations.
    let mut arith = instance(
        "int main() { int acc = 0; for (int i = 0; i < 10000; i = i + 1) { acc = acc + i; } return acc; }",
    );
    group.throughput(Throughput::Elements(60_000));
    group.bench_function("arith_loop_60k_instrs", |b| {
        b.iter(|| std::hint::black_box(arith.invoke("main", &[]).unwrap()))
    });

    let mut memory = instance(
        r#"
        int main() {
            ptr int p = (ptr int) 1024;
            int acc = 0;
            for (int i = 0; i < 5000; i = i + 1) {
                p[i % 1000] = i;
                acc = acc + p[(i * 7) % 1000];
            }
            return acc;
        }
        "#,
    );
    group.throughput(Throughput::Elements(5000));
    group.bench_function("memory_loop_5k_iters", |b| {
        b.iter(|| std::hint::black_box(memory.invoke("main", &[]).unwrap()))
    });

    let mut calls = instance(
        r#"
        int leaf(int x) { return x + 1; }
        int main() {
            int acc = 0;
            for (int i = 0; i < 2000; i = i + 1) { acc = leaf(acc); }
            return acc;
        }
        "#,
    );
    group.throughput(Throughput::Elements(2000));
    group.bench_function("call_loop_2k_calls", |b| {
        b.iter(|| std::hint::black_box(calls.invoke("main", &[]).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
