//! Execution-tier dispatch throughput: interpreter vs lowered on
//! arithmetic, memory and call loops (context for the Fig. 9a ratios).
//!
//! Writes `BENCH_vm.json` at the repo root with source-instructions/s per
//! tier and the lowered-over-interpreter speedup. `-- --test` runs a
//! smoke pass that also asserts the lowered tier actually wins on the
//! arithmetic loop.

use faasm_bench::vm_tiers::{measure, workloads, TierPoint};

fn json_point(p: &TierPoint) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"fuel_per_invoke\":{},",
            "\"interpreter\":{{\"instrs_per_sec\":{:.0},\"dispatches_per_invoke\":{}}},",
            "\"lowered\":{{\"instrs_per_sec\":{:.0},\"dispatches_per_invoke\":{}}},",
            "\"speedup\":{:.3},\"dispatch_ratio\":{:.3}}}"
        ),
        p.workload,
        p.fuel_per_invoke,
        p.interp_ips,
        p.interp_dispatches,
        p.lowered_ips,
        p.lowered_dispatches,
        p.speedup(),
        p.dispatch_ratio(),
    )
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (rounds, invokes) = if test_mode { (3, 2) } else { (9, 20) };

    let mut points = Vec::new();
    for w in workloads() {
        let p = measure(&w, rounds, invokes);
        println!(
            "{:<12} {:>8} instrs/invoke  interp {:>7.2} Mi/s  lowered {:>7.2} Mi/s  speedup {:.2}x  fused width {:.2}",
            p.workload,
            p.fuel_per_invoke,
            p.interp_ips / 1e6,
            p.lowered_ips / 1e6,
            p.speedup(),
            p.fuel_per_invoke as f64 / p.lowered_dispatches as f64,
        );
        points.push(p);
    }

    if test_mode {
        let arith = &points[0];
        assert!(
            arith.speedup() > 1.0,
            "lowered tier must beat the interpreter on arith_loop (got {:.2}x)",
            arith.speedup()
        );
        assert!(
            points
                .iter()
                .all(|p| p.lowered_dispatches < p.interp_dispatches),
            "lowering must retire fewer dispatches on every workload"
        );
        println!("test bench vm_dispatch ... ok");
        return;
    }

    let series: Vec<String> = points.iter().map(json_point).collect();
    let json = format!(
        "{{\"bench\":\"vm_dispatch\",\"unit\":\"source_instrs_per_sec\",\"workloads\":[{}]}}\n",
        series.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_vm.json");
    std::fs::write(path, &json).unwrap();
    println!("snapshot written to {path}");
}
