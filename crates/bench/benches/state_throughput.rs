//! Global-tier state throughput: chunk batching and shard scaling.
//!
//! Two experiments against live `KvServer`s on the fabric:
//!
//! 1. **Chunk batching** — pull/push of a 64-chunk value through the
//!    seed's per-chunk protocol (one `GetRange`/`SetRange` round-trip plus
//!    one region copy per chunk) versus the batched
//!    `MultiGetRange`/`MultiSetRange` path `StateEntry` now uses (one
//!    round-trip per flush). 4 KiB chunks, so the per-request overhead
//!    batching removes is visible against the in-process fabric's
//!    microsecond RPCs; `modelled_*` fields restate the same message and
//!    byte counts as wire time on the paper's 1 Gbps / 100 µs testbed
//!    links, where the 64:1 round-trip ratio dominates.
//! 2. **Shard scaling** — aggregate pull/push throughput of 8 concurrent
//!    workers against 1, 2 and 4 state shards. Each shard server's NIC is
//!    token-bucket shaped (the paper's testbed runs the tier on 1 Gbps
//!    links, so a shard's NIC — not this machine's CPU — is the contended
//!    resource); keys are chosen so every shard owns an equal share.
//!
//! Run with `cargo bench --bench state_throughput`; a full run snapshots
//! `BENCH_state.json` at the repo root. Under `--test` it runs a tiny
//! smoke pass and writes nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_core::{Cluster, ClusterConfig};
use faasm_kvs::{
    reshard, KvBackend, KvClient, KvServer, KvStore, RoutingCell, RoutingTable, ShardRouting,
    ShardedKvClient,
};
use faasm_mem::SharedRegion;
use faasm_net::{Fabric, HostId, TokenBucket};
use faasm_state::StateEntry;

/// Shard-scaling series: the default 16 KiB chunks.
const CHUNK: usize = 16 * 1024;
const CHUNKS: usize = 64;
const VALUE: usize = CHUNK * CHUNKS;

/// Chunk-batching series: 64 chunks of 4 KiB.
const BATCH_CHUNK: usize = 4 * 1024;
const BATCH_VALUE: usize = BATCH_CHUNK * CHUNKS;

/// Shard-scaling parameters: per-shard NIC rate and worker threads.
const SHARD_NIC_BYTES_PER_SEC: u64 = 24 * 1024 * 1024;
const SHARD_NIC_BURST: u64 = 512 * 1024;
const WORKERS: usize = 8;

struct Tier {
    fabric: Fabric,
    servers: Vec<KvServer>,
}

impl Tier {
    fn start(shards: usize, shaped: bool) -> Tier {
        let fabric = Fabric::new();
        let servers = (0..shards)
            .map(|_| {
                let shaping = shaped
                    .then(|| Arc::new(TokenBucket::new(SHARD_NIC_BYTES_PER_SEC, SHARD_NIC_BURST)));
                KvServer::start_shaped(fabric.add_host(), 2, Arc::new(KvStore::new()), shaping)
            })
            .collect();
        Tier { fabric, servers }
    }

    fn hosts(&self) -> Vec<HostId> {
        self.servers.iter().map(KvServer::host_id).collect()
    }

    fn client(&self) -> Arc<ShardedKvClient> {
        let nic = self.fabric.add_host();
        Arc::new(ShardedKvClient::new(
            self.hosts()
                .iter()
                .map(|h| KvClient::connect(nic.clone(), *h))
                .collect(),
        ))
    }
}

/// Keys that spread `per_shard` keys onto each of `shards` shards
/// (rendezvous routing is a pure function of key and shard count, so no
/// live clients are needed to probe placement).
fn balanced_keys(shards: usize, per_shard: usize) -> Vec<String> {
    let mut per = vec![0usize; shards];
    let mut keys = Vec::new();
    let mut i = 0usize;
    while keys.len() < shards * per_shard {
        let key = format!("st:k{i}");
        let owner = ShardedKvClient::shard_index_for(&key, shards);
        if per[owner] < per_shard {
            per[owner] += 1;
            keys.push(key);
        }
        i += 1;
    }
    keys
}

struct BatchPoint {
    per_chunk_ms: f64,
    batched_ms: f64,
    speedup: f64,
}

/// Time `iters` runs of `op` after a short warmup, returning the median
/// milliseconds per run (robust against scheduler spikes on a shared box).
fn time_ms(iters: usize, op: impl FnMut()) -> f64 {
    time_ms_with_setup(iters, || {}, op)
}

/// [`time_ms`] with an untimed per-iteration `setup` step run before each
/// timed `op` (and before each warmup run).
fn time_ms_with_setup(iters: usize, mut setup: impl FnMut(), mut op: impl FnMut()) -> f64 {
    for _ in 0..3 {
        setup();
        op();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            setup();
            let t0 = Instant::now();
            op();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Chunk batching: the seed's per-chunk protocol (one RPC and one region
/// copy per chunk) vs one batched round-trip, same server, same bytes.
fn bench_batching(iters: usize) -> (BatchPoint, BatchPoint) {
    let tier = Tier::start(1, false);
    let kv = tier.client();
    kv.set("batch:k", vec![7u8; BATCH_VALUE]).unwrap();
    let entry = StateEntry::new(
        "batch:k",
        BATCH_VALUE,
        SharedRegion::new(BATCH_VALUE),
        Arc::clone(&kv) as faasm_kvs::SharedKv,
        BATCH_CHUNK,
    )
    .unwrap();
    let region = SharedRegion::new(BATCH_VALUE);

    // Pull: the seed protocol fetched every chunk with its own RPC and
    // copied it into the replica region chunk by chunk.
    let per_chunk_pull = time_ms(iters, || {
        for c in 0..CHUNKS {
            let data = kv
                .get_range("batch:k", (c * BATCH_CHUNK) as u64, BATCH_CHUNK as u64)
                .unwrap()
                .unwrap();
            region.write(c * BATCH_CHUNK, &data).unwrap();
        }
    });
    let batched_pull = time_ms(iters, || {
        entry.invalidate();
        entry.pull().unwrap();
    });

    // Push: all chunks dirty — per-chunk region read + SetRange, vs one
    // MultiSetRange. Only the flush is timed; the application's region
    // write that dirties the replica is identical in both protocols.
    let buf = vec![9u8; BATCH_VALUE];
    region.write(0, &buf).unwrap();
    let per_chunk_push = time_ms(iters, || {
        for c in 0..CHUNKS {
            let mut b = vec![0u8; BATCH_CHUNK];
            region.read(c * BATCH_CHUNK, &mut b).unwrap();
            kv.set_range("batch:k", (c * BATCH_CHUNK) as u64, b)
                .unwrap();
        }
    });
    let batched_push = time_ms_with_setup(
        iters,
        || entry.write(0, &buf).unwrap(),
        || entry.push().unwrap(),
    );

    (
        BatchPoint {
            per_chunk_ms: per_chunk_pull,
            batched_ms: batched_pull,
            speedup: per_chunk_pull / batched_pull,
        },
        BatchPoint {
            per_chunk_ms: per_chunk_push,
            batched_ms: batched_push,
            speedup: per_chunk_push / batched_push,
        },
    )
}

#[derive(Clone, Copy)]
enum Op {
    Pull,
    Push,
}

struct ScalePoint {
    shards: usize,
    pull_mbps: f64,
    push_mbps: f64,
}

/// Aggregate MB/s of `WORKERS` concurrent workers for `secs` wall seconds.
fn drive_shards(tier: &Tier, keys: &[String], op: Op, secs: f64) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let bytes = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = keys
        .iter()
        .map(|key| {
            let kv = tier.client();
            let key = key.clone();
            let stop = Arc::clone(&stop);
            let bytes = Arc::clone(&bytes);
            std::thread::spawn(move || {
                let entry = StateEntry::new(
                    &key,
                    VALUE,
                    SharedRegion::new(VALUE),
                    Arc::clone(&kv) as faasm_kvs::SharedKv,
                    CHUNK,
                )
                .unwrap();
                let buf = vec![3u8; VALUE];
                while !stop.load(Ordering::Relaxed) {
                    match op {
                        Op::Pull => {
                            entry.invalidate();
                            entry.pull().unwrap();
                        }
                        Op::Push => {
                            entry.write(0, &buf).unwrap();
                            entry.push().unwrap();
                        }
                    }
                    bytes.fetch_add(VALUE as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    bytes.load(Ordering::Relaxed) as f64 / elapsed / (1024.0 * 1024.0)
}

struct ReshardPoint {
    before_mbps: f64,
    during_mbps: f64,
    after_mbps: f64,
    min_window_mbps: f64,
    migration_ms: f64,
}

/// Live reshard under load: 6 workers keep pushing 1 MiB values through
/// cell-connected clients while a third shard joins the 2-shard tier.
/// Throughput is sampled in 25 ms windows; the series records the rate
/// before / during / after the migration and the worst single window
/// (which must stay above zero — service never fully stops).
fn bench_reshard(secs: f64) -> ReshardPoint {
    const RESHARD_WORKERS: usize = 6;
    let fabric = Fabric::new();
    let servers: Vec<KvServer> = (0..2)
        .map(|i| {
            KvServer::start_routed(
                fabric.add_host(),
                2,
                Arc::new(KvStore::new()),
                ShardRouting::new(1, 2, i),
            )
        })
        .collect();
    let cell = RoutingCell::new(RoutingTable::new(
        1,
        servers.iter().map(KvServer::host_id).collect(),
    ));
    let keys = balanced_keys(2, RESHARD_WORKERS / 2);
    let driver = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
    for key in &keys {
        driver.set(key, vec![7u8; VALUE]).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let bytes = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = keys
        .iter()
        .map(|key| {
            let kv = Arc::new(ShardedKvClient::connect(
                fabric.add_host(),
                Arc::clone(&cell),
            ));
            let key = key.clone();
            let stop = Arc::clone(&stop);
            let bytes = Arc::clone(&bytes);
            std::thread::spawn(move || {
                let entry = StateEntry::new(
                    &key,
                    VALUE,
                    SharedRegion::new(VALUE),
                    kv as faasm_kvs::SharedKv,
                    CHUNK,
                )
                .unwrap();
                let buf = vec![3u8; VALUE];
                while !stop.load(Ordering::Relaxed) {
                    entry.write(0, &buf).unwrap();
                    entry.push().unwrap();
                    bytes.fetch_add(VALUE as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Sample cumulative bytes every 25 ms for the whole run.
    let sampling = Arc::new(AtomicBool::new(true));
    let samples: Arc<std::sync::Mutex<Vec<(Instant, u64)>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let sampler = {
        let sampling = Arc::clone(&sampling);
        let samples = Arc::clone(&samples);
        let bytes = Arc::clone(&bytes);
        std::thread::spawn(move || {
            while sampling.load(Ordering::Relaxed) {
                samples
                    .lock()
                    .unwrap()
                    .push((Instant::now(), bytes.load(Ordering::Relaxed)));
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    std::thread::sleep(Duration::from_secs_f64(secs));
    let grow_start = Instant::now();
    let joiner = KvServer::start_routed(
        fabric.add_host(),
        2,
        Arc::new(KvStore::new()),
        ShardRouting::new(2, 3, 2),
    );
    reshard::grow(&fabric.add_host(), &cell, joiner.host_id()).unwrap();
    let grow_end = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(secs));

    sampling.store(false, Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }

    // Classify the sampled windows by their overlap with the migration.
    let samples = samples.lock().unwrap();
    let mut phase_bytes = [0u64; 3];
    let mut phase_secs = [0f64; 3];
    let mut min_window_mbps = f64::INFINITY;
    for pair in samples.windows(2) {
        let (t0, b0) = pair[0];
        let (t1, b1) = pair[1];
        let dur = t1.duration_since(t0).as_secs_f64();
        if dur <= 0.0 {
            continue;
        }
        let phase = if t1 <= grow_start {
            0
        } else if t0 < grow_end {
            1
        } else {
            2
        };
        phase_bytes[phase] += b1 - b0;
        phase_secs[phase] += dur;
        let mbps = (b1 - b0) as f64 / dur / (1024.0 * 1024.0);
        min_window_mbps = min_window_mbps.min(mbps);
    }
    let rate = |p: usize| {
        if phase_secs[p] > 0.0 {
            phase_bytes[p] as f64 / phase_secs[p] / (1024.0 * 1024.0)
        } else {
            0.0
        }
    };
    ReshardPoint {
        before_mbps: rate(0),
        during_mbps: rate(1),
        after_mbps: rate(2),
        min_window_mbps,
        migration_ms: grow_end.duration_since(grow_start).as_secs_f64() * 1e3,
    }
}

struct ReplPoint {
    replication: usize,
    set_ms: f64,
    sets_per_sec: f64,
}

/// The write cost of quorum replication: median driver `set` latency on a
/// 3-shard tier at a given replication factor. An R=2 write pays one
/// synchronous forward (export + RPC to the backup's replica NIC) inside
/// the acknowledgement path; R=1 is the single-owner tier unchanged.
fn bench_replicated_write(iters: usize, replication: usize) -> ReplPoint {
    const SETS_PER_ITER: usize = 32;
    let cluster = Cluster::with_config(ClusterConfig {
        hosts: 1,
        state_shards: 3,
        replication_factor: replication,
        ..ClusterConfig::default()
    });
    let value = vec![5u8; 16 * 1024];
    let iter_ms = time_ms(iters, || {
        for i in 0..SETS_PER_ITER {
            cluster.kv().set(&format!("rw:{i}"), value.clone()).unwrap();
        }
    });
    cluster.shutdown();
    let set_ms = iter_ms / SETS_PER_ITER as f64;
    ReplPoint {
        replication,
        set_ms,
        sets_per_sec: 1e3 / set_ms,
    }
}

struct FailoverPoint {
    blackout_ms: f64,
    acked_writes: u64,
    lost_writes: u64,
    promotions: u64,
}

/// Failover blackout under a write storm: 4 writers hammer an R=2 tier,
/// a primary slot is killed abruptly, and the liveness monitor drives the
/// failover epoch. The blackout is the wall time a write primaried on the
/// dead slot waits between the kill and the promoted backup serving it;
/// every acknowledged write is audited afterwards (`lost_writes` must be
/// zero — that is the replication invariant, not a performance number).
fn bench_failover(secs: f64) -> FailoverPoint {
    const FO_WORKERS: usize = 4;
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 1,
        state_shards: 3,
        replication_factor: 2,
        ..ClusterConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..FO_WORKERS)
        .map(|w| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    cluster
                        .kv()
                        .set(&format!("fo:{w}:{n}"), n.to_le_bytes().to_vec())
                        .expect("acknowledged write");
                    n += 1;
                }
                n
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs_f64(secs));
    let victim = 1usize;
    let table = cluster.state_routing().load();
    let blackout_key = (0..10_000)
        .map(|i| format!("fo:blackout:{i}"))
        .find(|k| table.primary_for(k) == victim)
        .expect("some key is primaried on the victim");
    drop(table);
    cluster.kill_state_shard(victim);
    // Detection (liveness monitor) + failover epoch + promotion, measured
    // as the wait of one write that can only be served by the new primary.
    let t0 = Instant::now();
    cluster
        .kv()
        .set(&blackout_key, b"post-failover".to_vec())
        .expect("write lands on the promoted backup");
    let blackout_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);

    let per_worker: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();
    let acked_writes: u64 = per_worker.iter().sum();
    let mut lost_writes = 0u64;
    for (w, &acked) in per_worker.iter().enumerate() {
        for n in 0..acked {
            let got = cluster.kv().get(&format!("fo:{w}:{n}")).unwrap();
            if got != Some(n.to_le_bytes().to_vec()) {
                lost_writes += 1;
            }
        }
    }
    let promotions = cluster
        .state_shard_stats()
        .map(|stats| stats.iter().map(|s| s.promotions).sum())
        .unwrap_or(0);
    cluster.shutdown();
    FailoverPoint {
        blackout_ms,
        acked_writes,
        lost_writes,
        promotions,
    }
}

struct CachePoint {
    uncached_reads_per_sec: f64,
    cached_reads_per_sec: f64,
    speedup: f64,
    hit_rate: f64,
    uncached_p50_us: f64,
    uncached_p99_us: f64,
    cached_p50_us: f64,
    cached_p99_us: f64,
}

/// Zipfian read storm through the function-side cache vs the bare sharded
/// client: same tier, same keys, same access sequence. The cache serves
/// leased snapshots of the hot head of the distribution, so nearly every
/// read skips the wire; the uncached client pays a full RPC per read.
fn bench_cached_zipfian(secs: f64) -> CachePoint {
    const ZIPF_KEYS: usize = 64;
    const ZIPF_VALUE: usize = 4 * 1024;

    let tier = Tier::start(2, false);
    let kv = tier.client();
    let keys: Vec<String> = (0..ZIPF_KEYS).map(|i| format!("zipf:{i}")).collect();
    for key in &keys {
        kv.set(key, vec![5u8; ZIPF_VALUE]).unwrap();
    }
    // Zipf(1.1) cumulative weights and a deterministic xorshift mixer so
    // both runs replay the identical access sequence.
    let mut cum = Vec::with_capacity(ZIPF_KEYS);
    let mut acc = 0.0f64;
    for rank in 0..ZIPF_KEYS {
        acc += 1.0 / ((rank + 1) as f64).powf(1.1);
        cum.push(acc);
    }
    let pick = |seed: &mut u64| -> usize {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        let u = (*seed >> 11) as f64 / (1u64 << 53) as f64 * acc;
        cum.iter().position(|c| *c >= u).unwrap_or(ZIPF_KEYS - 1)
    };

    let storm = |reader: &dyn KvBackend| -> (f64, f64, f64) {
        let mut seed = 0x5eed_0123_4567_u64;
        let mut lat_us: Vec<f64> = Vec::with_capacity(1 << 16);
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < secs {
            let key = &keys[pick(&mut seed)];
            let t = Instant::now();
            let got = reader.get(key).unwrap();
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(got.is_some(), "seeded key must be present");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        lat_us.sort_by(f64::total_cmp);
        let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
        (lat_us.len() as f64 / elapsed, pct(0.50), pct(0.99))
    };

    let (uncached_rps, u_p50, u_p99) = storm(kv.as_ref());
    let cache = faasm_kvs::CachedKv::new(
        Arc::clone(&kv) as faasm_kvs::SharedKv,
        faasm_kvs::CacheConfig::default(),
    );
    let (cached_rps, c_p50, c_p99) = storm(&cache);

    CachePoint {
        uncached_reads_per_sec: uncached_rps,
        cached_reads_per_sec: cached_rps,
        speedup: cached_rps / uncached_rps,
        hit_rate: cache.stats().hit_rate(),
        uncached_p50_us: u_p50,
        uncached_p99_us: u_p99,
        cached_p50_us: c_p50,
        cached_p99_us: c_p99,
    }
}

fn bench_shards(shards: usize, secs: f64) -> ScalePoint {
    let tier = Tier::start(shards, true);
    // The same 8 workers at every shard count, balanced over the shards.
    let keys = balanced_keys(shards, WORKERS / shards);
    let driver = tier.client();
    for key in &keys {
        driver.set(key, vec![7u8; VALUE]).unwrap();
    }
    let pull_mbps = drive_shards(&tier, &keys, Op::Pull, secs);
    let push_mbps = drive_shards(&tier, &keys, Op::Push, secs);
    ScalePoint {
        shards,
        pull_mbps,
        push_mbps,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, secs) = if test_mode { (2, 0.2) } else { (20, 1.5) };

    println!("== chunk batching ({CHUNKS} x {BATCH_CHUNK} B chunks, 1 shard, unshaped) ==");
    let (pull, push) = bench_batching(iters);
    println!(
        "pull: per-chunk {:.3} ms, batched {:.3} ms ({:.1}x)",
        pull.per_chunk_ms, pull.batched_ms, pull.speedup
    );
    println!(
        "push: per-chunk {:.3} ms, batched {:.3} ms ({:.1}x)",
        push.per_chunk_ms, push.batched_ms, push.speedup
    );
    // The same message/byte counts restated on the paper's testbed links:
    // 64 round-trips (128 one-way messages) vs one.
    let model = faasm_net::NetModel::default();
    let modelled_per_chunk = model.batch_time(2 * CHUNKS as u64, BATCH_VALUE as u64);
    let modelled_batched = model.batch_time(2, BATCH_VALUE as u64);
    println!(
        "modelled wire time (1 Gbps, 100 us latency): per-chunk {:.2} ms, batched {:.2} ms ({:.0}x)",
        modelled_per_chunk.as_secs_f64() * 1e3,
        modelled_batched.as_secs_f64() * 1e3,
        modelled_per_chunk.as_secs_f64() / modelled_batched.as_secs_f64()
    );

    println!(
        "\n== shard scaling ({WORKERS} workers, {} MB/s NIC per shard) ==",
        SHARD_NIC_BYTES_PER_SEC / (1024 * 1024)
    );
    let mut series = Vec::new();
    for shards in [1usize, 2, 4] {
        let p = bench_shards(shards, secs);
        println!(
            "{} shard(s): pull {:.1} MB/s, push {:.1} MB/s aggregate",
            p.shards, p.pull_mbps, p.push_mbps
        );
        series.push(p);
    }
    let pull_scaling = series[2].pull_mbps / series[0].pull_mbps;
    let push_scaling = series[2].push_mbps / series[0].push_mbps;
    println!("4-shard scaling: pull {pull_scaling:.2}x, push {push_scaling:.2}x");

    println!("\n== live reshard (6 push workers, third shard joins mid-run) ==");
    let reshard = bench_reshard(secs);
    println!(
        "throughput: before {:.1} MB/s, during {:.1} MB/s, after {:.1} MB/s",
        reshard.before_mbps, reshard.during_mbps, reshard.after_mbps
    );
    println!(
        "migration {:.1} ms; worst 25 ms window {:.1} MB/s",
        reshard.migration_ms, reshard.min_window_mbps
    );
    assert!(
        reshard.during_mbps > 0.0,
        "service must continue during a live reshard"
    );

    println!("\n== cached zipfian reads (64 x 4 KiB keys, 2 shards, zipf 1.1) ==");
    let cached = bench_cached_zipfian(secs.max(0.3));
    println!(
        "uncached: {:.0} reads/s (p50 {:.1} us, p99 {:.1} us)",
        cached.uncached_reads_per_sec, cached.uncached_p50_us, cached.uncached_p99_us
    );
    println!(
        "cached:   {:.0} reads/s (p50 {:.1} us, p99 {:.1} us), hit rate {:.1}%",
        cached.cached_reads_per_sec,
        cached.cached_p50_us,
        cached.cached_p99_us,
        cached.hit_rate * 100.0
    );
    println!("cache speedup: {:.1}x", cached.speedup);
    assert!(
        cached.hit_rate >= 0.90,
        "zipfian hit rate {:.3} must reach 90%",
        cached.hit_rate
    );
    assert!(
        cached.speedup >= 5.0,
        "cached read throughput {:.1}x must reach 5x uncached",
        cached.speedup
    );

    println!("\n== replicated writes (3 shards, driver sets of 16 KiB) ==");
    let repl: Vec<ReplPoint> = [1usize, 2]
        .iter()
        .map(|&r| {
            let p = bench_replicated_write(iters, r);
            println!(
                "R={}: {:.3} ms/set, {:.0} sets/s",
                p.replication, p.set_ms, p.sets_per_sec
            );
            p
        })
        .collect();
    let repl_overhead = repl[1].set_ms / repl[0].set_ms;
    println!("R=2 write cost: {repl_overhead:.2}x the R=1 write");

    println!("\n== failover blackout (R=2, 4 writers, primary killed mid-storm) ==");
    let failover = bench_failover(secs);
    println!(
        "blackout {:.1} ms (kill -> promoted backup serves); {} acked writes, {} lost; {} promotion(s)",
        failover.blackout_ms, failover.acked_writes, failover.lost_writes, failover.promotions
    );
    assert_eq!(
        failover.lost_writes, 0,
        "an acknowledged write must never be lost across failover"
    );

    if test_mode {
        println!("test bench state_throughput ... ok");
        return;
    }

    // Snapshot for the repo (hand-rolled JSON: the workspace is std-only).
    let mut json = String::from("{\n  \"bench\": \"state_throughput\",\n  \"chunks\": 64,\n");
    json.push_str(&format!(
        "  \"batching\": {{\n    \"chunk_bytes\": {BATCH_CHUNK},\n    \"value_bytes\": {BATCH_VALUE},\n    \"pull\": {{\"per_chunk_ms\": {:.3}, \"batched_ms\": {:.3}, \"speedup\": {:.2}}},\n    \"push\": {{\"per_chunk_ms\": {:.3}, \"batched_ms\": {:.3}, \"speedup\": {:.2}}},\n    \"modelled_wire_ms\": {{\"per_chunk\": {:.2}, \"batched\": {:.2}}}\n  }},\n",
        pull.per_chunk_ms, pull.batched_ms, pull.speedup,
        push.per_chunk_ms, push.batched_ms, push.speedup,
        modelled_per_chunk.as_secs_f64() * 1e3,
        modelled_batched.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"shard_value_bytes\": {VALUE},\n  \"shard_chunk_bytes\": {CHUNK},\n"
    ));
    json.push_str(&format!(
        "  \"shard_scaling\": {{\n    \"workers\": {WORKERS},\n    \"shard_nic_mbps\": {},\n    \"series\": [\n",
        SHARD_NIC_BYTES_PER_SEC / (1024 * 1024)
    ));
    for (i, p) in series.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"shards\": {}, \"pull_mbps\": {:.1}, \"push_mbps\": {:.1}}}{}\n",
            p.shards,
            p.pull_mbps,
            p.push_mbps,
            if i + 1 == series.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"pull_scaling_4x\": {pull_scaling:.2},\n    \"push_scaling_4x\": {push_scaling:.2}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"reshard_live\": {{\n    \"workers\": 6,\n    \"shards\": \"2 -> 3\",\n    \"before_mbps\": {:.1},\n    \"during_mbps\": {:.1},\n    \"after_mbps\": {:.1},\n    \"min_window_mbps\": {:.1},\n    \"migration_ms\": {:.1}\n  }},\n",
        reshard.before_mbps,
        reshard.during_mbps,
        reshard.after_mbps,
        reshard.min_window_mbps,
        reshard.migration_ms
    ));
    json.push_str(&format!(
        "  \"cached_zipfian\": {{\n    \"keys\": 64,\n    \"value_bytes\": 4096,\n    \"zipf_s\": 1.1,\n    \"uncached_reads_per_sec\": {:.0},\n    \"cached_reads_per_sec\": {:.0},\n    \"speedup\": {:.1},\n    \"hit_rate\": {:.3},\n    \"uncached_p50_us\": {:.1},\n    \"uncached_p99_us\": {:.1},\n    \"cached_p50_us\": {:.1},\n    \"cached_p99_us\": {:.1}\n  }},\n",
        cached.uncached_reads_per_sec,
        cached.cached_reads_per_sec,
        cached.speedup,
        cached.hit_rate,
        cached.uncached_p50_us,
        cached.uncached_p99_us,
        cached.cached_p50_us,
        cached.cached_p99_us
    ));
    json.push_str("  \"replicated_write\": {\n    \"shards\": 3,\n    \"series\": [\n");
    for (i, p) in repl.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"replication\": {}, \"set_ms\": {:.3}, \"sets_per_sec\": {:.0}}}{}\n",
            p.replication,
            p.set_ms,
            p.sets_per_sec,
            if i + 1 == repl.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"r2_write_cost_x\": {repl_overhead:.2}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"failover_blackout\": {{\n    \"replication\": 2,\n    \"shards\": 3,\n    \"writers\": 4,\n    \"blackout_ms\": {:.1},\n    \"acked_writes\": {},\n    \"lost_writes\": {},\n    \"promotions\": {}\n  }}\n}}\n",
        failover.blackout_ms, failover.acked_writes, failover.lost_writes, failover.promotions
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_state.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nsnapshot written to BENCH_state.json"),
        Err(e) => eprintln!("\ncould not write snapshot: {e}"),
    }
}
