//! Cold-start vs snapshot-distributed restore at cluster scale (§5.2).
//!
//! Three experiments:
//!
//! * **First-call latency** by resolve path: a cold start (compile-free but
//!   init-running instantiate + capture + publish), a chunk-fetched restore
//!   on a second host, and a pre-staged restore on a host whose snapshot
//!   cache was warmed over the bus before the call.
//! * **Scale-up storm**: a 0→N burst across every host of a cluster after
//!   one publisher call; the single-flight resolver and the snapshot plane
//!   must keep it at exactly one capture and zero failures.
//! * **Dedup across proto versions**: publishing a second version whose
//!   init dirties one page differently must ship only the changed page.
//!
//! Run with `cargo bench --bench coldstart`; a full run snapshots its
//! numbers to `BENCH_coldstart.json` at the repo root. Under `cargo test`
//! (cargo passes `--test`) it runs scaled-down loads and writes nothing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_core::{ChainRouter, Cluster, UploadOptions};

/// The storm function: init dirties three 64 KiB pages (one of them with a
/// version-specific seed), so the proto ships real content and a cold
/// start pays a real init. `main` echoes.
fn storm_src(seed: u32) -> String {
    format!(
        r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);
        int init() {{
            ptr int a = (ptr int) 1024;
            for (int i = 0; i < 8000; i = i + 1) {{ a[i] = {seed} + i; }}
            ptr int b = (ptr int) 65536;
            for (int i = 0; i < 8000; i = i + 1) {{ b[i] = i * 3; }}
            ptr int c = (ptr int) 131072;
            for (int i = 0; i < 8000; i = i + 1) {{ c[i] = i * 5; }}
            return 0;
        }}
        int main() {{
            int n = input_size();
            read_call_input((ptr int) 512, n);
            write_call_output((ptr int) 512, n);
            return 0;
        }}
        "#
    )
}

fn upload_storm(cluster: &Cluster, function: &str, seed: u32) {
    cluster
        .upload_fl(
            "bench",
            function,
            &storm_src(seed),
            UploadOptions {
                init: Some("init".into()),
                ..UploadOptions::default()
            },
        )
        .unwrap();
}

struct FirstCalls {
    cold_ns: u64,
    fetch_ns: u64,
    prestaged_ns: u64,
}

/// First-call latency down each resolve path, on three hosts of one
/// cluster: host 0 cold-starts (and publishes), host 1 chunk-fetches,
/// host 2 is pre-staged before its call.
fn first_calls() -> FirstCalls {
    let cluster = faasm_bench::faasm_cluster(3, 2);
    upload_storm(&cluster, "work", 1_000_000);
    let hosts = cluster.instances();

    let t0 = Instant::now();
    let r = hosts[0].invoke_local("bench", "work", vec![1]);
    let cold_ns = t0.elapsed().as_nanos() as u64;
    assert!(r.status == faasm_core::CallStatus::Success);

    // Host 1: nothing local — the call fetches chunks from the tier,
    // verifies, assembles and restores.
    let t0 = Instant::now();
    let id = hosts[1].submit_placed("bench", "work", vec![2]);
    let r = hosts[1].await_call(id);
    let fetch_ns = t0.elapsed().as_nanos() as u64;
    assert!(r.status == faasm_core::CallStatus::Success);
    assert!(hosts[1].metrics().cold_starts() == 0);

    // Host 2: pre-staged over the bus first, so the call is a pure local
    // copy-on-write restore.
    assert!(hosts[0].push_prestage("bench", "work", hosts[2].host_id()));
    for _ in 0..2_000 {
        if hosts[2].has_proto("bench", "work") {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        hosts[2].has_proto("bench", "work"),
        "pre-stage never landed"
    );
    let t0 = Instant::now();
    let id = hosts[2].submit_placed("bench", "work", vec![3]);
    let r = hosts[2].await_call(id);
    let prestaged_ns = t0.elapsed().as_nanos() as u64;
    assert!(r.status == faasm_core::CallStatus::Success);
    assert!(hosts[2].metrics().cold_starts() == 0);

    FirstCalls {
        cold_ns,
        fetch_ns,
        prestaged_ns,
    }
}

struct StormOutcome {
    hosts: usize,
    calls: usize,
    failed: usize,
    captures: u64,
    restores: u64,
    warm: u64,
    warm_restore_rate: f64,
    chunks_fetched: u64,
    chunk_hits: u64,
}

/// A 0→N scale-up storm: one publisher call, pre-stage every host, then a
/// barrier-released burst of `calls_per_thread` calls from
/// `threads_per_host` threads against every host at once.
fn storm(hosts: usize, threads_per_host: usize, calls_per_thread: usize) -> StormOutcome {
    let cluster = Arc::new(faasm_bench::faasm_cluster(hosts, 2));
    upload_storm(&cluster, "work", 1_000_000);
    let r = cluster.instances()[0].invoke_local("bench", "work", vec![0]);
    assert!(r.status == faasm_core::CallStatus::Success);
    for inst in &cluster.instances()[1..] {
        let _ = cluster.instances()[0].push_prestage("bench", "work", inst.host_id());
    }
    for inst in &cluster.instances()[1..] {
        for _ in 0..2_000 {
            if inst.has_proto("bench", "work") {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let barrier = Arc::new(std::sync::Barrier::new(hosts * threads_per_host));
    let handles: Vec<_> = (0..hosts * threads_per_host)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let inst = Arc::clone(&cluster.instances()[t % hosts]);
                barrier.wait();
                let mut failed = 0usize;
                for i in 0..calls_per_thread {
                    let id = inst.submit_placed("bench", "work", vec![i as u8]);
                    if inst.await_call(id).status != faasm_core::CallStatus::Success {
                        failed += 1;
                    }
                }
                failed
            })
        })
        .collect();
    let failed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let (mut captures, mut restores, mut warm) = (0u64, 0u64, 0u64);
    let (mut chunks_fetched, mut chunk_hits) = (0u64, 0u64);
    for inst in cluster.instances() {
        let m = inst.metrics();
        captures += m.cold_starts();
        restores += m.proto_restores();
        warm += m.warm_starts();
        let s = inst.snapshot_stats();
        chunks_fetched += s.chunks_fetched;
        chunk_hits += s.chunk_hits;
    }
    let starts = captures + restores + warm;
    StormOutcome {
        hosts,
        calls: hosts * threads_per_host * calls_per_thread + 1,
        failed,
        captures,
        restores,
        warm,
        warm_restore_rate: (starts - captures) as f64 / starts.max(1) as f64,
        chunks_fetched,
        chunk_hits,
    }
}

struct DedupOutcome {
    chunks_published_v2: u64,
    chunks_deduped_v2: u64,
    bytes_deduped_v2: u64,
    dedup_ratio: f64,
}

/// Publish two proto versions whose init differs in exactly one page's
/// seed: the shared pages must dedup at publish (shipped once).
fn dedup() -> DedupOutcome {
    let cluster = faasm_bench::faasm_cluster(1, 2);
    upload_storm(&cluster, "work_v1", 1_000_000);
    upload_storm(&cluster, "work_v2", 2_000_000);
    let inst = &cluster.instances()[0];
    inst.invoke_local("bench", "work_v1", vec![1]);
    let before = inst.snapshot_stats();
    inst.invoke_local("bench", "work_v2", vec![1]);
    let after = inst.snapshot_stats();
    let published = after.chunks_published - before.chunks_published;
    let deduped = after.chunks_deduped - before.chunks_deduped;
    DedupOutcome {
        chunks_published_v2: published,
        chunks_deduped_v2: deduped,
        bytes_deduped_v2: after.bytes_deduped - before.bytes_deduped,
        dedup_ratio: deduped as f64 / (published + deduped).max(1) as f64,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");

    let fc = first_calls();
    let speedup = fc.cold_ns as f64 / fc.prestaged_ns.max(1) as f64;
    println!(
        "first-call latency: cold {:.2} ms, chunk-fetch restore {:.2} ms, pre-staged restore {:.2} ms ({speedup:.1}x vs cold)",
        fc.cold_ns as f64 / 1e6,
        fc.fetch_ns as f64 / 1e6,
        fc.prestaged_ns as f64 / 1e6,
    );

    let (hosts, threads, calls) = if test_mode { (3, 2, 4) } else { (8, 4, 32) };
    let s = storm(hosts, threads, calls);
    println!(
        "scale-up storm: {} calls over {} hosts — {} failed, {} captures, {} restores, {} warm ({:.1}% warm-restore rate), {} chunks fetched / {} cache hits",
        s.calls,
        s.hosts,
        s.failed,
        s.captures,
        s.restores,
        s.warm,
        s.warm_restore_rate * 100.0,
        s.chunks_fetched,
        s.chunk_hits,
    );
    assert!(s.failed == 0, "storm dropped calls");
    assert!(s.captures == 1, "duplicate captures: {}", s.captures);

    let d = dedup();
    println!(
        "dedup across versions: v2 published {} chunks, deduped {} ({} bytes saved, {:.0}% of chunks shared)",
        d.chunks_published_v2,
        d.chunks_deduped_v2,
        d.bytes_deduped_v2,
        d.dedup_ratio * 100.0,
    );
    assert!(
        d.chunks_deduped_v2 >= 1,
        "no cross-version chunk dedup observed"
    );

    if test_mode {
        println!("test bench coldstart ... ok");
        return;
    }
    assert!(
        speedup >= 10.0,
        "pre-staged restore must beat cold start by >=10x, got {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"coldstart\",\n  \"first_call\": {{\"cold_ns\": {}, \"fetch_restore_ns\": {}, \"prestaged_restore_ns\": {}, \"cold_over_prestaged\": {:.1}}},\n  \"storm\": {{\"hosts\": {}, \"calls\": {}, \"failed\": {}, \"captures\": {}, \"restores\": {}, \"warm\": {}, \"warm_restore_rate\": {:.4}, \"chunks_fetched\": {}, \"chunk_hits\": {}}},\n  \"dedup\": {{\"versions\": 2, \"chunks_published_v2\": {}, \"chunks_deduped_v2\": {}, \"bytes_deduped_v2\": {}, \"dedup_ratio\": {:.4}}}\n}}\n",
        fc.cold_ns,
        fc.fetch_ns,
        fc.prestaged_ns,
        speedup,
        s.hosts,
        s.calls,
        s.failed,
        s.captures,
        s.restores,
        s.warm,
        s.warm_restore_rate,
        s.chunks_fetched,
        s.chunk_hits,
        d.chunks_published_v2,
        d.chunks_deduped_v2,
        d.bytes_deduped_v2,
        d.dedup_ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coldstart.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nsnapshot written to BENCH_coldstart.json"),
        Err(e) => eprintln!("\ncould not write snapshot: {e}"),
    }
}
