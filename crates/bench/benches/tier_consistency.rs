//! Ablation: batched push (VectorAsync, Listing 1) vs write-through
//! consistency (§4.1's variable-consistency design point).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_kvs::{KvClient, KvStore};
use faasm_state::{SharedVector, StateManager};

fn manager() -> StateManager {
    StateManager::new(Arc::new(KvClient::local(Arc::new(KvStore::new()))))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tier_consistency");
    let updates = 256usize;

    // Batched: N local updates, one push (the HOGWILD! pattern).
    let mgr = manager();
    let v = SharedVector::open(&mgr, "w", 512).unwrap();
    v.init(&vec![0.0; 512]).unwrap();
    group.bench_function("batched_push_256_updates", |b| {
        b.iter(|| {
            for i in 0..updates {
                v.add(i % 512, 1.0).unwrap();
            }
            v.push().unwrap();
        })
    });

    // Write-through: every update goes straight to the global tier (the
    // container platform's only option, §6.2).
    let mgr2 = manager();
    let kv = Arc::clone(mgr2.kv());
    kv.set("wt", vec![0u8; 512 * 8]).unwrap();
    group.bench_function("write_through_256_updates", |b| {
        b.iter(|| {
            for i in 0..updates {
                let off = (i % 512) as u64 * 8;
                kv.set_range("wt", off, 1.0f64.to_le_bytes().to_vec())
                    .unwrap();
            }
        })
    });

    // Strong consistency: global lock around a read-modify-write (§4.2).
    let mgr3 = manager();
    let entry = mgr3.get("locked", 64).unwrap();
    group.bench_function("global_locked_rmw", |b| {
        b.iter(|| {
            entry.lock_global_write().unwrap();
            entry.write(0, &1.0f64.to_le_bytes()).unwrap();
            entry.push().unwrap();
            entry.unlock_global_write().unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
