//! Ablation: chunked pulls vs whole-value pulls (§4.2's state chunks —
//! "the entire matrix is not transferred unnecessarily").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_kvs::{KvClient, KvStore};
use faasm_state::StateManager;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunks");
    let value_size = 1 << 20; // 1 MiB state value.

    for (name, chunk) in [("chunked_16k", 16 * 1024), ("whole_value", value_size)] {
        let store = Arc::new(KvStore::new());
        store.set("m", vec![3u8; value_size]);
        let kv = Arc::new(KvClient::local(store));
        let mgr = StateManager::with_chunk_size(kv, chunk);
        group.bench_function(format!("{name}_read_4k_slice"), |b| {
            let mut buf = vec![0u8; 4096];
            b.iter(|| {
                // Fresh entry each iteration: first touch triggers the pull.
                mgr.evict("m");
                let e = mgr.get("m", value_size).unwrap();
                e.read(512 * 1024, &mut buf).unwrap();
                std::hint::black_box(buf[0]);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
