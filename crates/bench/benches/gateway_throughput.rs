//! Gateway throughput under offered load.
//!
//! Drives the ingress tier at several offered request rates and measures
//! what it sustains: completed requests/second, queueing-delay p50/p99 and
//! shed counts. Run with `cargo bench --bench gateway_throughput`; a full
//! run snapshots its numbers to `BENCH_gateway.json` at the repo root.
//! Under `cargo test` (cargo passes `--test`) it runs one tiny load as a
//! smoke test and writes nothing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_core::{Cluster, ClusterConfig};
use faasm_gateway::{Gateway, GatewayConfig, GatewayStatus};

const WORK: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        read_call_input((ptr int) 1024, 4);
        ptr int p = (ptr int) 1024;
        int acc = 0;
        for (int i = 0; i < 500; i = i + 1) {
            acc = acc + i * p[0];
        }
        p[0] = acc;
        write_call_output((ptr int) 1024, 4);
        return 0;
    }
"#;

struct LoadPoint {
    offered_rps: u64,
    requests: usize,
    completed: u64,
    shed: u64,
    sustained_rps: f64,
    p50_queue_ms: f64,
    p99_queue_ms: f64,
    batch_occupancy: f64,
}

/// Offer `requests` at `offered_rps` from `clients` paced client threads.
fn drive(offered_rps: u64, requests: usize, clients: usize) -> LoadPoint {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 4,
        ..ClusterConfig::default()
    }));
    cluster
        .upload_fl("bench", "work", WORK, Default::default())
        .unwrap();
    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 4,
            max_batch: 32,
            ..GatewayConfig::default()
        },
    ));
    // Warm the proto so the sweep measures steady state, not first-upload.
    assert!(gateway
        .call("bench", "work", 1i32.to_le_bytes().to_vec())
        .is_ok());

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let gw = Arc::clone(&gateway);
        let n = requests / clients;
        let per_client_rps = offered_rps as f64 / clients as f64;
        handles.push(std::thread::spawn(move || {
            let gap = Duration::from_secs_f64(1.0 / per_client_rps);
            let start = Instant::now();
            let mut ok = 0u64;
            let mut shed = 0u64;
            for i in 0..n {
                // Open-loop pacing: send at the offered rate regardless of
                // completions (the honest way to measure an ingress tier).
                let due = start + gap * i as u32;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let input = (i as i32 + c as i32).to_le_bytes().to_vec();
                match gw.call("bench", "work", input).status {
                    GatewayStatus::Ok => ok += 1,
                    GatewayStatus::Overloaded | GatewayStatus::Expired => shed += 1,
                    GatewayStatus::Failed(_) | GatewayStatus::Error(_) => {}
                }
            }
            (ok, shed)
        }));
    }
    let mut completed = 0;
    let mut shed = 0;
    for h in handles {
        let (ok, s) = h.join().unwrap();
        completed += ok;
        shed += s;
    }
    let elapsed = t0.elapsed();
    let m = gateway.metrics();
    LoadPoint {
        offered_rps,
        requests,
        completed,
        shed,
        sustained_rps: completed as f64 / elapsed.as_secs_f64(),
        p50_queue_ms: m.queue_delay_p50_ns() as f64 / 1e6,
        p99_queue_ms: m.queue_delay_p99_ns() as f64 / 1e6,
        batch_occupancy: m.batch_occupancy(),
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let loads: &[(u64, usize)] = if test_mode {
        &[(500, 50)]
    } else {
        &[(1_000, 2_000), (4_000, 8_000), (16_000, 16_000)]
    };

    let mut points = Vec::new();
    println!(
        "{:>12} {:>10} {:>12} {:>8} {:>12} {:>12} {:>10}",
        "offered r/s", "requests", "sustained", "shed", "p50 queue", "p99 queue", "batch occ"
    );
    for &(rps, requests) in loads {
        let p = drive(rps, requests, 4);
        println!(
            "{:>12} {:>10} {:>12.0} {:>8} {:>9.3} ms {:>9.3} ms {:>10.2}",
            p.offered_rps,
            p.requests,
            p.sustained_rps,
            p.shed,
            p.p50_queue_ms,
            p.p99_queue_ms,
            p.batch_occupancy
        );
        points.push(p);
    }

    if test_mode {
        println!("test bench gateway_throughput ... ok");
        return;
    }

    // Snapshot for the repo (hand-rolled JSON: the workspace is std-only).
    let mut json = String::from("{\n  \"bench\": \"gateway_throughput\",\n  \"hosts\": 4,\n  \"dispatchers\": 4,\n  \"loads\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered_rps\": {}, \"requests\": {}, \"completed\": {}, \"shed\": {}, \"sustained_rps\": {:.0}, \"p50_queue_ms\": {:.3}, \"p99_queue_ms\": {:.3}, \"batch_occupancy\": {:.2}}}{}\n",
            p.offered_rps,
            p.requests,
            p.completed,
            p.shed,
            p.sustained_rps,
            p.p50_queue_ms,
            p.p99_queue_ms,
            p.batch_occupancy,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gateway.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nsnapshot written to BENCH_gateway.json"),
        Err(e) => eprintln!("\ncould not write snapshot: {e}"),
    }
}
