//! Gateway throughput under offered load, in-process and over the fabric.
//!
//! Drives the ingress tier at several offered request rates through both
//! front doors — direct `Gateway::call` and a `GatewayClient` speaking the
//! wire protocol to a `GatewayServer` on its own fabric host — and measures
//! what each sustains: completed requests/second, queueing-delay p50/p99
//! and shed counts. Run with `cargo bench --bench gateway_throughput`; a
//! full run snapshots its numbers to `BENCH_gateway.json` at the repo root.
//! Under `cargo test` (cargo passes `--test`) it runs one tiny load per
//! mode as a smoke test and writes nothing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_core::{Cluster, ClusterConfig, NativeApi, NativeGuest};
use faasm_gateway::{
    Gateway, GatewayClient, GatewayConfig, GatewayServer, GatewayStatus, TenantPolicy,
};

const WORK: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        read_call_input((ptr int) 1024, 4);
        ptr int p = (ptr int) 1024;
        int acc = 0;
        for (int i = 0; i < 500; i = i + 1) {
            acc = acc + i * p[0];
        }
        p[0] = acc;
        write_call_output((ptr int) 1024, 4);
        return 0;
    }
"#;

/// Which front door the load goes through, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ingress {
    /// Direct blocking `Gateway::call` (the PR-1 baseline path): each
    /// client thread has at most one request in flight.
    InProcess,
    /// `GatewayClient` → fabric → `GatewayServer` (remote ingress).
    OverFabric,
    /// Pipelined `Gateway::submit` + deferred `wait`: many requests in
    /// flight per client, so drained batches actually fill and the
    /// batch-aware dispatch path (`submit_placed_batch`, one bus message
    /// per instance per batch) carries the load.
    Batched,
}

struct LoadPoint {
    offered_rps: u64,
    requests: usize,
    completed: u64,
    shed: u64,
    sustained_rps: f64,
    p50_queue_ms: f64,
    p99_queue_ms: f64,
    batch_occupancy: f64,
}

/// Offer `requests` at `offered_rps` from `clients` paced client threads.
fn drive(ingress: Ingress, offered_rps: u64, requests: usize, clients: usize) -> LoadPoint {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 4,
        ..ClusterConfig::default()
    }));
    cluster
        .upload_fl("bench", "work", WORK, Default::default())
        .unwrap();
    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 4,
            max_batch: 32,
            // Enough submitted-but-incomplete calls to keep every worker
            // busy between drains without swamping the instance run queues
            // (the cluster has 16 workers).
            max_inflight: 64,
            // This bench measures dispatch throughput; the pipelined mode
            // holds a deliberately deep backlog, which would otherwise keep
            // the autoscaler pre-warming against a queue no warm pool can
            // shrink (all workers already busy), stealing cycles from the
            // measurement.
            autoscale: None,
            ..GatewayConfig::default()
        },
    ));
    // Open-loop pipelined submission keeps thousands of requests queued at
    // once (that is the point: full batches). Size the bench tenant's
    // bounded queue for that, in every mode alike, so the measurement is
    // of dispatch throughput rather than of the default burst cap.
    gateway.set_tenant_policy(
        "bench",
        TenantPolicy {
            queue_cap: 32_768,
            ..TenantPolicy::default()
        },
    );
    let server = match ingress {
        Ingress::InProcess | Ingress::Batched => None,
        Ingress::OverFabric => Some(GatewayServer::start(
            Arc::clone(&gateway),
            cluster.add_fabric_host(),
        )),
    };
    // Warm the proto so the sweep measures steady state, not first-upload.
    assert!(gateway
        .call("bench", "work", 1i32.to_le_bytes().to_vec())
        .is_ok());

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let gw = Arc::clone(&gateway);
        // Each over-fabric client is its own fabric host with its own
        // connection, like distinct remote machines would be.
        let remote = server.as_ref().map(|s| {
            GatewayClient::connect(cluster.add_fabric_host(), s.host_id())
                .expect("connect to ingress")
        });
        let n = requests / clients;
        let per_client_rps = offered_rps as f64 / clients as f64;
        handles.push(std::thread::spawn(move || {
            let gap = Duration::from_secs_f64(1.0 / per_client_rps);
            let start = Instant::now();
            // Pipelined mode: a paired waiter drains responses while this
            // thread keeps submitting, so the client is never the
            // serialisation point.
            let (ticket_tx, ticket_rx) = std::sync::mpsc::channel::<u64>();
            let waiter = (ingress == Ingress::Batched).then(|| {
                let gw = Arc::clone(&gw);
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for ticket in ticket_rx {
                        match gw.wait(ticket).status {
                            GatewayStatus::Ok => ok += 1,
                            GatewayStatus::Overloaded | GatewayStatus::Expired => shed += 1,
                            GatewayStatus::Failed(_) | GatewayStatus::Error(_) => {}
                        }
                    }
                    (ok, shed)
                })
            });
            let mut ok = 0u64;
            let mut shed = 0u64;
            // Batched clients pace in small bursts: the offered rate is the
            // same, but a sleep per request would cost 16k timer wakeups a
            // second at the top load — measuring the clock, not the tier.
            let burst = if ingress == Ingress::Batched { 16 } else { 1 };
            for i in 0..n {
                // Open-loop pacing: send at the offered rate regardless of
                // completions (the honest way to measure an ingress tier).
                if i % burst == 0 {
                    let due = start + gap * i as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let input = (i as i32 + c as i32).to_le_bytes().to_vec();
                if ingress == Ingress::Batched {
                    let _ = ticket_tx.send(gw.submit("bench", "work", input));
                    continue;
                }
                let status = match &remote {
                    Some(client) => match client.call("bench", "work", input) {
                        Ok(resp) => resp.status,
                        Err(e) => panic!("remote submit failed: {e}"),
                    },
                    None => gw.call("bench", "work", input).status,
                };
                match status {
                    GatewayStatus::Ok => ok += 1,
                    GatewayStatus::Overloaded | GatewayStatus::Expired => shed += 1,
                    GatewayStatus::Failed(_) | GatewayStatus::Error(_) => {}
                }
            }
            drop(ticket_tx);
            if let Some(w) = waiter {
                let (w_ok, w_shed) = w.join().expect("waiter thread");
                ok += w_ok;
                shed += w_shed;
            }
            (ok, shed)
        }));
    }
    let mut completed = 0;
    let mut shed = 0;
    for h in handles {
        let (ok, s) = h.join().unwrap();
        completed += ok;
        shed += s;
    }
    let elapsed = t0.elapsed();
    let m = gateway.metrics();
    LoadPoint {
        offered_rps,
        requests,
        completed,
        shed,
        sustained_rps: completed as f64 / elapsed.as_secs_f64(),
        p50_queue_ms: m.queue_delay_p50_ns() as f64 / 1e6,
        p99_queue_ms: m.queue_delay_p99_ns() as f64 / 1e6,
        batch_occupancy: m.batch_occupancy(),
    }
}

fn run_mode(ingress: Ingress, loads: &[(u64, usize)]) -> Vec<LoadPoint> {
    let label = match ingress {
        Ingress::InProcess => "in-process",
        Ingress::OverFabric => "over-fabric",
        Ingress::Batched => "batched",
    };
    let mut points = Vec::new();
    println!(
        "\n== {label} ingress ==\n{:>12} {:>10} {:>12} {:>8} {:>12} {:>12} {:>10}",
        "offered r/s", "requests", "sustained", "shed", "p50 queue", "p99 queue", "batch occ"
    );
    for &(rps, requests) in loads {
        let p = drive(ingress, rps, requests, 4);
        println!(
            "{:>12} {:>10} {:>12.0} {:>8} {:>9.3} ms {:>9.3} ms {:>10.2}",
            p.offered_rps,
            p.requests,
            p.sustained_rps,
            p.shed,
            p.p50_queue_ms,
            p.p99_queue_ms,
            p.batch_occupancy
        );
        points.push(p);
    }
    points
}

fn json_points(points: &[LoadPoint]) -> String {
    let mut out = String::new();
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"offered_rps\": {}, \"requests\": {}, \"completed\": {}, \"shed\": {}, \"sustained_rps\": {:.0}, \"p50_queue_ms\": {:.3}, \"p99_queue_ms\": {:.3}, \"batch_occupancy\": {:.2}}}{}\n",
            p.offered_rps,
            p.requests,
            p.completed,
            p.shed,
            p.sustained_rps,
            p.p50_queue_ms,
            p.p99_queue_ms,
            p.batch_occupancy,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out
}

/// Shared-model bytes the state-bound function pulls every call.
const AFFINITY_MODEL_BYTES: usize = 64 * 1024;

/// Batched ingress with a *state-bound* function: every call invalidates
/// and re-pulls a shared 64 KiB model from the global tier before a little
/// compute. Uncached, each call pays the wire for the whole model; with
/// the function-side cache the pull is served from a leased snapshot, and
/// the affinity board steers placement toward instances whose caches
/// already hold the model. The point of comparison is the queueing-delay
/// tail (p99) at the same offered load.
fn drive_state_bound(offered_rps: u64, requests: usize, cache_bytes: usize) -> LoadPoint {
    const CLIENTS: usize = 4;
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 4,
        cache_bytes,
        ..ClusterConfig::default()
    }));
    cluster
        .kv()
        .set("aff:model", vec![7u8; AFFINITY_MODEL_BYTES])
        .unwrap();
    let guest: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
        let entry = api
            .state("aff:model", AFFINITY_MODEL_BYTES)
            .map_err(faasm_fvm::Trap::host)?;
        entry.invalidate();
        entry.pull().map_err(faasm_fvm::Trap::host)?;
        let mut buf = [0u8; 64];
        entry.read(0, &mut buf).map_err(faasm_fvm::Trap::host)?;
        let acc: u64 = buf.iter().map(|b| u64::from(*b)).sum();
        api.write_output(&acc.to_le_bytes());
        Ok(0)
    });
    cluster.register_native("bench", "modelread", guest, false);
    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 4,
            max_batch: 32,
            max_inflight: 64,
            autoscale: None,
            ..GatewayConfig::default()
        },
    ));
    gateway.set_tenant_policy(
        "bench",
        TenantPolicy {
            queue_cap: 32_768,
            ..TenantPolicy::default()
        },
    );
    assert!(gateway.call("bench", "modelread", Vec::new()).is_ok());

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let gw = Arc::clone(&gateway);
        let n = requests / CLIENTS;
        let per_client_rps = offered_rps as f64 / CLIENTS as f64;
        handles.push(std::thread::spawn(move || {
            let gap = Duration::from_secs_f64(1.0 / per_client_rps);
            let start = Instant::now();
            let (ticket_tx, ticket_rx) = std::sync::mpsc::channel::<u64>();
            let waiter = {
                let gw = Arc::clone(&gw);
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for ticket in ticket_rx {
                        match gw.wait(ticket).status {
                            GatewayStatus::Ok => ok += 1,
                            GatewayStatus::Overloaded | GatewayStatus::Expired => shed += 1,
                            GatewayStatus::Failed(_) | GatewayStatus::Error(_) => {}
                        }
                    }
                    (ok, shed)
                })
            };
            for i in 0..n {
                if i % 16 == 0 {
                    let due = start + gap * i as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let _ = ticket_tx.send(gw.submit("bench", "modelread", Vec::new()));
            }
            drop(ticket_tx);
            waiter.join().expect("waiter thread")
        }));
    }
    let mut completed = 0;
    let mut shed = 0;
    for h in handles {
        let (ok, s) = h.join().unwrap();
        completed += ok;
        shed += s;
    }
    let elapsed = t0.elapsed();
    let m = gateway.metrics();
    LoadPoint {
        offered_rps,
        requests,
        completed,
        shed,
        sustained_rps: completed as f64 / elapsed.as_secs_f64(),
        p50_queue_ms: m.queue_delay_p50_ns() as f64 / 1e6,
        p99_queue_ms: m.queue_delay_p99_ns() as f64 / 1e6,
        batch_occupancy: m.batch_occupancy(),
    }
}

/// Tracing-on vs tracing-off throughput on the batched path at the top
/// load: the tentpole's <2% overhead bar. Wire formats carry trace ids in
/// both runs (toggling must not change codecs); `set_enabled` gates only
/// span/histogram recording. Off runs first so the on run inherits any
/// warm-up advantage — a conservative ordering for the overhead claim.
fn tracing_overhead(loads: &[(u64, usize)]) -> (f64, f64, f64) {
    let &(rps, requests) = loads.last().expect("at least one load");
    faasm_telemetry::set_enabled(false);
    let off = drive(Ingress::Batched, rps, requests, 4).sustained_rps;
    faasm_telemetry::set_enabled(true);
    let on = drive(Ingress::Batched, rps, requests, 4).sustained_rps;
    let overhead_pct = (off - on) / off.max(1.0) * 100.0;
    (on, off, overhead_pct)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let loads: &[(u64, usize)] = if test_mode {
        &[(500, 50)]
    } else {
        &[(1_000, 2_000), (4_000, 8_000), (16_000, 16_000)]
    };

    let local = run_mode(Ingress::InProcess, loads);
    let remote = run_mode(Ingress::OverFabric, loads);
    let batched = run_mode(Ingress::Batched, loads);

    // State-affinity series: the same batched front door, but the function
    // is state-bound. Cached instances answer from leased snapshots, so the
    // queueing-delay tail collapses at the same offered load.
    let &(aff_rps, aff_requests) = loads.last().expect("at least one load");
    let aff_uncached = drive_state_bound(aff_rps, aff_requests, 0);
    let aff_cached = drive_state_bound(aff_rps, aff_requests, 16 * 1024 * 1024);
    println!(
        "\nstate-bound batched ingress at {aff_rps} offered r/s ({} KiB model per call):\n  uncached: {:>8.0} req/s sustained, p50 {:.3} ms, p99 {:.3} ms\n  cached:   {:>8.0} req/s sustained, p50 {:.3} ms, p99 {:.3} ms (p99 {:.1}x lower)",
        AFFINITY_MODEL_BYTES / 1024,
        aff_uncached.sustained_rps,
        aff_uncached.p50_queue_ms,
        aff_uncached.p99_queue_ms,
        aff_cached.sustained_rps,
        aff_cached.p50_queue_ms,
        aff_cached.p99_queue_ms,
        aff_uncached.p99_queue_ms / aff_cached.p99_queue_ms.max(1e-6),
    );

    let (tracing_on_rps, tracing_off_rps, overhead_pct) = tracing_overhead(loads);
    println!(
        "
tracing overhead (batched, top load): off {tracing_off_rps:.0} req/s, on {tracing_on_rps:.0} req/s, delta {overhead_pct:+.2}%"
    );

    // The wire + service loop should cost well under a 2x throughput hit
    // at saturation (the remote-ingress acceptance bar).
    let local_peak = local.iter().map(|p| p.sustained_rps).fold(0.0, f64::max);
    let remote_peak = remote.iter().map(|p| p.sustained_rps).fold(0.0, f64::max);
    let batched_peak = batched.iter().map(|p| p.sustained_rps).fold(0.0, f64::max);
    println!(
        "\npeak sustained: in-process {local_peak:.0} req/s, over-fabric {remote_peak:.0} req/s ({:.2}x), batched {batched_peak:.0} req/s",
        local_peak / remote_peak.max(1.0)
    );

    if test_mode {
        println!("test bench gateway_throughput ... ok");
        return;
    }

    // Snapshot for the repo (hand-rolled JSON: the workspace is std-only).
    let mut json = String::from(
        "{\n  \"bench\": \"gateway_throughput\",\n  \"hosts\": 4,\n  \"dispatchers\": 4,\n  \"loads\": [\n",
    );
    json.push_str(&json_points(&local));
    json.push_str("  ],\n  \"loads_over_fabric\": [\n");
    json.push_str(&json_points(&remote));
    json.push_str("  ],\n  \"loads_batched\": [\n");
    json.push_str(&json_points(&batched));
    json.push_str("  ],\n  \"state_affinity_batched\": [\n");
    for (i, (label, p)) in [("uncached", &aff_uncached), ("cached", &aff_cached)]
        .iter()
        .enumerate()
    {
        json.push_str(&format!(
            "    {{\"cache\": \"{label}\", \"model_bytes\": {AFFINITY_MODEL_BYTES}, \"offered_rps\": {}, \"requests\": {}, \"completed\": {}, \"shed\": {}, \"sustained_rps\": {:.0}, \"p50_queue_ms\": {:.3}, \"p99_queue_ms\": {:.3}}}{}\n",
            p.offered_rps,
            p.requests,
            p.completed,
            p.shed,
            p.sustained_rps,
            p.p50_queue_ms,
            p.p99_queue_ms,
            if i == 1 { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"tracing_overhead\": {{\"tracing_off_rps\": {tracing_off_rps:.0}, \"tracing_on_rps\": {tracing_on_rps:.0}, \"overhead_pct\": {overhead_pct:.2}}}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gateway.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nsnapshot written to BENCH_gateway.json"),
        Err(e) => eprintln!("\ncould not write snapshot: {e}"),
    }
}
