//! Ablation: copy-on-write Proto-Faaslet restore vs full-copy restore vs
//! cold instantiation (§5.2's design choice).

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_fvm::prelude::*;
use faasm_mem::MemorySnapshot;

fn bench(c: &mut Criterion) {
    // A module with ~32 pages of initialised memory ("interpreter heap").
    let src = r#"
        void init() {
            ptr int p = (ptr int) 65536;
            for (int i = 0; i < 524288; i = i + 1024) { p[i] = i; }
        }
        int main() { return 0; }
    "#;
    let module = faasm_lang::compile_with(
        src,
        faasm_lang::MemConfig {
            initial_pages: 40,
            max_pages: 64,
        },
    )
    .unwrap();
    let object = ObjectModule::prepare(module).unwrap();
    let linker = Linker::new();
    let mut inst = Instance::new(object.clone(), &linker, Box::new(())).unwrap();
    inst.invoke("init", &[]).unwrap();
    let snap = inst.snapshot();
    let snap_bytes = snap.mem.as_ref().unwrap().to_bytes();

    let mut group = c.benchmark_group("snapshot");
    group.bench_function("cow_restore", |b| {
        b.iter(|| {
            std::hint::black_box(
                Instance::restore(
                    object.clone(),
                    &snap,
                    &linker,
                    Box::new(()),
                    FuelMeter::unlimited(),
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("full_copy_restore", |b| {
        b.iter(|| {
            // The ablation: deserialising copies every page.
            let mem = MemorySnapshot::from_bytes(&snap_bytes).unwrap();
            std::hint::black_box(faasm_mem::LinearMemory::restore(&mem))
        })
    });
    group.bench_function("cold_instantiate_with_init", |b| {
        b.iter(|| {
            let mut i = Instance::new(object.clone(), &linker, Box::new(())).unwrap();
            i.invoke("init", &[]).unwrap();
            std::hint::black_box(i)
        })
    });
    group.bench_function("snapshot_capture", |b| {
        b.iter(|| {
            let mut i = Instance::restore(
                object.clone(),
                &snap,
                &linker,
                Box::new(()),
                FuelMeter::unlimited(),
            )
            .unwrap();
            std::hint::black_box(i.snapshot())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
