//! CPU-isolation overhead: interpreter fuel metering with and without a
//! cgroup controller (§3.1's fairness mechanism must stay off the hot path).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_core::CgroupCpu;
use faasm_fvm::prelude::*;
use faasm_fvm::CpuController;

fn spin_instance(fuel: FuelMeter) -> Instance {
    let module = faasm_lang::compile(
        "int main() { int acc = 0; for (int i = 0; i < 20000; i = i + 1) { acc = acc + i; } return acc; }",
    )
    .unwrap();
    let object = ObjectModule::prepare(module).unwrap();
    Instance::with_fuel(object, &Linker::new(), Box::new(()), fuel).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cgroup_fairness");

    let mut free = spin_instance(FuelMeter::unlimited());
    group.bench_function("uncontrolled", |b| {
        b.iter(|| std::hint::black_box(free.invoke("main", &[]).unwrap()))
    });

    // Single member: the controller grants every slice immediately; this
    // measures pure accounting overhead.
    let group_cpu = CgroupCpu::new(1 << 22);
    let share = Arc::new(group_cpu.join());
    let controller: Arc<dyn CpuController> = share;
    let mut governed = spin_instance(FuelMeter::with_controller(
        controller,
        faasm_fvm::fuel::DEFAULT_SLICE,
    ));
    group.bench_function("cgroup_single_member", |b| {
        b.iter(|| std::hint::black_box(governed.invoke("main", &[]).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
