//! Global-tier operation costs, local transport vs over the fabric
//! (every byte of the remote path is counted by the traffic accounting).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_kvs::{KvClient, KvServer, KvStore};
use faasm_net::Fabric;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_ops");

    let local = KvClient::local(Arc::new(KvStore::new()));
    local.set("k", vec![1u8; 1024]).unwrap();
    group.bench_function("local_get_1k", |b| {
        b.iter(|| std::hint::black_box(local.get("k").unwrap()))
    });
    group.bench_function("local_set_range_64", |b| {
        b.iter(|| local.set_range("k", 512, vec![9u8; 64]).unwrap())
    });
    group.bench_function("local_incr", |b| {
        b.iter(|| std::hint::black_box(local.incr("n", 1).unwrap()))
    });

    let fabric = Fabric::new();
    let server = KvServer::start(fabric.add_host(), 2);
    let remote = KvClient::connect(fabric.add_host(), server.host_id());
    remote.set("k", vec![1u8; 1024]).unwrap();
    group.bench_function("remote_get_1k", |b| {
        b.iter(|| std::hint::black_box(remote.get("k").unwrap()))
    });
    group.bench_function("remote_incr", |b| {
        b.iter(|| std::hint::black_box(remote.incr("n", 1).unwrap()))
    });
    group.bench_function("remote_lock_unlock", |b| {
        b.iter(|| {
            remote.lock("lk", faasm_kvs::LockMode::Write).unwrap();
            remote.unlock("lk", faasm_kvs::LockMode::Write).unwrap();
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
