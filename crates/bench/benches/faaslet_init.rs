//! Faaslet lifecycle costs: cold start vs Proto-Faaslet restore vs the
//! container baseline (Tab. 3's initialisation row as a micro-benchmark).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasm_core::faaslet::{Faaslet, FaasletEnv};
use faasm_core::{faaslet_linker, CgroupCpu, FunctionDef, GuestCode, NoChain};

fn env() -> FaasletEnv {
    let fabric = faasm_net::Fabric::new();
    let nic = fabric.add_host();
    let kv = Arc::new(faasm_kvs::KvClient::local(Arc::new(
        faasm_kvs::KvStore::new(),
    )));
    FaasletEnv {
        state: Arc::new(faasm_state::StateManager::new(kv)),
        hostfs: faasm_vfs::HostFs::new(Arc::new(faasm_vfs::ObjectStore::new())),
        nic,
        router: Arc::new(NoChain),
        cgroup: CgroupCpu::new(1 << 22),
        linker: Arc::new(faaslet_linker()),
        egress: None,
    }
}

fn noop_def() -> Arc<FunctionDef> {
    let module = faasm_lang::compile("int main() { return 0; }").unwrap();
    Arc::new(FunctionDef {
        code: GuestCode::Fvm(faasm_fvm::ObjectModule::prepare(module).unwrap()),
        entry: "main".into(),
        init: None,
        reset_after_call: true,
    })
}

fn bench(c: &mut Criterion) {
    let env = env();
    let def = noop_def();
    let mut donor = Faaslet::create_cold(1, "u", "f", Arc::clone(&def), &env).unwrap();
    let proto = donor.capture_proto().unwrap();

    let mut group = c.benchmark_group("faaslet_init");
    let mut id = 1000u64;
    group.bench_function("cold_start", |b| {
        b.iter(|| {
            id += 1;
            std::hint::black_box(
                Faaslet::create_cold(id, "u", "f", Arc::clone(&def), &env).unwrap(),
            )
        })
    });
    group.bench_function("proto_restore", |b| {
        b.iter(|| {
            id += 1;
            std::hint::black_box(Faaslet::restore(id, &proto, Arc::clone(&def), &env).unwrap())
        })
    });
    // Container baseline for scale (256 KiB scaled image).
    let image = vec![7u8; 256 * 1024];
    let cfg = faasm_baseline::ImageConfig {
        image_bytes: image.len(),
        layers: 5,
        boot_passes: 4,
    };
    struct NoHttp;
    impl faasm_baseline::HttpRouter for NoHttp {
        fn chain_call(&self, _: &str, _: &str, _: Vec<u8>) -> faasm_core::CallId {
            faasm_core::CallId(0)
        }
        fn await_call(&self, id: faasm_core::CallId) -> faasm_core::CallResult {
            faasm_core::CallResult::error(id, "none")
        }
    }
    let kv = Arc::new(faasm_kvs::KvClient::local(Arc::new(
        faasm_kvs::KvStore::new(),
    )));
    group.bench_function("container_cold_start_256k_image", |b| {
        b.iter(|| {
            id += 1;
            let router: Arc<dyn faasm_baseline::HttpRouter> = Arc::new(NoHttp);
            std::hint::black_box(faasm_baseline::Container::cold_start(
                id,
                "u",
                "f",
                &image,
                &cfg,
                Arc::clone(&kv),
                router,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
