//! Interpreter-vs-lowered measurement harness shared by the `vm_dispatch`
//! bench and the `figures vm` table.
//!
//! Fuel is the tier-independent source-instruction count, so it is the
//! numerator for instrs/s on both tiers; retired ops are engine dispatches,
//! which superinstruction fusion and structural elision shrink on the
//! lowered tier. `fuel / dispatches` is therefore the mean fused width.

use std::time::Instant;

use faasm_fvm::prelude::*;

/// One FL workload in the dispatch-throughput series.
pub struct TierWorkload {
    /// Short identifier used in tables and JSON.
    pub name: &'static str,
    /// FL source; `main` takes no arguments.
    pub fl: &'static str,
}

/// The three dispatch-bound loops the series measures: pure arithmetic,
/// load/store traffic, and call-heavy control flow.
pub fn workloads() -> [TierWorkload; 3] {
    [
        TierWorkload {
            name: "arith_loop",
            // ~6 instructions per iteration, 10k iterations.
            fl: "int main() { int acc = 0; for (int i = 0; i < 10000; i = i + 1) { acc = acc + i; } return acc; }",
        },
        TierWorkload {
            name: "memory_loop",
            fl: r#"
                int main() {
                    ptr int p = (ptr int) 1024;
                    int acc = 0;
                    for (int i = 0; i < 5000; i = i + 1) {
                        p[i % 1000] = i;
                        acc = acc + p[(i * 7) % 1000];
                    }
                    return acc;
                }
            "#,
        },
        TierWorkload {
            name: "call_loop",
            fl: r#"
                int leaf(int x) { return x + 1; }
                int main() {
                    int acc = 0;
                    for (int i = 0; i < 2000; i = i + 1) { acc = leaf(acc); }
                    return acc;
                }
            "#,
        },
    ]
}

/// Measured throughput of one workload on both tiers.
pub struct TierPoint {
    /// Workload identifier.
    pub workload: &'static str,
    /// Source instructions per invoke (fuel; identical on both tiers).
    pub fuel_per_invoke: u64,
    /// Engine dispatches per invoke on the interpreter.
    pub interp_dispatches: u64,
    /// Engine dispatches per invoke on the lowered tier.
    pub lowered_dispatches: u64,
    /// Interpreter throughput in source instructions per second.
    pub interp_ips: f64,
    /// Lowered-tier throughput in source instructions per second.
    pub lowered_ips: f64,
}

impl TierPoint {
    /// Lowered throughput over interpreter throughput.
    pub fn speedup(&self) -> f64 {
        self.lowered_ips / self.interp_ips
    }

    /// Interpreter dispatches per lowered dispatch (mean fusion gain).
    pub fn dispatch_ratio(&self) -> f64 {
        self.interp_dispatches as f64 / self.lowered_dispatches as f64
    }
}

struct TierRun {
    secs_per_invoke: f64,
    fuel: u64,
    dispatches: u64,
}

fn run_tier(module: &Module, tier: ExecTier, rounds: usize, invokes: usize) -> TierRun {
    let object = ObjectModule::prepare_tier(module.clone(), tier).unwrap();
    assert_eq!(object.is_lowered(), tier == ExecTier::Lowered);
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();

    // Per-invoke accounting first, so the timed loop stays bare.
    inst.fuel.reset_consumed();
    inst.reset_instrs();
    inst.invoke("main", &[]).unwrap();
    let fuel = inst.fuel.consumed();
    let dispatches = inst.instrs_retired();

    for _ in 0..2 {
        std::hint::black_box(inst.invoke("main", &[]).unwrap());
    }
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..invokes {
            std::hint::black_box(inst.invoke("main", &[]).unwrap());
        }
        samples.push(start.elapsed().as_secs_f64() / invokes as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    TierRun {
        secs_per_invoke: samples[samples.len() / 2],
        fuel,
        dispatches,
    }
}

/// Time one workload on both tiers (median of `rounds` rounds of
/// `invokes` back-to-back invocations each).
pub fn measure(w: &TierWorkload, rounds: usize, invokes: usize) -> TierPoint {
    let module = faasm_lang::compile(w.fl).unwrap();
    let interp = run_tier(&module, ExecTier::Interpreter, rounds, invokes);
    let lowered = run_tier(&module, ExecTier::Lowered, rounds, invokes);
    assert_eq!(
        interp.fuel, lowered.fuel,
        "fuel is tier-independent by contract"
    );
    TierPoint {
        workload: w.name,
        fuel_per_invoke: interp.fuel,
        interp_dispatches: interp.dispatches,
        lowered_dispatches: lowered.dispatches,
        interp_ips: interp.fuel as f64 / interp.secs_per_invoke,
        lowered_ips: lowered.fuel as f64 / lowered.secs_per_invoke,
    }
}
