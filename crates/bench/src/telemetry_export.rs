//! Telemetry exporters: span-tree and metrics rendering for `figures
//! trace` / `figures metrics`, plus machine-readable JSON dumps.
//!
//! The renderers read the process-global recorder registry
//! (`faasm_telemetry::tiers()`), so they work for any in-process cluster —
//! the bench harness, the integration tests and the example binaries all
//! share them. JSON is hand-rolled (the workspace is offline; no serde):
//! the fields are all integers and tier/kind names, so escaping reduces to
//! quoting known-safe identifiers.

use faasm_telemetry::{HistSnapshot, SpanKind, SpanRecord};

use crate::Table;

/// One call's spans merged across tiers, as a parent→children tree.
struct TreeNode {
    tier: &'static str,
    span: SpanRecord,
    children: Vec<TreeNode>,
}

fn build_tree(trace_id: u64) -> Vec<TreeNode> {
    let spans = faasm_telemetry::trace_tree(trace_id);
    let ids: std::collections::HashSet<u64> = spans.iter().map(|(_, s)| s.span_id).collect();
    // Children sorted by start time (trace_tree already orders the flat
    // list); detach each span under its parent when the parent's span was
    // recorded, else treat it as a root (the ingress root context itself
    // has no span record — its children are the top level).
    let mut by_parent: std::collections::HashMap<u64, Vec<(&'static str, SpanRecord)>> =
        std::collections::HashMap::new();
    let mut roots = Vec::new();
    for (tier, span) in spans {
        if span.parent_id != 0 && ids.contains(&span.parent_id) {
            by_parent
                .entry(span.parent_id)
                .or_default()
                .push((tier, span));
        } else {
            roots.push((tier, span));
        }
    }
    fn attach(
        tier: &'static str,
        span: SpanRecord,
        by_parent: &mut std::collections::HashMap<u64, Vec<(&'static str, SpanRecord)>>,
    ) -> TreeNode {
        let children = by_parent
            .remove(&span.span_id)
            .unwrap_or_default()
            .into_iter()
            .map(|(t, s)| attach(t, s, by_parent))
            .collect();
        TreeNode {
            tier,
            span,
            children,
        }
    }
    roots
        .into_iter()
        .map(|(t, s)| attach(t, s, &mut by_parent))
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_node(node: &TreeNode, origin_ns: u64, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&format!(
        "{indent}{:<18} {:<12} +{:<10} dur {:<10} span {:016x}{}\n",
        node.span.kind.as_str(),
        format!("[{}]", node.tier),
        fmt_ns(node.span.start_ns.saturating_sub(origin_ns)),
        fmt_ns(node.span.duration_ns()),
        node.span.span_id,
        if node.span.extra != 0 {
            format!("  extra {}", node.span.extra)
        } else {
            String::new()
        },
    ));
    for child in &node.children {
        render_node(child, origin_ns, depth + 1, out);
    }
}

/// Render one trace's span tree: each line shows the span kind, owning
/// tier, start offset from the trace's first span, duration and span id.
/// Empty string when the trace id is unknown (rotated out of every ring).
pub fn render_trace_tree(trace_id: u64) -> String {
    let roots = build_tree(trace_id);
    if roots.is_empty() {
        return String::new();
    }
    let origin_ns = roots.iter().map(|n| n.span.start_ns).min().unwrap_or(0);
    let mut out = format!("trace {trace_id:016x}\n");
    for root in &roots {
        render_node(root, origin_ns, 1, &mut out);
    }
    out
}

/// One trace's spans as a JSON array (empty array when unknown).
pub fn trace_tree_json(trace_id: u64) -> String {
    let spans = faasm_telemetry::trace_tree(trace_id);
    let mut out = String::from("[");
    for (i, (tier, s)) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tier\":\"{tier}\",\"kind\":\"{}\",\"trace_id\":{},\"span_id\":{},\
             \"parent_id\":{},\"start_ns\":{},\"end_ns\":{},\"extra\":{}}}",
            s.kind.as_str(),
            s.trace_id,
            s.span_id,
            s.parent_id,
            s.start_ns,
            s.end_ns,
            s.extra
        ));
    }
    out.push(']');
    out
}

/// Print the cluster-wide per-tier span histograms as a table: count, mean
/// and percentiles per (tier, span kind) with at least one sample.
pub fn print_metrics_table() {
    let snap = faasm_telemetry::metrics_snapshot();
    let mut t = Table::new(&["tier", "span", "count", "mean", "p50", "p99", "max"]);
    for (tier, hists) in &snap {
        for (kind, h) in hists {
            t.row(&[
                tier.to_string(),
                kind.as_str().to_string(),
                h.count.to_string(),
                fmt_ns(h.mean()),
                fmt_ns(h.percentile(50.0)),
                fmt_ns(h.percentile(99.0)),
                fmt_ns(h.max),
            ]);
        }
    }
    t.print();
}

fn hist_json(kind: SpanKind, h: &HistSnapshot) -> String {
    format!(
        "{{\"span\":\"{}\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\
         \"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
        kind.as_str(),
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.percentile(50.0),
        h.percentile(99.0)
    )
}

/// The cluster-wide telemetry snapshot as JSON: per-tier histograms plus
/// each tier's anomaly dumps (reason + captured span count).
pub fn metrics_json() -> String {
    let snap = faasm_telemetry::metrics_snapshot();
    let mut out = String::from("{\"tiers\":[");
    for (i, (tier, hists)) in snap.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"tier\":\"{tier}\",\"spans\":["));
        for (j, (kind, h)) in hists.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&hist_json(*kind, h));
        }
        out.push_str("]}");
    }
    out.push_str("],\"anomalies\":[");
    let mut first = true;
    for rec in faasm_telemetry::tiers() {
        for a in rec.anomalies() {
            if !first {
                out.push(',');
            }
            first = false;
            // Reasons are generated in-tree from fixed format strings;
            // escape quotes/backslashes anyway so the dump stays valid
            // JSON if one ever embeds a key name.
            let reason = a.reason.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(
                "{{\"tier\":\"{}\",\"at_ns\":{},\"reason\":\"{reason}\",\"spans\":{}}}",
                rec.tier(),
                a.at_ns,
                a.spans.len()
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Kinds present in one trace, for causal-coverage assertions.
pub fn trace_kinds(trace_id: u64) -> Vec<SpanKind> {
    faasm_telemetry::trace_tree(trace_id)
        .into_iter()
        .map(|(_, s)| s.kind)
        .collect()
}
