//! Shared harness for the figure/table reproduction binary and the
//! criterion micro-benchmarks.
//!
//! Every experiment of the paper's §6 maps to one function in
//! `src/bin/figures.rs`; this library holds the plumbing: scaled platform
//! constructors, timing helpers and the plain-text table printer whose
//! output EXPERIMENTS.md records.

pub mod telemetry_export;
pub mod vm_tiers;

use std::time::{Duration, Instant};

use faasm_baseline::{BaselineConfig, BaselinePlatform, ImageConfig};
use faasm_core::{Cluster, ClusterConfig, InstanceConfig};

/// Build a FAASM cluster sized for experiments.
pub fn faasm_cluster(hosts: usize, workers: usize) -> Cluster {
    Cluster::with_config(ClusterConfig {
        hosts,
        instance: InstanceConfig {
            workers,
            ..InstanceConfig::default()
        },
        invoke_timeout: Duration::from_secs(300),
        ..ClusterConfig::default()
    })
}

/// Build the container baseline sized for experiments.
///
/// `image_bytes` models the function image (the paper observed ~8 MB of
/// container overhead; experiments scale it down together with the
/// workloads). `host_memory_limit` bounds containers per host — the OOM
/// behaviour behind Fig. 6a's truncated Knative line.
pub fn baseline_platform(
    hosts: usize,
    workers: usize,
    image_bytes: usize,
    host_memory_limit: usize,
) -> BaselinePlatform {
    BaselinePlatform::with_config(BaselineConfig {
        hosts,
        workers,
        image: ImageConfig {
            image_bytes,
            layers: 5,
            boot_passes: 4,
        },
        host_memory_limit,
        invoke_timeout: Duration::from_secs(300),
        ..BaselineConfig::default()
    })
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Median of a duration sample set (empty → zero).
pub fn median(mut samples: Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Nearest-rank percentile of durations (0.0–1.0; empty → zero).
pub fn percentile(mut samples: Vec<Duration>, p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0)) * (samples.len() - 1) as f64).round() as usize;
    samples[rank]
}

/// A fixed-width plain-text table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "table shape");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            print_row(row);
        }
    }
}

/// Format a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else if d.as_micros() >= 10 {
        format!("{:.0}us", d.as_secs_f64() * 1e6)
    } else {
        format!("{}ns", d.as_nanos())
    }
}

/// Format bytes as MB with two decimals.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}MB", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let ds: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(median(ds.clone()), Duration::from_millis(51));
        assert_eq!(percentile(ds.clone(), 0.0), Duration::from_millis(1));
        assert_eq!(percentile(ds, 1.0), Duration::from_millis(100));
        assert_eq!(median(vec![]), Duration::ZERO);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_dur(Duration::from_secs(12)), "12.0s");
        assert_eq!(fmt_dur(Duration::from_millis(42)), "42ms");
        assert_eq!(fmt_dur(Duration::from_micros(55)), "55us");
        assert_eq!(fmt_dur(Duration::from_nanos(7)), "7ns");
        assert_eq!(fmt_mb(2_500_000), "2.50MB");
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn platform_constructors() {
        let c = faasm_cluster(1, 2);
        assert_eq!(c.instances().len(), 1);
        let b = baseline_platform(1, 2, 64 * 1024, 1 << 30);
        assert_eq!(b.hosts().len(), 1);
    }
}
