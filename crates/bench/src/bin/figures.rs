//! Regenerate every table and figure of the paper's evaluation (§6).
//!
//! Usage: `cargo run -p faasm-bench --release --bin figures [EXPERIMENT]`
//! where EXPERIMENT is one of `fig6`, `fig6-small`, `fig7`, `fig8`, `fig9a`,
//! `fig9b`, `table3`, `fig10`, `shards`, `replicas`, `trace`, `metrics`,
//! `cache`, `coldstart`, or `all` (default; excludes the telemetry,
//! fault-injection, cache and coldstart commands).
//!
//! `replicas` boots a replication-factor-2 tier, prints the per-slot
//! replica roles (primary/backup key counts), replication lag and the
//! quorum-wait tail, then kills a primary and shows the liveness monitor's
//! failover: the promoted table, the post-failover roles and the flight
//! recorder's anomaly snapshot.
//!
//! `cache` storms the function-side state cache with a zipfian read-heavy
//! mix at each consistency tier (plus an uncached baseline and a
//! live-reshard run), printing per-tier hit rates, throughput and the
//! hot-key → owning-shard view the affinity board steers by; pass `json`
//! for a machine-readable dump.
//!
//! `coldstart` measures the snapshot-distribution resolve paths: first-call
//! latency local-restore vs chunk-fetch vs cold-start, the cross-version
//! chunk dedup ratio, and the host-local snapshot-cache hit rate; pass
//! `json` for a machine-readable dump. `BENCH_coldstart.json` holds the
//! longer scale-up-storm numbers.
//!
//! `trace` runs a built-in scenario — a gateway storm over a
//! state-touching function with a live reshard mid-storm — then renders
//! one call's cross-tier span tree; pass `json` for the machine-readable
//! dump. `metrics` runs the same scenario and prints the cluster-wide
//! per-tier histogram table plus gateway counters (`json` likewise).
//!
//! Workloads are scaled to laptop size (factors printed with each figure);
//! EXPERIMENTS.md records these outputs next to the paper's numbers. Shapes
//! — who wins, the crossovers, the saturation knees — are the reproduction
//! target, not absolute values (see DESIGN.md).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_bench::{
    baseline_platform, faasm_cluster, fmt_dur, fmt_mb, median, percentile, time, Table,
};
use faasm_core::faaslet::{Faaslet, FaasletEnv};
use faasm_core::{faaslet_linker, CgroupCpu, FunctionDef, GuestCode, NoChain};
use faasm_workloads::data::{rcv1_like, synth_images};
use faasm_workloads::minidyn::programs as dynprogs;
use faasm_workloads::polybench;
use faasm_workloads::{inference, matmul, sgd};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "fig6" {
        fig6();
    }
    if all || which == "fig6-small" {
        fig6_small();
    }
    if all || which == "fig7" {
        fig7();
    }
    if all || which == "fig8" {
        fig8();
    }
    if all || which == "fig9a" {
        fig9a();
    }
    if all || which == "fig9b" {
        fig9b();
    }
    if all || which == "table3" {
        table3();
    }
    if all || which == "fig10" {
        fig10();
    }
    if all || which == "shards" {
        shard_skew();
    }
    if which == "replicas" {
        replicas_cmd();
    }
    if which == "trace" {
        trace_cmd(std::env::args().nth(2).as_deref() == Some("json"));
    }
    if which == "metrics" {
        metrics_cmd(std::env::args().nth(2).as_deref() == Some("json"));
    }
    if which == "cache" {
        cache_cmd(std::env::args().nth(2).as_deref() == Some("json"));
    }
    if which == "vm" {
        vm_cmd();
    }
    if which == "coldstart" {
        coldstart_cmd(std::env::args().nth(2).as_deref() == Some("json"));
    }
}

// ── Cold start: snapshot-distribution resolve paths ─────────────────────

/// First-call latency down each proto resolve path (pre-staged local
/// restore, chunk fetch from the tier, full cold start), plus the
/// cross-version dedup ratio and the snapshot-cache hit rate. Quick
/// in-process runs of the `coldstart` bench's experiments;
/// `BENCH_coldstart.json` holds the longer scale-up-storm numbers.
fn coldstart_cmd(json: bool) {
    use faasm_core::{ChainRouter, UploadOptions};

    let storm_src = |seed: u32| -> String {
        format!(
            r#"
            extern int input_size();
            extern int read_call_input(ptr int buf, int len);
            extern void write_call_output(ptr int buf, int len);
            int init() {{
                ptr int a = (ptr int) 1024;
                for (int i = 0; i < 8000; i = i + 1) {{ a[i] = {seed} + i; }}
                ptr int b = (ptr int) 65536;
                for (int i = 0; i < 8000; i = i + 1) {{ b[i] = i * 3; }}
                ptr int c = (ptr int) 131072;
                for (int i = 0; i < 8000; i = i + 1) {{ c[i] = i * 5; }}
                return 0;
            }}
            int main() {{
                int n = input_size();
                read_call_input((ptr int) 512, n);
                write_call_output((ptr int) 512, n);
                return 0;
            }}
            "#
        )
    };
    let opts = || UploadOptions {
        init: Some("init".into()),
        ..UploadOptions::default()
    };

    // First-call latencies, median over fresh clusters per path.
    const SAMPLES: usize = 5;
    let (mut cold, mut fetch, mut prestaged) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..SAMPLES {
        let cluster = faasm_cluster(3, 2);
        cluster
            .upload_fl("fig", "work", &storm_src(1_000_000), opts())
            .unwrap();
        let hosts = cluster.instances();
        let t0 = Instant::now();
        hosts[0].invoke_local("fig", "work", vec![1]);
        cold.push(t0.elapsed());
        let t0 = Instant::now();
        let id = hosts[1].submit_placed("fig", "work", vec![2]);
        hosts[1].await_call(id);
        fetch.push(t0.elapsed());
        hosts[0].push_prestage("fig", "work", hosts[2].host_id());
        for _ in 0..2_000 {
            if hosts[2].has_proto("fig", "work") {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let t0 = Instant::now();
        let id = hosts[2].submit_placed("fig", "work", vec![3]);
        hosts[2].await_call(id);
        prestaged.push(t0.elapsed());
    }
    let (cold, fetch, prestaged) = (median(cold), median(fetch), median(prestaged));

    // Dedup across two proto versions differing in one dirtied page, and
    // the cache hit rate on a host that fetches both: v2's shared chunks
    // come out of the snapshot cache, not the tier.
    let cluster = faasm_cluster(2, 2);
    for (f, seed) in [("work_v1", 1_000_000), ("work_v2", 2_000_000)] {
        cluster
            .upload_fl("fig", f, &storm_src(seed), opts())
            .unwrap();
    }
    let a = &cluster.instances()[0];
    let b = &cluster.instances()[1];
    a.invoke_local("fig", "work_v1", vec![1]);
    let pub_before = a.snapshot_stats();
    a.invoke_local("fig", "work_v2", vec![1]);
    let pub_after = a.snapshot_stats();
    let published = pub_after.chunks_published - pub_before.chunks_published;
    let deduped = pub_after.chunks_deduped - pub_before.chunks_deduped;
    let dedup_ratio = deduped as f64 / (published + deduped).max(1) as f64;
    for f in ["work_v1", "work_v2"] {
        let id = b.submit_placed("fig", f, vec![1]);
        b.await_call(id);
    }
    let s = b.snapshot_stats();
    let hit_rate = s.chunk_hits as f64 / (s.chunk_hits + s.chunks_fetched).max(1) as f64;

    if json {
        println!(
            "{{\"figure\": \"coldstart\", \"first_call_ns\": {{\"cold\": {}, \"fetch_restore\": {}, \"prestaged_restore\": {}}}, \"dedup_ratio\": {:.4}, \"cache_hit_rate\": {:.4}}}",
            cold.as_nanos(),
            fetch.as_nanos(),
            prestaged.as_nanos(),
            dedup_ratio,
            hit_rate,
        );
        return;
    }
    println!("\n=== Cold start: snapshot-distribution resolve paths ===");
    let mut table = Table::new(&["resolve path", "first-call latency", "vs cold"]);
    for (path, t) in [
        ("pre-staged restore", prestaged),
        ("chunk-fetch restore", fetch),
        ("cold start", cold),
    ] {
        table.row(&[
            path.to_string(),
            fmt_dur(t),
            format!("{:.1}x", cold.as_secs_f64() / t.as_secs_f64().max(1e-9)),
        ]);
    }
    table.print();
    println!(
        "cross-version dedup: {deduped}/{} chunks shared ({:.0}%); fetch-side snapshot-cache hit rate {:.0}% ({} hits / {} tier fetches)",
        published + deduped,
        dedup_ratio * 100.0,
        hit_rate * 100.0,
        s.chunk_hits,
        s.chunks_fetched,
    );
}

// ── VM: execution-tier dispatch throughput ──────────────────────────────

/// Interpreter-vs-lowered instrs/s on the `vm_dispatch` loops. A quick
/// in-process run of the same harness as the bench; `BENCH_vm.json` holds
/// the longer-sampled numbers.
fn vm_cmd() {
    use faasm_bench::vm_tiers::{measure, workloads};

    println!("\n=== FVM execution tiers: source instrs/s by workload ===");
    let mut table = Table::new(&[
        "workload",
        "instrs/invoke",
        "interp Mi/s",
        "lowered Mi/s",
        "speedup",
        "fused width",
    ]);
    for w in workloads() {
        let p = measure(&w, 5, 5);
        table.row(&[
            p.workload.to_string(),
            p.fuel_per_invoke.to_string(),
            format!("{:.1}", p.interp_ips / 1e6),
            format!("{:.1}", p.lowered_ips / 1e6),
            format!("{:.2}x", p.speedup()),
            format!(
                "{:.2}",
                p.fuel_per_invoke as f64 / p.lowered_dispatches as f64
            ),
        ]);
    }
    table.print();
}

// ── Cache: consistency tiers under a zipfian storm ──────────────────────

/// One storm's worth of numbers for the `cache` exhibit.
struct CacheRow {
    series: String,
    reads_per_sec: f64,
    hit_rate: f64,
    revalidations: u64,
    invalidations: u64,
}

/// Storm the function-side state cache at every consistency tier over the
/// same zipfian working set, next to an uncached baseline; the last run
/// takes a live reshard mid-storm so the epoch-checked invalidation shows
/// up as revalidations instead of stale serves.
fn cache_cmd(json: bool) {
    use faasm_kvs::{CacheConfig, CachedKv, Consistency, KvBackend, SharedKv};

    const KEYS: usize = 64;
    const VALUE_BYTES: usize = 4096;
    const OPS: usize = 20_000;

    let cluster = Arc::new(faasm_core::Cluster::with_config(
        faasm_core::ClusterConfig {
            hosts: 2,
            state_shards: 2,
            ..faasm_core::ClusterConfig::default()
        },
    ));
    for i in 0..KEYS {
        cluster
            .kv()
            .set(&format!("zipf:{i}"), vec![i as u8; VALUE_BYTES])
            .unwrap();
    }
    // Zipf(~1.1) cumulative weights + deterministic xorshift, as in the
    // cache_locality example.
    let mut cum = Vec::with_capacity(KEYS);
    let mut acc = 0.0;
    for rank in 0..KEYS {
        acc += 1.0 / ((rank + 1) as f64).powf(1.1);
        cum.push(acc);
    }
    let total = *cum.last().expect("non-empty");
    let storm = |reader: &dyn KvBackend, reshard_at: Option<usize>| -> (f64, usize) {
        let mut rng = 0x5eed_cafe_f00d_u64;
        let mut reads = 0usize;
        let t0 = Instant::now();
        for op in 0..OPS {
            if Some(op) == reshard_at {
                cluster.add_state_shard().expect("live reshard");
            }
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let x = (rng >> 11) as f64 / (1u64 << 53) as f64 * total;
            let rank = cum.iter().position(|c| *c >= x).unwrap_or(KEYS - 1);
            let key = format!("zipf:{rank}");
            if rng.is_multiple_of(10) {
                reader.set(&key, rng.to_le_bytes().to_vec()).unwrap();
            } else {
                assert!(reader.get(&key).unwrap().is_some(), "{key} missing");
                reads += 1;
            }
        }
        (t0.elapsed().as_secs_f64(), reads)
    };

    let mut rows = Vec::new();
    let (secs, reads) = storm(cluster.kv().as_ref(), None);
    rows.push(CacheRow {
        series: "uncached".into(),
        reads_per_sec: reads as f64 / secs,
        hit_rate: 0.0,
        revalidations: 0,
        invalidations: 0,
    });
    let mut hot: Vec<(String, u64)> = Vec::new();
    for (label, mode, reshard) in [
        ("eventual", Consistency::Eventual, None),
        ("read_your_writes", Consistency::ReadYourWrites, None),
        ("strong", Consistency::Strong, None),
        (
            "ryw + live reshard",
            Consistency::ReadYourWrites,
            Some(OPS / 2),
        ),
    ] {
        let cache = CachedKv::new(
            Arc::clone(cluster.kv()) as SharedKv,
            CacheConfig {
                default_consistency: mode,
                ..CacheConfig::default()
            },
        );
        let (secs, reads) = storm(&cache, reshard);
        let stats = cache.stats();
        rows.push(CacheRow {
            series: label.into(),
            reads_per_sec: reads as f64 / secs,
            hit_rate: stats.hit_rate(),
            revalidations: stats.revalidations,
            invalidations: stats.invalidations,
        });
        if reshard.is_some() {
            hot = cache.take_hot_keys();
        }
    }

    let shard_count = cluster.state_shard_count();
    if json {
        let rows_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"series\":\"{}\",\"reads_per_sec\":{:.0},\"hit_rate\":{:.4},\"revalidations\":{},\"invalidations\":{}}}",
                    r.series, r.reads_per_sec, r.hit_rate, r.revalidations, r.invalidations
                )
            })
            .collect();
        let hot_json: Vec<String> = hot
            .iter()
            .take(8)
            .map(|(k, n)| {
                format!(
                    "{{\"key\":\"{k}\",\"reads\":{n},\"shard\":{}}}",
                    faasm_kvs::shard_index_for(k, shard_count)
                )
            })
            .collect();
        println!(
            "{{\"keys\":{KEYS},\"value_bytes\":{VALUE_BYTES},\"ops\":{OPS},\"series\":[{}],\"hot_keys\":[{}]}}",
            rows_json.join(","),
            hot_json.join(",")
        );
        return;
    }
    println!("\n=== Function-side state cache: consistency tiers under a zipfian storm ===");
    println!("{KEYS} keys x {VALUE_BYTES} B, {OPS} ops (90% reads), zipf s=1.1");
    let mut t = Table::new(&[
        "series",
        "reads/s",
        "hit rate",
        "revalidations",
        "invalidations",
    ]);
    for r in &rows {
        t.row(&[
            r.series.clone(),
            format!("{:.0}", r.reads_per_sec),
            if r.series == "uncached" {
                "-".into()
            } else {
                format!("{:.1}%", r.hit_rate * 100.0)
            },
            r.revalidations.to_string(),
            r.invalidations.to_string(),
        ]);
    }
    t.print();
    println!("hot keys → owning shard (the affinity board's placement signal):");
    for (k, n) in hot.iter().take(8) {
        println!(
            "  {k} x{n} → shard {}",
            faasm_kvs::shard_index_for(k, shard_count)
        );
    }
    println!("shape: eventual ≥ ryw ≫ strong ≈ uncached; the reshard run trades");
    println!("a revalidation burst at the epoch bump for zero stale serves.");

    // Per-instance view: the same cache wired into every instance
    // (`cache_bytes`), a state-bound function (invalidate + re-pull a
    // shared model each call, like a model server), and the affinity
    // board the placement decision reads — occupancy and placement share.
    let cluster = Arc::new(faasm_core::Cluster::with_config(
        faasm_core::ClusterConfig {
            hosts: 2,
            cache_bytes: 16 << 20,
            ..faasm_core::ClusterConfig::default()
        },
    ));
    const MODEL_BYTES: usize = 256 * 1024;
    cluster
        .kv()
        .set("figures:model", vec![3u8; MODEL_BYTES])
        .unwrap();
    let guest: Arc<dyn faasm_core::NativeGuest> =
        Arc::new(|api: &mut faasm_core::NativeApi<'_>| {
            let entry = api
                .state("figures:model", MODEL_BYTES)
                .map_err(faasm_fvm::Trap::host)?;
            entry.invalidate();
            entry.pull().map_err(faasm_fvm::Trap::host)?;
            let mut buf = [0u8; 64];
            entry.read(0, &mut buf).map_err(faasm_fvm::Trap::host)?;
            api.write_output(&buf[..8]);
            Ok(0)
        });
    cluster.register_native("cachefig", "modelread", guest, false);
    for _ in 0..32 {
        let r = cluster.invoke("cachefig", "modelread", Vec::new());
        assert_eq!(r.return_code(), 0, "{:?}", r.status);
    }
    let hosts: Vec<faasm_net::HostId> = cluster.instances().iter().map(|i| i.host_id()).collect();
    let affinity = cluster.boards().affinities("cachefig", "modelread", &hosts);
    let total_affinity: u64 = affinity.iter().map(|(_, a)| a).sum();
    let mut t = Table::new(&[
        "instance",
        "cached bytes",
        "hits",
        "misses",
        "affinity share",
    ]);
    for inst in cluster.instances().iter() {
        let cache = inst.cache().expect("cache_bytes > 0 wires a cache");
        let s = cache.stats();
        let score = affinity
            .iter()
            .find(|(h, _)| *h == inst.host_id())
            .map_or(0, |(_, a)| *a);
        t.row(&[
            format!("host {}", inst.host_id().0),
            cache.cached_bytes().to_string(),
            s.hits.to_string(),
            s.misses.to_string(),
            if total_affinity == 0 {
                "-".into()
            } else {
                format!("{:.0}%", score as f64 / total_affinity as f64 * 100.0)
            },
        ]);
    }
    println!("\nper-instance caches after 32 model-serving calls (256 KiB model):");
    t.print();
}

// ── Telemetry: one call's span tree, cluster-wide metrics ───────────────

/// The built-in telemetry scenario: a gateway in front of a 2-host cluster
/// with a sharded state tier, a function doing real state I/O per call, a
/// storm of gateway calls with a live reshard in the middle (so some state
/// round-trips park on `WrongEpoch` and retry), and finally one traced
/// call whose span tree is the exhibit. Returns that call's trace id and
/// the gateway (for its metrics snapshot).
fn telemetry_scenario() -> (u64, faasm_gateway::Gateway, Arc<faasm_core::Cluster>) {
    let cluster = Arc::new(faasm_core::Cluster::with_config(
        faasm_core::ClusterConfig {
            hosts: 2,
            state_shards: 2,
            ..faasm_core::ClusterConfig::default()
        },
    ));
    // A state-touching native function: read-modify-write a shared
    // accumulator row, then push — one pull and one push per call.
    let guest: Arc<dyn faasm_core::NativeGuest> =
        Arc::new(|api: &mut faasm_core::NativeApi<'_>| {
            let slot = api.input().first().copied().unwrap_or(0) as usize;
            let entry = api
                .state("telemetry:acc", 4096)
                .map_err(faasm_fvm::Trap::host)?;
            let mut buf = [0u8; 8];
            entry
                .read(slot * 8, &mut buf)
                .map_err(faasm_fvm::Trap::host)?;
            let v = u64::from_le_bytes(buf).wrapping_add(1);
            entry
                .write(slot * 8, &v.to_le_bytes())
                .map_err(faasm_fvm::Trap::host)?;
            entry.push().map_err(faasm_fvm::Trap::host)?;
            api.write_output(&v.to_le_bytes());
            Ok(0)
        });
    cluster.register_native("tel", "bump", guest, false);
    // An FVM guest alongside the native one, so the runtime metrics show
    // guest CPU (fuel + retired ops on the lowered tier).
    cluster
        .upload_fl(
            "tel",
            "spin",
            r"
            int main() {
                int acc = 0;
                int i = 0;
                while (i < 2000) { acc = acc + i * 3; i = i + 1; }
                return 0;
            }
            ",
            faasm_core::UploadOptions::default(),
        )
        .expect("upload spin");
    let gw = faasm_gateway::Gateway::start(
        Arc::clone(&cluster),
        faasm_gateway::GatewayConfig::default(),
    );

    // Storm with a live reshard in the middle: the epoch bump parks
    // in-flight state ops on `WrongEpoch`, producing retry spans.
    let mut tickets = Vec::new();
    for i in 0..128u8 {
        tickets.push(gw.submit("tel", "bump", vec![i % 64]));
        if i % 8 == 0 {
            tickets.push(gw.submit("tel", "spin", vec![]));
        }
        if i == 64 {
            cluster.add_state_shard().expect("live shard join");
        }
    }
    for t in tickets {
        let _ = gw.wait(t);
    }

    // The exhibit: traced calls racing a second live reshard. A call whose
    // state round-trip lands while the tier is frozen parks on `WrongEpoch`
    // and retries — that park shows up as a span in its tree. Prefer such
    // a call; fall back to the last traced call if the race never lands.
    let resharder = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            cluster.add_state_shard().expect("live shard join");
        })
    };
    let trace_id = loop {
        let done = resharder.is_finished();
        let (resp, tid) = gw.call_traced("tel", "bump", vec![7]);
        assert!(
            matches!(resp.status, faasm_gateway::GatewayStatus::Ok),
            "traced call failed: {:?}",
            resp.status
        );
        let kinds = faasm_bench::telemetry_export::trace_kinds(tid);
        if kinds.contains(&faasm_telemetry::SpanKind::WrongEpochRetry) || done {
            break tid;
        }
    };
    resharder.join().expect("resharder thread");
    (trace_id, gw, cluster)
}

fn trace_cmd(json: bool) {
    let (trace_id, _gw, _cluster) = telemetry_scenario();
    if json {
        println!(
            "{}",
            faasm_bench::telemetry_export::trace_tree_json(trace_id)
        );
        return;
    }
    println!(
        "
=== One gateway call, admission to state and back ==="
    );
    print!(
        "{}",
        faasm_bench::telemetry_export::render_trace_tree(trace_id)
    );
}

fn metrics_cmd(json: bool) {
    let (_, gw, cluster) = telemetry_scenario();
    let g = gw.metrics().snapshot();
    // Cluster-wide runtime counters (merged across hosts), including the
    // guest-CPU pair: fuel (source instructions, tier-independent) and
    // retired ops (engine dispatches — fewer on the lowered tier).
    let mut rt = faasm_core::MetricsSnapshot::default();
    for inst in cluster.instances() {
        rt.merge(&inst.metrics().snapshot());
    }
    if json {
        let tele = faasm_bench::telemetry_export::metrics_json();
        println!(
            "{{\"gateway\":{{\"admitted\":{},\"completed\":{},\"shed\":{},\"batches\":{},\
             \"batch_items\":{},\"queue_delay_p50_ns\":{},\"queue_delay_p99_ns\":{}}},\
             \"runtime\":{{\"calls\":{},\"guest_fuel\":{},\"guest_instrs\":{},\
             \"exec_ns\":{}}},\
             \"telemetry\":{tele}}}",
            g.admitted,
            g.completed,
            g.shed_total(),
            g.batches,
            g.batch_items,
            g.queue_delay.percentile(50.0),
            g.queue_delay.percentile(99.0),
            rt.calls,
            rt.fuel,
            rt.guest_instrs,
            rt.exec_ns,
        );
        return;
    }
    println!(
        "
=== Cluster-wide telemetry snapshot ==="
    );
    faasm_bench::telemetry_export::print_metrics_table();
    println!(
        "gateway: {} admitted, {} completed, {} shed; {} batches ({:.1} calls/batch); queue delay p50 {}us p99 {}us",
        g.admitted,
        g.completed,
        g.shed_total(),
        g.batches,
        g.batch_occupancy(),
        g.queue_delay.percentile(50.0) / 1_000,
        g.queue_delay.percentile(99.0) / 1_000,
    );
    let width = if rt.guest_instrs > 0 {
        rt.fuel as f64 / rt.guest_instrs as f64
    } else {
        0.0
    };
    println!(
        "guest CPU: {} calls, {} fuel, {} ops retired ({width:.2} instrs/dispatch on the lowered tier)",
        rt.calls, rt.fuel, rt.guest_instrs,
    );
}

// ── Replicas: roles, lag and failover of the replicated tier ────────────

/// The replicated tier's operator view: per-slot replica roles (how many
/// keys each shard primaries vs backs up), forward counts, replication
/// lag and the quorum-wait tail at R=2 — then a primary is killed, the
/// liveness monitor drives the failover epoch, and the table is printed
/// again alongside the flight recorder's promotion anomaly.
fn replicas_cmd() {
    println!("\n=== Replicated state tier (3 shards, R=2, kill + failover) ===");
    let cluster = Arc::new(faasm_core::Cluster::with_config(
        faasm_core::ClusterConfig {
            hosts: 1,
            state_shards: 3,
            replication_factor: 2,
            ..faasm_core::ClusterConfig::default()
        },
    ));
    const KEYS: u32 = 2000;
    for i in 0..KEYS {
        // Traced writes: shard spans (ReplForward, QuorumWait) only record
        // under a trace context, matching the rest of the telemetry tier.
        let _tracing = faasm_telemetry::set_current(faasm_telemetry::TraceCtx::new_root());
        cluster
            .kv()
            .set(&format!("repl:{i}"), vec![0u8; 64 + (i % 7) as usize * 64])
            .unwrap();
    }

    let shard_rec = faasm_telemetry::tier("state-shard");
    let print_roles = |label: &str| {
        let stats = cluster.state_shard_stats().expect("shard stats");
        let table = cluster.state_routing().load();
        let mut t = Table::new(&[
            "slot",
            "primary keys",
            "backup keys",
            "repl forwards",
            "lag us/fwd",
            "promotions",
        ]);
        // `shard_stats` reports live slots only, in slot order.
        for (&slot, s) in table.live_slots().iter().zip(stats.iter()) {
            let lag = if s.repl_forwards == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", s.repl_lag_ns as f64 / s.repl_forwards as f64 / 1e3)
            };
            t.row(&[
                slot.to_string(),
                s.primary_keys.to_string(),
                s.backup_keys.to_string(),
                s.repl_forwards.to_string(),
                lag,
                s.promotions.to_string(),
            ]);
        }
        println!(
            "{label} (epoch {}, {} live / {} dead slots)",
            table.epoch,
            table.live_count(),
            table.dead.len()
        );
        t.print();
        let qw = shard_rec.hist(faasm_telemetry::SpanKind::QuorumWait);
        println!(
            "quorum wait: {} forwards, p50 {} us, p99 {} us",
            qw.count(),
            qw.percentile(50.0) / 1_000,
            qw.percentile(99.0) / 1_000
        );
    };
    print_roles("before failover");

    // Kill a primary slot abruptly; the liveness monitor detects the dead
    // host and drives the failover epoch on its own.
    let victim = 1usize;
    cluster.kill_state_shard(victim);
    let t0 = Instant::now();
    while !cluster.state_routing().load().dead.contains(&victim) {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "liveness monitor must fail the slot over"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "\nslot {victim} killed; monitor failed it over in {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Every key is still served (promoted backups own the victim's keys).
    for i in 0..KEYS {
        assert!(
            cluster
                .kv()
                .get(&format!("repl:{i}"))
                .expect("tier serves")
                .is_some(),
            "repl:{i} lost in failover"
        );
    }
    println!("all {KEYS} keys still served after promotion");
    print_roles("after failover");

    // The flight recorder snapshotted the promotion.
    let anomalies = shard_rec.anomalies();
    let promo: Vec<_> = anomalies
        .iter()
        .filter(|a| a.reason.contains("failover") || a.reason.contains("promotion"))
        .collect();
    println!("anomaly snapshots ({} failover-related):", promo.len());
    for a in promo.iter().rev().take(4).rev() {
        println!(
            "  [{:.1} ms] {} ({} spans captured)",
            a.at_ns as f64 / 1e6,
            a.reason,
            a.spans.len()
        );
    }
    cluster.shutdown();
}

// ── Shard skew: the global tier's load distribution ─────────────────────

/// Per-shard load of the global tier (key count, value bytes, per-op
/// counters via `Request::Stats`) before and after a live shard join —
/// what the migration planner and the tier autoscaler see.
fn shard_skew() {
    println!("\n=== Global-tier shard skew (live reshard 4 -> 5 shards) ===");
    let cluster = faasm_core::Cluster::with_config(faasm_core::ClusterConfig {
        hosts: 2,
        state_shards: 4,
        ..faasm_core::ClusterConfig::default()
    });
    for i in 0..2000u32 {
        cluster
            .kv()
            .set(&format!("skew:{i}"), vec![0u8; 64 + (i % 7) as usize * 64])
            .unwrap();
    }
    let print_stats = |label: &str| {
        let stats = cluster.state_shard_stats().expect("shard stats");
        let mut t = Table::new(&[
            "shard",
            "keys",
            "value KiB",
            "reads",
            "writes",
            "wrong-epoch",
            "freeze-wait us",
            "batched ops",
            "batch width",
        ]);
        for (i, s) in stats.iter().enumerate() {
            let width = if s.batched_ops == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", s.batched_items as f64 / s.batched_ops as f64)
            };
            t.row(&[
                format!("{i}"),
                s.keys.to_string(),
                format!("{:.1}", s.value_bytes as f64 / 1024.0),
                s.reads.to_string(),
                s.writes.to_string(),
                s.wrong_epoch_redirects.to_string(),
                (s.freeze_wait_ns / 1_000).to_string(),
                s.batched_ops.to_string(),
                width,
            ]);
        }
        println!("{label} (epoch {})", cluster.state_routing().epoch());
        t.print();
    };
    print_stats("before join");
    // The planner's preview: enumerate every shard's keys (`key_sizes`)
    // and compute the exact rendezvous delta a join would migrate —
    // before doing it.
    let sizes: Vec<(String, u64)> = cluster
        .state_shards()
        .iter()
        .flat_map(|s| s.store().key_sizes())
        .collect();
    let shards = cluster.state_shard_count();
    let keys: Vec<&str> = sizes.iter().map(|(k, _)| k.as_str()).collect();
    let delta = faasm_kvs::rendezvous_delta(&keys, shards, shards + 1);
    let moving_bytes: u64 = {
        let by_key: std::collections::HashMap<&str, u64> =
            sizes.iter().map(|(k, b)| (k.as_str(), *b)).collect();
        delta.iter().map(|(k, _)| by_key[k.as_str()]).sum()
    };
    println!(
        "join preview: {} of {} keys would move ({:.1} KiB, {:.1}% of keys)",
        delta.len(),
        sizes.len(),
        moving_bytes as f64 / 1024.0,
        delta.len() as f64 / sizes.len().max(1) as f64 * 100.0
    );
    cluster.add_state_shard().expect("live shard join");
    print_stats("after join");
}

// ── Fig. 6: SGD training ────────────────────────────────────────────────

fn run_sgd_faasm(
    parallelism: u32,
    dataset: &faasm_workloads::data::SparseDataset,
) -> Option<(Duration, u64, f64)> {
    let cluster = faasm_cluster(4, 8);
    sgd::register_faasm(&cluster, "ml");
    sgd::upload_dataset(cluster.kv().as_ref(), dataset).ok()?;
    let tasks = sgd::partition(
        dataset.examples as u32,
        parallelism,
        dataset.features as u32,
        0.5,
        32,
    );
    let before = cluster.fabric().stats().snapshot();
    let t0 = Instant::now();
    for _epoch in 0..2 {
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            if cluster.await_result(id).return_code() != 0 {
                return None;
            }
        }
    }
    let elapsed = t0.elapsed();
    let bytes = cluster
        .fabric()
        .stats()
        .snapshot()
        .delta(&before)
        .total_bytes()
        + cluster.object_store().pulled_bytes();
    Some((elapsed, bytes, cluster.billable_gb_seconds()))
}

fn run_sgd_baseline(
    parallelism: u32,
    dataset: &faasm_workloads::data::SparseDataset,
) -> Option<(Duration, u64, f64)> {
    // 2 MB images; a 12 MB per-host budget OOMs at high parallelism, the
    // Fig. 6a "Knative exhausts memory with over 30 functions" shape.
    let platform = baseline_platform(4, 8, 2 * 1024 * 1024, 12 * 1024 * 1024);
    sgd::register_baseline(&platform, "ml");
    sgd::upload_dataset(platform.kv().as_ref(), dataset).ok()?;
    let tasks = sgd::partition(
        dataset.examples as u32,
        parallelism,
        dataset.features as u32,
        0.5,
        32,
    );
    let before = platform.fabric().stats().snapshot();
    let t0 = Instant::now();
    for _epoch in 0..2 {
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| platform.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            if platform.await_result(id).return_code() != 0 {
                return None; // OOMKilled
            }
        }
    }
    let elapsed = t0.elapsed();
    let bytes = platform
        .fabric()
        .stats()
        .snapshot()
        .delta(&before)
        .total_bytes()
        + platform.object_store().pulled_bytes();
    Some((elapsed, bytes, platform.billable_gb_seconds()))
}

fn fig6() {
    println!("\n=== Fig. 6: SGD training vs parallelism ===");
    println!("scale: 2048 docs x 512 features (paper: 800K x 47K), 2 epochs");
    let dataset = rcv1_like(2048, 512, 12, 42);
    let mut t = Table::new(&[
        "parallel fns",
        "faasm time",
        "knative time",
        "faasm net",
        "knative net",
        "faasm GB-s",
        "knative GB-s",
    ]);
    for p in [2u32, 4, 8, 16, 24, 32] {
        let f = run_sgd_faasm(p, &dataset);
        let b = run_sgd_baseline(p, &dataset);
        let cell = |v: &Option<(Duration, u64, f64)>, which: usize| -> String {
            match v {
                None => "OOM".into(),
                Some((d, bytes, gbs)) => match which {
                    0 => fmt_dur(*d),
                    1 => fmt_mb(*bytes),
                    _ => format!("{gbs:.6}"),
                },
            }
        };
        t.row(&[
            p.to_string(),
            cell(&f, 0),
            cell(&b, 0),
            cell(&f, 1),
            cell(&b, 1),
            cell(&f, 2),
            cell(&b, 2),
        ]);
    }
    t.print();
    println!("paper shape: faasm faster at scale, ~65% less transfer, ~10x less");
    println!("billable memory; knative OOMs above ~30 parallel functions.");
}

fn fig6_small() {
    println!("\n=== §6.2 small-scale run (128 examples) ===");
    let dataset = rcv1_like(128, 64, 8, 42);
    let f = run_sgd_faasm(8, &dataset).expect("faasm run");
    let b = run_sgd_baseline(8, &dataset).expect("baseline run");
    let mut t = Table::new(&["platform", "time", "net transfer", "billable GB-s"]);
    t.row(&[
        "faasm".into(),
        fmt_dur(f.0),
        fmt_mb(f.1),
        format!("{:.6}", f.2),
    ]);
    t.row(&[
        "knative".into(),
        fmt_dur(b.0),
        fmt_mb(b.1),
        format!("{:.6}", b.2),
    ]);
    t.print();
    println!("paper: 460ms vs 630ms, 19MB vs 48MB, 0.01 vs 0.04 GB-s.");
}

// ── Fig. 7: inference serving ───────────────────────────────────────────

fn fig7() {
    println!("\n=== Fig. 7: inference serving (latency vs throughput, cold starts) ===");
    println!("scale: mobilenet-lite (paper: TFLite MobileNet), 28x28 inputs");

    let images = Arc::new(synth_images(64, inference::SIDE, 7));

    // (a) throughput vs median latency, closed loop with rising concurrency.
    let mut ta = Table::new(&[
        "clients",
        "faasm req/s",
        "faasm p50",
        "knative-20%cold req/s",
        "knative p50",
    ]);
    for clients in [1usize, 2, 4, 8] {
        let (f_tput, f_p50, _f_p99) = drive_inference(Platform::Faasm, clients, 0, &images);
        let (b_tput, b_p50, _b_p99) = drive_inference(Platform::Baseline, clients, 5, &images);
        ta.row(&[
            clients.to_string(),
            format!("{f_tput:.0}"),
            fmt_dur(f_p50),
            format!("{b_tput:.0}"),
            fmt_dur(b_p50),
        ]);
    }
    ta.print();

    // (b) latency distribution at fixed concurrency for cold ratios.
    let mut tb = Table::new(&["series", "p50", "p90", "p99"]);
    for (name, platform, every) in [
        ("faasm (all ratios)", Platform::Faasm, 0usize),
        ("knative 0% cold", Platform::Baseline, 0),
        ("knative 2% cold", Platform::Baseline, 50),
        ("knative 20% cold", Platform::Baseline, 5),
    ] {
        let lat = latencies_inference(platform, 4, every, &images);
        tb.row(&[
            name.into(),
            fmt_dur(percentile(lat.clone(), 0.5)),
            fmt_dur(percentile(lat.clone(), 0.9)),
            fmt_dur(percentile(lat, 0.99)),
        ]);
    }
    tb.print();
    println!("paper shape: knative median spikes beyond a throughput knee that");
    println!("drops as the cold-start ratio rises; faasm is flat for all ratios");
    println!("with tail latency cut by ~90%.");
}

#[derive(Clone, Copy)]
enum Platform {
    Faasm,
    Baseline,
}

fn drive_inference(
    platform: Platform,
    clients: usize,
    evict_every: usize,
    images: &Arc<Vec<Vec<u8>>>,
) -> (f64, Duration, Duration) {
    let lat = latencies_inference(platform, clients, evict_every, images);
    let total: Duration = lat.iter().sum();
    let tput = lat.len() as f64 / (total.as_secs_f64() / clients as f64).max(1e-9);
    (tput, percentile(lat.clone(), 0.5), percentile(lat, 0.99))
}

fn latencies_inference(
    platform: Platform,
    clients: usize,
    evict_every: usize,
    images: &Arc<Vec<Vec<u8>>>,
) -> Vec<Duration> {
    let per_client = 40usize;
    let counter = Arc::new(AtomicU64::new(0));
    match platform {
        Platform::Faasm => {
            let cluster = Arc::new(faasm_cluster(2, 4));
            inference::setup_faasm(&cluster, "serve", 9);
            // Warm up.
            cluster.invoke("serve", "infer", images[0].clone());
            let mut handles = Vec::new();
            for c in 0..clients {
                let cluster = Arc::clone(&cluster);
                let images = Arc::clone(images);
                let counter = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let img = images[(c * per_client + i) % images.len()].clone();
                        let _n = counter.fetch_add(1, Ordering::Relaxed);
                        let t0 = Instant::now();
                        let r = cluster.invoke("serve", "infer", img);
                        assert_eq!(r.return_code(), 0);
                        lat.push(t0.elapsed());
                    }
                    lat
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        }
        Platform::Baseline => {
            let platform = Arc::new(baseline_platform(2, 4, 4 * 1024 * 1024, 1024 * 1024 * 1024));
            inference::setup_baseline(&platform, "serve", 9);
            platform.invoke("serve", "infer", images[0].clone());
            let mut handles = Vec::new();
            for c in 0..clients {
                let platform = Arc::clone(&platform);
                let images = Arc::clone(images);
                let counter = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let img = images[(c * per_client + i) % images.len()].clone();
                        let n = counter.fetch_add(1, Ordering::Relaxed) as usize;
                        if evict_every > 0 && n.is_multiple_of(evict_every) {
                            // A fraction of requests land on fresh containers
                            // (the paper's per-user cold starts).
                            platform.evict_all();
                        }
                        let t0 = Instant::now();
                        let r = platform.invoke("serve", "infer", img);
                        assert_eq!(r.return_code(), 0);
                        lat.push(t0.elapsed());
                    }
                    lat
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        }
    }
}

// ── Fig. 8: matmul ──────────────────────────────────────────────────────

fn fig8() {
    println!("\n=== Fig. 8: distributed matrix multiplication ===");
    println!("scale: n in 16..128 (paper: 100..8000), 64 products + 16 merges");
    let mut t = Table::new(&[
        "n",
        "faasm time",
        "knative time",
        "faasm net",
        "knative net",
    ]);
    for n in [16usize, 32, 64, 128] {
        let cluster = faasm_cluster(2, 8);
        matmul::register_faasm(&cluster, "la");
        matmul::upload_matrices(cluster.kv().as_ref(), n, 5).unwrap();
        // Steady-state measurement: one warm-up multiplication first.
        cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
        let before = cluster.fabric().stats().snapshot();
        let (r, f_time) =
            time(|| cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec()));
        assert_eq!(r.return_code(), 0, "faasm matmul n={n}: {:?}", r.status);
        let f_bytes = cluster
            .fabric()
            .stats()
            .snapshot()
            .delta(&before)
            .total_bytes();

        let platform = baseline_platform(2, 8, 2 * 1024 * 1024, 1 << 30);
        matmul::register_baseline(&platform, "la");
        matmul::upload_matrices(platform.kv().as_ref(), n, 5).unwrap();
        platform.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
        let before = platform.fabric().stats().snapshot();
        let (r, b_time) =
            time(|| platform.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec()));
        assert_eq!(r.return_code(), 0, "baseline matmul n={n}: {:?}", r.status);
        let b_bytes = platform
            .fabric()
            .stats()
            .snapshot()
            .delta(&before)
            .total_bytes();

        t.row(&[
            n.to_string(),
            fmt_dur(f_time),
            fmt_dur(b_time),
            fmt_mb(f_bytes),
            fmt_mb(b_bytes),
        ]);
    }
    t.print();
    println!("paper shape: durations near parity; faasm ~13% less traffic.");
}

// ── Fig. 9: language-runtime performance ───────────────────────────────

fn fig9a() {
    println!("\n=== Fig. 9a: Polybench, FVM guest vs native ===");
    println!("note: the FVM interprets (paper used a JIT), so absolute ratios");
    println!("are larger; per-kernel orderings are the comparison target.");
    let mut t = Table::new(&["kernel", "native", "fvm", "ratio"]);
    for kernel in polybench::all_kernels() {
        let n = kernel.default_n;
        let native = median(
            (0..3)
                .map(|_| polybench::run_native(&kernel, n).1)
                .collect(),
        );
        let fvm = median((0..3).map(|_| polybench::run_fvm(&kernel, n).1).collect());
        let ratio = fvm.as_secs_f64() / native.as_secs_f64().max(1e-9);
        t.row(&[
            kernel.name.to_string(),
            fmt_dur(native),
            fmt_dur(fvm),
            format!("{ratio:.1}x"),
        ]);
    }
    t.print();
}

fn fig9b() {
    println!("\n=== Fig. 9b: MiniDyn suite, in-Faaslet vs direct ===");
    println!("note: the paper compares WASM-compiled CPython against native");
    println!("CPython; MiniDyn is native Rust in both modes, so this measures");
    println!("the host-interface + filesystem overhead of hosting the runtime");
    println!("in a Faaslet (see DESIGN.md S3).");
    let cluster = faasm_cluster(1, 2);
    dynprogs::setup_faasm(&cluster, "py");
    let mut t = Table::new(&["benchmark", "direct", "in-faaslet", "ratio"]);
    for b in dynprogs::suite() {
        let direct = median(
            (0..3)
                .map(|_| time(|| dynprogs::run_direct(&b, b.default_n).unwrap()).1)
                .collect(),
        );
        let input = format!("{};{}", b.name, b.default_n);
        // Warm up (loads + caches the program file).
        cluster.invoke("py", "minidyn", input.clone().into_bytes());
        let hosted = median(
            (0..3)
                .map(|_| {
                    let (r, d) =
                        time(|| cluster.invoke("py", "minidyn", input.clone().into_bytes()));
                    assert_eq!(r.return_code(), 0);
                    d
                })
                .collect(),
        );
        let ratio = hosted.as_secs_f64() / direct.as_secs_f64().max(1e-9);
        t.row(&[
            b.name.to_string(),
            fmt_dur(direct),
            fmt_dur(hosted),
            format!("{ratio:.2}x"),
        ]);
    }
    t.print();
}

// ── Table 3 and Fig. 10: cold starts and churn ─────────────────────────

/// Build a standalone Faaslet environment (no cluster) for lifecycle
/// micro-measurements.
fn bare_env() -> FaasletEnv {
    let fabric = faasm_net::Fabric::new();
    let nic = fabric.add_host();
    let kv = Arc::new(faasm_kvs::KvClient::local(Arc::new(
        faasm_kvs::KvStore::new(),
    )));
    FaasletEnv {
        state: Arc::new(faasm_state::StateManager::new(kv)),
        hostfs: faasm_vfs::HostFs::new(Arc::new(faasm_vfs::ObjectStore::new())),
        nic,
        router: Arc::new(NoChain),
        cgroup: CgroupCpu::new(1 << 22),
        linker: Arc::new(faaslet_linker()),
        egress: None,
    }
}

fn noop_def() -> Arc<FunctionDef> {
    let module = faasm_lang::compile("int main() { return 0; }").unwrap();
    let object = faasm_fvm::ObjectModule::prepare(module).unwrap();
    Arc::new(FunctionDef {
        code: GuestCode::Fvm(object),
        entry: "main".into(),
        init: None,
        reset_after_call: true,
    })
}

fn table3() {
    println!("\n=== Table 3: cold-start comparison (no-op function) ===");
    let env = bare_env();
    let def = noop_def();

    // Faaslet cold start.
    let n = 200;
    let cold = median(
        (0..n)
            .map(|i| {
                time(|| Faaslet::create_cold(i, "u", "noop", Arc::clone(&def), &env).unwrap()).1
            })
            .collect(),
    );
    // Proto-Faaslet restore.
    let mut donor = Faaslet::create_cold(9999, "u", "noop", Arc::clone(&def), &env).unwrap();
    let proto = donor.capture_proto().unwrap();
    let restore = median(
        (0..n)
            .map(|i| {
                time(|| Faaslet::restore(10_000 + i, &proto, Arc::clone(&def), &env).unwrap()).1
            })
            .collect(),
    );
    // CPU cycles (fuel) for one no-op call.
    let mut f = Faaslet::restore(50_000, &proto, Arc::clone(&def), &env).unwrap();
    let call = faasm_core::CallSpec {
        id: faasm_core::CallId(1),
        user: "u".into(),
        function: "noop".into(),
        input: vec![],
        trace: faasm_core::TraceCtx::NONE,
    };
    f.run(&call);
    let fuel = f.fuel_consumed();
    let faaslet_rss = f.rss_bytes();
    let faaslet_pss = f.pss_bytes();

    // Container cold start (8 MB image, the paper's container overhead).
    let image: Vec<u8> = (0..8 * 1024 * 1024).map(|i| i as u8).collect();
    let cfg = faasm_baseline::ImageConfig {
        image_bytes: image.len(),
        layers: 5,
        boot_passes: 4,
    };
    let kv = Arc::new(faasm_kvs::KvClient::local(Arc::new(
        faasm_kvs::KvStore::new(),
    )));
    struct NoHttp;
    impl faasm_baseline::HttpRouter for NoHttp {
        fn chain_call(&self, _u: &str, _f: &str, _i: Vec<u8>) -> faasm_core::CallId {
            faasm_core::CallId(0)
        }
        fn await_call(&self, id: faasm_core::CallId) -> faasm_core::CallResult {
            faasm_core::CallResult::error(id, "none")
        }
    }
    let router: Arc<dyn faasm_baseline::HttpRouter> = Arc::new(NoHttp);
    let container_cold = median(
        (0..20)
            .map(|i| {
                time(|| {
                    faasm_baseline::Container::cold_start(
                        i,
                        "u",
                        "noop",
                        &image,
                        &cfg,
                        Arc::clone(&kv),
                        Arc::clone(&router),
                    )
                })
                .1
            })
            .collect(),
    );
    let container = faasm_baseline::Container::cold_start(
        999,
        "u",
        "noop",
        &image,
        &cfg,
        Arc::clone(&kv),
        router,
    );
    let container_rss = container.rss_bytes();
    let container_pss = container.pss_bytes(8) as usize; // image shared 8 ways

    // Capacity: instances fitting in a 4 GB host.
    let budget = 4usize << 30;
    let mut t = Table::new(&[
        "metric",
        "container",
        "faaslet",
        "proto-faaslet",
        "vs container",
    ]);
    t.row(&[
        "initialisation".into(),
        fmt_dur(container_cold),
        fmt_dur(cold),
        fmt_dur(restore),
        format!(
            "{:.0}x",
            container_cold.as_secs_f64() / restore.as_secs_f64().max(1e-9)
        ),
    ]);
    t.row(&[
        "CPU cycles (fuel)".into(),
        "-".into(),
        fuel.to_string(),
        fuel.to_string(),
        "-".into(),
    ]);
    t.row(&[
        "PSS memory".into(),
        fmt_mb(container_pss as u64),
        fmt_mb(faaslet_pss as u64),
        fmt_mb(faaslet_pss as u64),
        format!("{:.0}x", container_pss as f64 / faaslet_pss.max(1.0)),
    ]);
    t.row(&[
        "RSS memory".into(),
        fmt_mb(container_rss as u64),
        fmt_mb(faaslet_rss as u64),
        fmt_mb(faaslet_rss as u64),
        format!("{:.0}x", container_rss as f64 / faaslet_rss as f64),
    ]);
    t.row(&[
        "capacity / 4GB".into(),
        (budget / container_rss).to_string(),
        (budget / faaslet_rss).to_string(),
        format!("{:.0}", budget as f64 / faaslet_pss),
        format!(
            "{:.0}x",
            (budget as f64 / faaslet_pss) / (budget / container_rss) as f64
        ),
    ]);
    t.print();
    println!("paper: init 2.8s/5.2ms/0.5ms; PSS 1.3MB/200KB/90KB; RSS 5MB/200KB;");
    println!("capacity ~8K/~70K/>100K. The container column here reflects the");
    println!("scaled image-materialisation model (DESIGN.md S5).");

    // §6.5's Python-runtime variant: init builds a large interpreter heap.
    let dyn_src = r#"
        extern int mmap(int len);
        void init() {
            int base = mmap(4194304);
            ptr int p = (ptr int) base;
            for (int i = 0; i < 1048576; i = i + 1024) {
                p[i] = i;
            }
        }
        int main() { return 0; }
    "#;
    let module = faasm_lang::compile(dyn_src).unwrap();
    let object = faasm_fvm::ObjectModule::prepare(module).unwrap();
    let dyn_def = Arc::new(FunctionDef {
        code: GuestCode::Fvm(object),
        entry: "main".into(),
        init: Some("init".into()),
        reset_after_call: true,
    });
    let (mut dyn_cold_faaslet, dyn_cold) =
        time(|| Faaslet::create_cold(70_000, "u", "pynoop", Arc::clone(&dyn_def), &env).unwrap());
    let dyn_proto = dyn_cold_faaslet.capture_proto().unwrap();
    let dyn_restore = median(
        (0..50)
            .map(|i| {
                time(|| {
                    Faaslet::restore(80_000 + i, &dyn_proto, Arc::clone(&dyn_def), &env).unwrap()
                })
                .1
            })
            .collect(),
    );
    // A "python:3.7-alpine"-class image is ~6x the no-op image.
    let py_image: Vec<u8> = (0..48 * 1024 * 1024).map(|i| (i / 7) as u8).collect();
    let py_cfg = faasm_baseline::ImageConfig {
        image_bytes: py_image.len(),
        layers: 5,
        boot_passes: 4,
    };
    let router: Arc<dyn faasm_baseline::HttpRouter> = Arc::new(NoHttp);
    let py_container = median(
        (0..5)
            .map(|i| {
                time(|| {
                    faasm_baseline::Container::cold_start(
                        i,
                        "u",
                        "py",
                        &py_image,
                        &py_cfg,
                        Arc::clone(&kv),
                        Arc::clone(&router),
                    )
                })
                .1
            })
            .collect(),
    );
    println!("\n  dynamic-language runtime variant (paper: 3.2s container vs 0.9ms restore):");
    println!(
        "    container (python-class image): {}",
        fmt_dur(py_container)
    );
    println!("    faaslet cold (init runs):       {}", fmt_dur(dyn_cold));
    println!(
        "    proto-faaslet restore:          {}",
        fmt_dur(dyn_restore)
    );
}

fn fig10() {
    println!("\n=== Fig. 10: creation churn (latency vs creation rate) ===");
    let env = bare_env();
    let def = noop_def();
    let mut donor = Faaslet::create_cold(1, "u", "noop", Arc::clone(&def), &env).unwrap();
    let proto = Arc::new(donor.capture_proto().unwrap());

    let image: Vec<u8> = (0..8 * 1024 * 1024).map(|i| i as u8).collect();
    let cfg = faasm_baseline::ImageConfig {
        image_bytes: image.len(),
        layers: 5,
        boot_passes: 4,
    };
    struct NoHttp;
    impl faasm_baseline::HttpRouter for NoHttp {
        fn chain_call(&self, _u: &str, _f: &str, _i: Vec<u8>) -> faasm_core::CallId {
            faasm_core::CallId(0)
        }
        fn await_call(&self, id: faasm_core::CallId) -> faasm_core::CallResult {
            faasm_core::CallResult::error(id, "none")
        }
    }

    let mut t = Table::new(&["series", "threads", "achieved/s", "mean latency"]);
    for threads in [1usize, 2, 4] {
        // Containers.
        let image = Arc::new(image.clone());
        let kv = Arc::new(faasm_kvs::KvClient::local(Arc::new(
            faasm_kvs::KvStore::new(),
        )));
        let (count, lat) = churn(threads, Duration::from_millis(300), {
            let image = Arc::clone(&image);
            let kv = Arc::clone(&kv);
            move |i| {
                let router: Arc<dyn faasm_baseline::HttpRouter> = Arc::new(NoHttp);
                std::hint::black_box(faasm_baseline::Container::cold_start(
                    i,
                    "u",
                    "noop",
                    &image,
                    &cfg,
                    Arc::clone(&kv),
                    router,
                ));
            }
        });
        t.row(&[
            "docker (sim)".into(),
            threads.to_string(),
            format!("{count:.0}"),
            fmt_dur(lat),
        ]);

        // Faaslet cold starts.
        let env2 = bare_env();
        let def2 = Arc::clone(&def);
        let (count, lat) = churn(threads, Duration::from_millis(300), move |i| {
            std::hint::black_box(
                Faaslet::create_cold(i, "u", "noop", Arc::clone(&def2), &env2).unwrap(),
            );
        });
        t.row(&[
            "faaslet".into(),
            threads.to_string(),
            format!("{count:.0}"),
            fmt_dur(lat),
        ]);

        // Proto-Faaslet restores.
        let env3 = bare_env();
        let def3 = Arc::clone(&def);
        let proto3 = Arc::clone(&proto);
        let (count, lat) = churn(threads, Duration::from_millis(300), move |i| {
            std::hint::black_box(Faaslet::restore(i, &proto3, Arc::clone(&def3), &env3).unwrap());
        });
        t.row(&[
            "proto-faaslet".into(),
            threads.to_string(),
            format!("{count:.0}"),
            fmt_dur(lat),
        ]);
    }
    t.print();
    println!("paper shape: throughput ceilings of ~3/s (docker), ~600/s (faaslet)");
    println!("and ~4000/s (proto-faaslet) — three distinct orders of magnitude.");
}

/// Run `make(i)` from `threads` threads for `window`; returns
/// (achieved rate per second, mean latency).
fn churn<F>(threads: usize, window: Duration, make: F) -> (f64, Duration)
where
    F: Fn(u64) + Send + Sync + 'static,
{
    let make = Arc::new(make);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    let t0 = Instant::now();
    for t in 0..threads {
        let make = Arc::clone(&make);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            let mut total = Duration::ZERO;
            let mut i = t as u64 * 1_000_000;
            while !stop.load(Ordering::Relaxed) {
                let s = Instant::now();
                make(i);
                total += s.elapsed();
                n += 1;
                i += 1;
            }
            (n, total)
        }));
    }
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut count = 0u64;
    let mut total = Duration::ZERO;
    for h in handles {
        let (n, t) = h.join().unwrap();
        count += n;
        total += t;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let mean = if count > 0 {
        total / count as u32
    } else {
        Duration::ZERO
    };
    (count as f64 / elapsed, mean)
}
