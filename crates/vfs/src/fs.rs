//! The read-global write-local filesystem and per-Faaslet descriptor tables.
//!
//! Semantics (§3.1): reads resolve against (1) the host's local overlay of
//! written files, (2) the host's cache of global objects, (3) the global
//! object store (counted as a pull). Writes always land in the host-local
//! overlay — the global store is never mutated through the filesystem. Every
//! Faaslet holds its own [`FdTable`] of unforgeable descriptors (the WASI
//! capability model), and all paths are confined to the Faaslet's user root,
//! except the shared read-only `shared/` namespace used for common libraries
//! and datasets.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::FsError;
use crate::store::ObjectStore;

/// Open flags (a subset of POSIX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing (forces the local overlay).
    pub write: bool,
    /// Create the file if missing (requires `write`).
    pub create: bool,
    /// Truncate on open (requires `write`).
    pub truncate: bool,
    /// All writes go to the end (requires `write`).
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> OpenFlags {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_RDWR | O_CREAT`.
    pub fn read_write() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC`.
    pub fn write_truncate() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub fn append() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            append: true,
            ..Default::default()
        }
    }
}

/// `whence` values for [`FdTable::seek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file.
    Set,
    /// Relative to the current offset.
    Cur,
    /// Relative to the end of the file.
    End,
}

/// Metadata returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// File size in bytes.
    pub size: u64,
    /// True if the file lives in a read-only namespace (global object).
    pub read_only: bool,
}

enum Backing {
    /// An immutable view of a global object.
    Global(Arc<Vec<u8>>),
    /// A mutable host-local overlay file.
    Local(Arc<RwLock<Vec<u8>>>),
}

struct OpenFile {
    backing: Backing,
    flags: OpenFlags,
    offset: usize,
}

/// One host's filesystem: a cache of global objects plus the write-local
/// overlay shared by all Faaslets on the host.
pub struct HostFs {
    store: Arc<ObjectStore>,
    cache: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    overlay: RwLock<HashMap<String, Arc<RwLock<Vec<u8>>>>>,
}

impl std::fmt::Debug for HostFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostFs")
            .field("cached", &self.cache.read().len())
            .field("overlay", &self.overlay.read().len())
            .finish()
    }
}

/// The shared read-only namespace prefix.
pub const SHARED_PREFIX: &str = "shared/";

impl HostFs {
    /// A host filesystem over the given global store.
    pub fn new(store: Arc<ObjectStore>) -> Arc<HostFs> {
        Arc::new(HostFs {
            store,
            cache: RwLock::new(HashMap::new()),
            overlay: RwLock::new(HashMap::new()),
        })
    }

    /// The global store this host pulls from.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// Number of distinct global objects cached on this host.
    pub fn cached_objects(&self) -> usize {
        self.cache.read().len()
    }

    /// Bytes held in the host cache (for footprint accounting).
    pub fn cached_bytes(&self) -> usize {
        self.cache.read().values().map(|v| v.len()).sum()
    }

    /// Bytes held in the write-local overlay.
    pub fn overlay_bytes(&self) -> usize {
        self.overlay.read().values().map(|v| v.read().len()).sum()
    }

    /// Drop cached global objects (failure injection / cold host).
    pub fn drop_cache(&self) {
        self.cache.write().clear();
    }

    fn cached_pull(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        if let Some(hit) = self.cache.read().get(key) {
            return Some(Arc::clone(hit));
        }
        let data = self.store.pull(key)?;
        self.cache
            .write()
            .insert(key.to_string(), Arc::clone(&data));
        Some(data)
    }
}

/// Resolve and sandbox a user path.
///
/// Rules: no empty paths, no `..` components, no leading `/` escapes.
/// `shared/...` resolves into the global shared namespace; anything else is
/// confined under `user:<user>/`.
fn resolve(user: &str, path: &str) -> Result<String, FsError> {
    let trimmed = path.trim_start_matches('/');
    if trimmed.is_empty()
        || trimmed
            .split('/')
            .any(|c| c == ".." || c == "." || c.is_empty())
    {
        return Err(FsError::InvalidPath {
            path: path.to_string(),
        });
    }
    if let Some(rest) = trimmed.strip_prefix(SHARED_PREFIX) {
        Ok(format!("{SHARED_PREFIX}{rest}"))
    } else {
        Ok(format!("user:{user}/{trimmed}"))
    }
}

/// A Faaslet's file-descriptor table: its only handle onto the filesystem.
pub struct FdTable {
    host: Arc<HostFs>,
    user: String,
    fds: HashMap<u32, Arc<Mutex<OpenFile>>>,
    next_fd: u32,
}

impl std::fmt::Debug for FdTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FdTable")
            .field("user", &self.user)
            .field("open", &self.fds.len())
            .finish()
    }
}

impl FdTable {
    /// A fresh descriptor table for `user` on `host`.
    pub fn new(host: Arc<HostFs>, user: &str) -> FdTable {
        FdTable {
            host,
            user: user.to_string(),
            fds: HashMap::new(),
            // 0..2 reserved for stdio by convention.
            next_fd: 3,
        }
    }

    /// The owning user.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The host filesystem this table resolves against.
    pub fn host(&self) -> &Arc<HostFs> {
        &self.host
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.fds.len()
    }

    /// Open a file, returning a new descriptor.
    ///
    /// # Errors
    ///
    /// * [`FsError::InvalidPath`] for traversal attempts.
    /// * [`FsError::ReadOnlyNamespace`] for writes into `shared/`.
    /// * [`FsError::NotFound`] if missing without `create`.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> Result<u32, FsError> {
        let key = resolve(&self.user, path)?;
        let is_shared = key.starts_with(SHARED_PREFIX);
        if flags.write && is_shared {
            return Err(FsError::ReadOnlyNamespace {
                path: path.to_string(),
            });
        }

        let backing = if flags.write {
            // Write-local: find or create the overlay entry, seeding it from
            // the global object if one exists.
            let existing = self.host.overlay.read().get(&key).cloned();
            let file = match existing {
                Some(f) => {
                    if flags.truncate {
                        f.write().clear();
                    }
                    f
                }
                None => {
                    let base: Vec<u8> = if flags.truncate {
                        Vec::new()
                    } else {
                        self.host
                            .cached_pull(&key)
                            .map(|d| d.as_ref().clone())
                            .unwrap_or_default()
                    };
                    if base.is_empty() && !flags.create && !self.host.store.exists(&key) {
                        return Err(FsError::NotFound {
                            path: path.to_string(),
                        });
                    }
                    let f = Arc::new(RwLock::new(base));
                    self.host
                        .overlay
                        .write()
                        .insert(key.clone(), Arc::clone(&f));
                    f
                }
            };
            Backing::Local(file)
        } else {
            // Read path: overlay → host cache → global store.
            if let Some(local) = self.host.overlay.read().get(&key) {
                Backing::Local(Arc::clone(local))
            } else if let Some(data) = self.host.cached_pull(&key) {
                Backing::Global(data)
            } else {
                return Err(FsError::NotFound {
                    path: path.to_string(),
                });
            }
        };

        let offset = if flags.append {
            match &backing {
                Backing::Global(d) => d.len(),
                Backing::Local(d) => d.read().len(),
            }
        } else {
            0
        };

        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            Arc::new(Mutex::new(OpenFile {
                backing,
                flags,
                offset,
            })),
        );
        Ok(fd)
    }

    fn file(&self, fd: u32) -> Result<&Arc<Mutex<OpenFile>>, FsError> {
        self.fds.get(&fd).ok_or(FsError::BadFd { fd })
    }

    /// Read up to `len` bytes at the current offset, advancing it.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::NotReadable`].
    pub fn read(&self, fd: u32, len: usize) -> Result<Vec<u8>, FsError> {
        let file = self.file(fd)?;
        let mut f = file.lock();
        if !f.flags.read {
            return Err(FsError::NotReadable);
        }
        let out = match &f.backing {
            Backing::Global(d) => slice_from(d, f.offset, len),
            Backing::Local(d) => slice_from(&d.read(), f.offset, len),
        };
        f.offset += out.len();
        Ok(out)
    }

    /// Write bytes at the current offset (or the end with `append`),
    /// advancing the offset; returns the bytes written.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::NotWritable`].
    pub fn write(&self, fd: u32, data: &[u8]) -> Result<usize, FsError> {
        let file = self.file(fd)?;
        let mut f = file.lock();
        if !f.flags.write {
            return Err(FsError::NotWritable);
        }
        let Backing::Local(d) = &f.backing else {
            return Err(FsError::NotWritable);
        };
        let mut buf = d.write();
        let at = if f.flags.append { buf.len() } else { f.offset };
        if buf.len() < at + data.len() {
            buf.resize(at + data.len(), 0);
        }
        buf[at..at + data.len()].copy_from_slice(data);
        drop(buf);
        f.offset = at + data.len();
        Ok(data.len())
    }

    /// Move the file offset; returns the new offset.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] / [`FsError::BadSeek`] for negative targets.
    pub fn seek(&self, fd: u32, offset: i64, whence: Whence) -> Result<u64, FsError> {
        let file = self.file(fd)?;
        let mut f = file.lock();
        let size = match &f.backing {
            Backing::Global(d) => d.len() as i64,
            Backing::Local(d) => d.read().len() as i64,
        };
        let base = match whence {
            Whence::Set => 0,
            Whence::Cur => f.offset as i64,
            Whence::End => size,
        };
        let target = base + offset;
        if target < 0 {
            return Err(FsError::BadSeek);
        }
        f.offset = target as usize;
        Ok(f.offset as u64)
    }

    /// Duplicate a descriptor; both share one offset (POSIX `dup`).
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`].
    pub fn dup(&mut self, fd: u32) -> Result<u32, FsError> {
        let file = Arc::clone(self.file(fd)?);
        let new_fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(new_fd, file);
        Ok(new_fd)
    }

    /// Close a descriptor.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`].
    pub fn close(&mut self, fd: u32) -> Result<(), FsError> {
        self.fds
            .remove(&fd)
            .map(|_| ())
            .ok_or(FsError::BadFd { fd })
    }

    /// Stat an open descriptor.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`].
    pub fn fstat(&self, fd: u32) -> Result<FileStat, FsError> {
        let file = self.file(fd)?;
        let f = file.lock();
        Ok(match &f.backing {
            Backing::Global(d) => FileStat {
                size: d.len() as u64,
                read_only: true,
            },
            Backing::Local(d) => FileStat {
                size: d.read().len() as u64,
                read_only: false,
            },
        })
    }

    /// Stat by path without opening.
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidPath`] / [`FsError::NotFound`].
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        let key = resolve(&self.user, path)?;
        if let Some(local) = self.host.overlay.read().get(&key) {
            return Ok(FileStat {
                size: local.read().len() as u64,
                read_only: false,
            });
        }
        if let Some(size) = self.host.store.size(&key) {
            return Ok(FileStat {
                size: size as u64,
                read_only: true,
            });
        }
        Err(FsError::NotFound {
            path: path.to_string(),
        })
    }

    /// Close every descriptor (used by reset-after-call, §5.2: restoring a
    /// Proto-Faaslet must drop all capabilities of the previous call).
    pub fn close_all(&mut self) {
        self.fds.clear();
    }
}

fn slice_from(data: &[u8], offset: usize, len: usize) -> Vec<u8> {
    if offset >= data.len() {
        return Vec::new();
    }
    let end = (offset + len).min(data.len());
    data[offset..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<ObjectStore>, Arc<HostFs>) {
        let store = Arc::new(ObjectStore::new());
        store.put("shared/lib.py", b"print('hi')".to_vec());
        store.put("user:alice/data.bin", b"alice data".to_vec());
        store.put("user:bob/data.bin", b"bob data".to_vec());
        let host = HostFs::new(Arc::clone(&store));
        (store, host)
    }

    #[test]
    fn read_global_file() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd, 5).unwrap(), b"alice");
        assert_eq!(fs.read(fd, 100).unwrap(), b" data");
        assert_eq!(fs.read(fd, 10).unwrap(), b"");
        fs.close(fd).unwrap();
        assert!(fs.read(fd, 1).is_err());
    }

    #[test]
    fn shared_namespace_readable_by_all_users() {
        let (_store, host) = setup();
        let mut alice = FdTable::new(Arc::clone(&host), "alice");
        let mut bob = FdTable::new(host, "bob");
        let fa = alice.open("shared/lib.py", OpenFlags::read_only()).unwrap();
        let fb = bob.open("shared/lib.py", OpenFlags::read_only()).unwrap();
        assert_eq!(alice.read(fa, 100).unwrap(), bob.read(fb, 100).unwrap());
    }

    #[test]
    fn shared_namespace_not_writable() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        assert!(matches!(
            fs.open("shared/lib.py", OpenFlags::write_truncate()),
            Err(FsError::ReadOnlyNamespace { .. })
        ));
    }

    #[test]
    fn users_are_isolated() {
        let (_store, host) = setup();
        let mut alice = FdTable::new(Arc::clone(&host), "alice");
        let fd = alice.open("data.bin", OpenFlags::read_only()).unwrap();
        assert_eq!(alice.read(fd, 100).unwrap(), b"alice data");
        // Bob's identical relative path resolves to bob's file.
        let mut bob = FdTable::new(host, "bob");
        let fd = bob.open("data.bin", OpenFlags::read_only()).unwrap();
        assert_eq!(bob.read(fd, 100).unwrap(), b"bob data");
    }

    #[test]
    fn path_traversal_rejected() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        for bad in ["../bob/data.bin", "a/../../x", "a//b", ".", ""] {
            assert!(
                matches!(
                    fs.open(bad, OpenFlags::read_only()),
                    Err(FsError::InvalidPath { .. })
                ),
                "path {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn write_local_does_not_touch_global() {
        let (store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        let fd = fs.open("data.bin", OpenFlags::read_write()).unwrap();
        fs.write(fd, b"LOCAL").unwrap();
        // Global object unchanged.
        assert_eq!(
            store.pull("user:alice/data.bin").unwrap().as_slice(),
            b"alice data"
        );
        // Local read sees the overlay.
        fs.seek(fd, 0, Whence::Set).unwrap();
        assert_eq!(fs.read(fd, 10).unwrap(), b"LOCAL data");
    }

    #[test]
    fn overlay_shared_across_faaslets_on_host() {
        let (_store, host) = setup();
        let mut f1 = FdTable::new(Arc::clone(&host), "alice");
        let fd1 = f1.open("cache.pyc", OpenFlags::write_truncate()).unwrap();
        f1.write(fd1, b"bytecode").unwrap();
        // A second Faaslet of the same user on the same host sees it.
        let mut f2 = FdTable::new(host, "alice");
        let fd2 = f2.open("cache.pyc", OpenFlags::read_only()).unwrap();
        assert_eq!(f2.read(fd2, 100).unwrap(), b"bytecode");
    }

    #[test]
    fn create_truncate_append_semantics() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        assert!(matches!(
            fs.open("missing.txt", OpenFlags::read_only()),
            Err(FsError::NotFound { .. })
        ));
        let fd = fs.open("log.txt", OpenFlags::append()).unwrap();
        fs.write(fd, b"one").unwrap();
        fs.write(fd, b"two").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("log.txt", OpenFlags::append()).unwrap();
        fs.write(fd, b"three").unwrap();
        fs.seek(fd, 0, Whence::Set).unwrap();
        // Append descriptors may still read if read flag set? This one is
        // write-only:
        assert!(matches!(fs.read(fd, 1), Err(FsError::NotReadable)));
        let fd2 = fs.open("log.txt", OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd2, 100).unwrap(), b"onetwothree");
        // Truncate clears.
        let fd3 = fs.open("log.txt", OpenFlags::write_truncate()).unwrap();
        assert_eq!(fs.fstat(fd3).unwrap().size, 0);
    }

    #[test]
    fn seek_whence_semantics() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        assert_eq!(fs.seek(fd, 6, Whence::Set).unwrap(), 6);
        assert_eq!(fs.read(fd, 4).unwrap(), b"data");
        assert_eq!(fs.seek(fd, -4, Whence::Cur).unwrap(), 6);
        assert_eq!(fs.seek(fd, -4, Whence::End).unwrap(), 6);
        assert!(matches!(
            fs.seek(fd, -100, Whence::Set),
            Err(FsError::BadSeek)
        ));
    }

    #[test]
    fn dup_shares_offset() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        let fd2 = fs.dup(fd).unwrap();
        fs.read(fd, 6).unwrap();
        assert_eq!(fs.read(fd2, 4).unwrap(), b"data", "offset shared via dup");
        assert_eq!(fs.open_count(), 2);
    }

    #[test]
    fn stat_paths() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        let st = fs.stat("data.bin").unwrap();
        assert_eq!(st.size, 10);
        assert!(st.read_only);
        let fd = fs.open("new.txt", OpenFlags::write_truncate()).unwrap();
        fs.write(fd, b"abc").unwrap();
        let st = fs.stat("new.txt").unwrap();
        assert_eq!(st.size, 3);
        assert!(!st.read_only);
        assert!(fs.stat("absent").is_err());
    }

    #[test]
    fn host_cache_avoids_repeat_pulls() {
        let (store, host) = setup();
        let mut fs = FdTable::new(Arc::clone(&host), "alice");
        let base = store.pulls();
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(store.pulls() - base, 1, "second open served from cache");
        assert_eq!(host.cached_objects(), 1);
        host.drop_cache();
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(store.pulls() - base, 2, "cache dropped, pulled again");
    }

    #[test]
    fn close_all_drops_capabilities() {
        let (_store, host) = setup();
        let mut fs = FdTable::new(host, "alice");
        let fd = fs.open("data.bin", OpenFlags::read_only()).unwrap();
        fs.close_all();
        assert!(matches!(fs.read(fd, 1), Err(FsError::BadFd { .. })));
        assert_eq!(fs.open_count(), 0);
    }
}
