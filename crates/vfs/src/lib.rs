//! Read-global write-local virtual filesystem with capability handles.
//!
//! Reproduces the Faaslet filesystem of §3.1: functions read files from a
//! cluster-wide [`ObjectStore`] (datasets, libraries, object files) and
//! write to host-local overlay copies; the global store is never mutated
//! through the filesystem. Descriptors live in a per-Faaslet [`FdTable`] —
//! the WASI capability-based security model with unforgeable handles —
//! and every path is confined to the Faaslet's user root (plus the shared
//! read-only `shared/` namespace). This replaces layered filesystems and
//! `chroot`, which the paper calls out as cold-start costs (§3.1, citing
//! SOCK).

#![warn(missing_docs)]

pub mod error;
pub mod fs;
pub mod store;

pub use error::FsError;
pub use fs::{FdTable, FileStat, HostFs, OpenFlags, Whence, SHARED_PREFIX};
pub use store::ObjectStore;
