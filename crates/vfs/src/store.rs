//! The global object store (§5.2).
//!
//! "FAASM provides an upload service ... which then performs code generation
//! and writes the resulting object files to a shared object store." The same
//! store backs the read-global side of the Faaslet filesystem: datasets,
//! model files and language-runtime libraries are uploaded once and pulled
//! by hosts on demand. Pulled bytes are counted so experiments can attribute
//! data-shipping costs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A cluster-wide, content-addressed-by-path object store.
#[derive(Debug, Default)]
pub struct ObjectStore {
    files: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    pulled_bytes: AtomicU64,
    pulls: AtomicU64,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Upload (or replace) an object.
    pub fn put(&self, path: &str, data: Vec<u8>) {
        self.files.write().insert(path.to_string(), Arc::new(data));
    }

    /// Fetch an object, counting the pull (a host-cache miss — the transfer
    /// a real deployment would pay to S3/the object store).
    pub fn pull(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let data = self.files.read().get(path).cloned()?;
        self.pulled_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.pulls.fetch_add(1, Ordering::Relaxed);
        Some(data)
    }

    /// Whether an object exists (no pull counted).
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Object size in bytes, if present (no pull counted).
    pub fn size(&self, path: &str) -> Option<usize> {
        self.files.read().get(path).map(|d| d.len())
    }

    /// Remove an object; returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Paths starting with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total bytes pulled by hosts since construction.
    pub fn pulled_bytes(&self) -> u64 {
        self.pulled_bytes.load(Ordering::Relaxed)
    }

    /// Number of pulls since construction.
    pub fn pulls(&self) -> u64 {
        self.pulls.load(Ordering::Relaxed)
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.read().values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_pull_roundtrip() {
        let s = ObjectStore::new();
        assert!(s.pull("f").is_none());
        s.put("f", b"data".to_vec());
        assert_eq!(s.pull("f").unwrap().as_slice(), b"data");
        assert!(s.exists("f"));
        assert_eq!(s.size("f"), Some(4));
    }

    #[test]
    fn pulls_are_counted() {
        let s = ObjectStore::new();
        s.put("a", vec![0u8; 100]);
        s.pull("a");
        s.pull("a");
        assert_eq!(s.pulled_bytes(), 200);
        assert_eq!(s.pulls(), 2);
        // exists/size do not count.
        s.exists("a");
        s.size("a");
        assert_eq!(s.pulls(), 2);
    }

    #[test]
    fn list_by_prefix() {
        let s = ObjectStore::new();
        s.put("lib/a.py", vec![]);
        s.put("lib/b.py", vec![]);
        s.put("data/x", vec![]);
        assert_eq!(s.list("lib/"), vec!["lib/a.py", "lib/b.py"]);
        assert_eq!(s.list(""), vec!["data/x", "lib/a.py", "lib/b.py"]);
    }

    #[test]
    fn remove_and_accounting() {
        let s = ObjectStore::new();
        s.put("a", vec![0u8; 10]);
        s.put("b", vec![0u8; 5]);
        assert_eq!(s.total_bytes(), 15);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert_eq!(s.total_bytes(), 5);
    }
}
