//! Filesystem error types.

use std::fmt;

/// Errors from virtual-filesystem operations.
///
/// These map onto errno-style failures at the host interface; a Faaslet can
/// never crash the runtime through the filesystem, only receive errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path does not exist (and `O_CREAT` was not given).
    NotFound {
        /// The path as the user supplied it.
        path: String,
    },
    /// The file descriptor is not open in this Faaslet — the WASI
    /// capability model: handles are unforgeable and per-Faaslet (§3.1).
    BadFd {
        /// The offending descriptor.
        fd: u32,
    },
    /// Write attempted on a read-only descriptor.
    NotWritable,
    /// Read attempted on a write-only descriptor.
    NotReadable,
    /// The path escapes the user's root or contains forbidden components.
    InvalidPath {
        /// The rejected path.
        path: String,
    },
    /// Attempt to modify the global read-only namespace.
    ReadOnlyNamespace {
        /// The rejected path.
        path: String,
    },
    /// Seek to a negative resolved offset.
    BadSeek,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "no such file: {path:?}"),
            FsError::BadFd { fd } => write!(f, "bad file descriptor {fd}"),
            FsError::NotWritable => write!(f, "descriptor not writable"),
            FsError::NotReadable => write!(f, "descriptor not readable"),
            FsError::InvalidPath { path } => write!(f, "invalid path: {path:?}"),
            FsError::ReadOnlyNamespace { path } => {
                write!(f, "read-only namespace: {path:?}")
            }
            FsError::BadSeek => write!(f, "seek before start of file"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        assert!(FsError::NotFound { path: "x".into() }
            .to_string()
            .contains("x"));
        assert!(FsError::BadFd { fd: 7 }.to_string().contains('7'));
    }
}
