//! Memory accounting in the style of `/proc/<pid>/smaps` (§6.5, Tab. 3).

/// A point-in-time accounting of a linear memory's footprint.
///
/// * **RSS** (resident set size) counts every mapped page in full, the way a
///   container's private copy of shared libraries is charged to it.
/// * **PSS** (proportional set size) divides each page by the number of
///   memories/snapshots referencing it, so copy-on-write pages restored from
///   a common Proto-Faaslet and shared-region pages are charged
///   proportionally — this is the measurement that gives Faaslets their
///   order-of-magnitude footprint advantage in Tab. 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemStats {
    /// Pages exclusively owned by this memory.
    pub private_pages: usize,
    /// Copy-on-write pages still backed by a snapshot.
    pub cow_pages: usize,
    /// Pages belonging to mapped shared regions.
    pub shared_pages: usize,
    /// Resident set size in bytes (all mapped pages counted in full).
    pub rss_bytes: usize,
    /// Proportional set size in bytes (shared/CoW pages divided by their
    /// reference counts).
    pub pss_bytes: f64,
}

impl MemStats {
    /// Total number of mapped pages.
    pub fn total_pages(&self) -> usize {
        self.private_pages + self.cow_pages + self.shared_pages
    }
}

#[cfg(test)]
mod tests {
    use crate::linear::LinearMemory;
    use crate::page::PAGE_SIZE;
    use crate::region::SharedRegion;

    #[test]
    fn fresh_memory_is_all_private() {
        let mem = LinearMemory::new(3, 10).unwrap();
        let s = mem.stats();
        assert_eq!(s.private_pages, 3);
        assert_eq!(s.cow_pages, 0);
        assert_eq!(s.shared_pages, 0);
        assert_eq!(s.rss_bytes, 3 * PAGE_SIZE);
        assert!((s.pss_bytes - (3 * PAGE_SIZE) as f64).abs() < 1.0);
        assert_eq!(s.total_pages(), 3);
    }

    #[test]
    fn restored_memory_has_low_pss() {
        let mut mem = LinearMemory::new(4, 8).unwrap();
        mem.write(0, &[1u8; 100]).unwrap();
        let snap = mem.snapshot();
        let r1 = LinearMemory::restore(&snap);
        let r2 = LinearMemory::restore(&snap);
        let s = r1.stats();
        assert_eq!(s.cow_pages, 4);
        assert_eq!(s.rss_bytes, 4 * PAGE_SIZE);
        // Pages are referenced by: snapshot, original (as CoW), r1, r2 → PSS
        // should be well under RSS.
        assert!(s.pss_bytes < s.rss_bytes as f64 / 2.0);
        drop(r2);
    }

    #[test]
    fn shared_mapping_counts_as_shared() {
        let region = SharedRegion::new(2 * PAGE_SIZE);
        let mut a = LinearMemory::new(1, 10).unwrap();
        let mut b = LinearMemory::new(1, 10).unwrap();
        a.map_shared(&region).unwrap();
        b.map_shared(&region).unwrap();
        let s = a.stats();
        assert_eq!(s.private_pages, 1);
        assert_eq!(s.shared_pages, 2);
        // Shared pages referenced by region + two memories → charged ~1/3.
        assert!(s.pss_bytes < (PAGE_SIZE + 2 * PAGE_SIZE) as f64);
    }
}
