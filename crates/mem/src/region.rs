//! Shared memory regions (§3.3, Fig. 2).
//!
//! A [`SharedRegion`] is a run of pages allocated from "common process
//! memory". Several Faaslets map the same region into their private linear
//! address spaces; their guest code sees ordinary in-bounds offsets while the
//! underlying accesses land on the common pages — exactly the remapping trick
//! of Fig. 2. The local state tier (`faasm-state`) stores every state-value
//! replica in such regions, so co-located functions share data with zero
//! copies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::MemError;
use crate::page::{Page, PAGE_SIZE};
use crate::pages_for_bytes;

static NEXT_REGION_ID: AtomicU64 = AtomicU64::new(1);

/// A region of common process memory that can be mapped into many
/// [`crate::LinearMemory`] instances concurrently.
#[derive(Debug, Clone)]
pub struct SharedRegion {
    id: u64,
    pages: Arc<Vec<Arc<Page>>>,
    len_bytes: usize,
}

impl SharedRegion {
    /// Allocate a zero-filled shared region of at least `len_bytes` bytes
    /// (rounded up to whole pages).
    pub fn new(len_bytes: usize) -> SharedRegion {
        let n = pages_for_bytes(len_bytes.max(1));
        let pages = (0..n).map(|_| Arc::new(Page::zeroed())).collect();
        SharedRegion {
            id: NEXT_REGION_ID.fetch_add(1, Ordering::Relaxed),
            pages: Arc::new(pages),
            len_bytes,
        }
    }

    /// Allocate a shared region initialised from `data`.
    pub fn from_bytes(data: &[u8]) -> SharedRegion {
        let region = SharedRegion::new(data.len());
        region.write(0, data).expect("freshly sized region");
        region
    }

    /// A process-unique identifier for the region.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Logical length in bytes (may be less than the page-rounded capacity).
    pub fn len(&self) -> usize {
        self.len_bytes
    }

    /// True if the region holds no logical bytes.
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    /// Number of pages backing the region.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Capacity in bytes (whole pages).
    pub fn capacity(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// The backing pages, for mapping into a linear memory.
    pub(crate) fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    /// Read bytes directly from the region (host-side access used by the
    /// state tier without going through a guest linear memory).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the region's
    /// page-rounded capacity.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(offset, buf.len())?;
        let mut pos = 0;
        while pos < buf.len() {
            let addr = offset + pos;
            let page = addr / PAGE_SIZE;
            let in_page = addr % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - pos);
            self.pages[page].read(in_page, &mut buf[pos..pos + n]);
            pos += n;
        }
        Ok(())
    }

    /// Write bytes directly into the region.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the region's
    /// page-rounded capacity.
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<(), MemError> {
        self.check(offset, data.len())?;
        let mut pos = 0;
        while pos < data.len() {
            let addr = offset + pos;
            let page = addr / PAGE_SIZE;
            let in_page = addr % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(data.len() - pos);
            self.pages[page].write(in_page, &data[pos..pos + n]);
            pos += n;
        }
        Ok(())
    }

    /// Copy the full logical contents out of the region.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len_bytes];
        self.read(0, &mut out).expect("in-bounds by construction");
        out
    }

    fn check(&self, offset: usize, len: usize) -> Result<(), MemError> {
        let cap = self.capacity();
        if offset.checked_add(len).is_none_or(|end| end > cap) {
            return Err(MemError::OutOfBounds {
                addr: offset,
                len,
                size: cap,
            });
        }
        Ok(())
    }
}

/// A host-wide registry of named shared regions.
///
/// The local state tier allocates one region per state value (or per chunk
/// run) and registers it here under the state key, so that every Faaslet on
/// the host maps the *same* pages (Fig. 4's local tier).
#[derive(Debug, Default)]
pub struct SharedRegionRegistry {
    regions: RwLock<HashMap<String, SharedRegion>>,
}

impl SharedRegionRegistry {
    /// Create an empty registry.
    pub fn new() -> SharedRegionRegistry {
        SharedRegionRegistry::default()
    }

    /// Get the region registered under `key`, or create a zeroed region of
    /// `len_bytes` and register it. Concurrent callers receive clones of the
    /// same region.
    pub fn get_or_create(&self, key: &str, len_bytes: usize) -> SharedRegion {
        if let Some(r) = self.regions.read().get(key) {
            return r.clone();
        }
        let mut w = self.regions.write();
        w.entry(key.to_string())
            .or_insert_with(|| SharedRegion::new(len_bytes))
            .clone()
    }

    /// Look up an existing region.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RegionNotFound`] if no region is registered under
    /// `key`.
    pub fn get(&self, key: &str) -> Result<SharedRegion, MemError> {
        self.regions
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| MemError::RegionNotFound {
                key: key.to_string(),
            })
    }

    /// Replace or insert a region under `key`.
    pub fn insert(&self, key: &str, region: SharedRegion) {
        self.regions.write().insert(key.to_string(), region);
    }

    /// Remove the region registered under `key`, returning it if present.
    pub fn remove(&self, key: &str) -> Option<SharedRegion> {
        self.regions.write().remove(key)
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.read().len()
    }

    /// True if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.read().is_empty()
    }

    /// Total bytes held by all registered regions (page-rounded).
    pub fn total_bytes(&self) -> usize {
        self.regions.read().values().map(|r| r.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_rounds_up_to_pages() {
        let r = SharedRegion::new(PAGE_SIZE + 1);
        assert_eq!(r.page_count(), 2);
        assert_eq!(r.len(), PAGE_SIZE + 1);
        assert_eq!(r.capacity(), 2 * PAGE_SIZE);
    }

    #[test]
    fn zero_length_region_still_has_a_page() {
        let r = SharedRegion::new(0);
        assert_eq!(r.page_count(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn read_write_roundtrip_across_pages() {
        let r = SharedRegion::new(2 * PAGE_SIZE);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        r.write(PAGE_SIZE - 100, &data).unwrap();
        let mut buf = vec![0u8; 200];
        r.read(PAGE_SIZE - 100, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let r = SharedRegion::new(10);
        let err = r.write(PAGE_SIZE - 2, &[0u8; 4]).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
        let mut buf = [0u8; 4];
        assert!(r.read(PAGE_SIZE, &mut buf).is_err());
    }

    #[test]
    fn clones_share_pages() {
        let a = SharedRegion::from_bytes(b"shared data");
        let b = a.clone();
        b.write(0, b"SHARED").unwrap();
        let mut buf = vec![0u8; 6];
        a.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"SHARED");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn registry_get_or_create_is_idempotent() {
        let reg = SharedRegionRegistry::new();
        let a = reg.get_or_create("k", 100);
        let b = reg.get_or_create("k", 999_999);
        assert_eq!(a.id(), b.id());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_get_missing_errors() {
        let reg = SharedRegionRegistry::new();
        assert!(matches!(
            reg.get("nope"),
            Err(MemError::RegionNotFound { .. })
        ));
    }

    #[test]
    fn registry_remove_and_total_bytes() {
        let reg = SharedRegionRegistry::new();
        reg.get_or_create("a", PAGE_SIZE);
        reg.get_or_create("b", 1);
        assert_eq!(reg.total_bytes(), 2 * PAGE_SIZE);
        assert!(reg.remove("a").is_some());
        assert!(reg.remove("a").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn concurrent_get_or_create_returns_same_region() {
        let reg = Arc::new(SharedRegionRegistry::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                reg.get_or_create("key", 1000).id()
            }));
        }
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
