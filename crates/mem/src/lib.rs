//! Page-table virtual memory substrate for Faaslets.
//!
//! This crate reproduces the memory model of the Faasm paper (§3.3 and §5.2):
//!
//! * Each Faaslet owns a [`LinearMemory`]: a WebAssembly-style, densely packed
//!   linear address space addressed from offset zero, grown in 64 KiB pages.
//! * Pages are backed by [`Frame`]s, which are either **private** (owned by one
//!   memory), **copy-on-write** (shared with a snapshot until first write), or
//!   **shared** (mapped into several linear memories at once — the paper's
//!   *shared regions*, Fig. 2).
//! * [`MemorySnapshot`] captures the full contents of a memory in O(pages)
//!   pointer copies; [`LinearMemory::restore`] rebuilds a memory from a
//!   snapshot using copy-on-write mappings, which is what makes Proto-Faaslet
//!   restores run in microseconds (§5.2).
//! * [`SharedRegion`] is a standalone run of pages that can be concurrently
//!   mapped into many linear memories. Concurrent access is word-atomic
//!   (see [`page::Page`]), which matches the data-race-tolerant HOGWILD!
//!   access pattern used by the paper's SGD workload; synchronisation
//!   discipline (local read/write locks) is layered above in `faasm-state`.
//!
//! The crate has no dependencies on the rest of the workspace and no unsafe
//! code.

#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod linear;
pub mod page;
pub mod region;
pub mod snapshot;
pub mod stats;

pub use error::MemError;
pub use frame::{Frame, FrameKind};
pub use linear::LinearMemory;
pub use page::{Page, PAGE_SIZE};
pub use region::{SharedRegion, SharedRegionRegistry};
pub use snapshot::MemorySnapshot;
pub use stats::MemStats;

/// Convert a byte count to the number of pages needed to hold it.
///
/// # Examples
///
/// ```
/// use faasm_mem::{pages_for_bytes, PAGE_SIZE};
/// assert_eq!(pages_for_bytes(0), 0);
/// assert_eq!(pages_for_bytes(1), 1);
/// assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
/// assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
/// ```
pub fn pages_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_bytes_boundaries() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE - 1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for_bytes(10 * PAGE_SIZE), 10);
    }
}
