//! Error types for memory operations.

use std::fmt;

/// Errors produced by memory operations.
///
/// All memory faults are reported as values; nothing in this crate panics on
/// guest-controlled input. The FVM maps [`MemError::OutOfBounds`] onto a trap,
/// which is the SFI enforcement point of the paper (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An access at `addr..addr + len` fell outside a memory of `size` bytes.
    OutOfBounds {
        /// Start address of the faulting access.
        addr: usize,
        /// Length of the faulting access in bytes.
        len: usize,
        /// Current size of the memory in bytes.
        size: usize,
    },
    /// Growing the memory would exceed its configured page limit.
    ///
    /// The paper gives every function a predefined memory limit; `mmap`/`brk`
    /// calls fail once growth of the private region would exceed it (§3.2).
    LimitExceeded {
        /// Pages requested in total after the grow.
        requested_pages: usize,
        /// Configured maximum in pages.
        max_pages: usize,
    },
    /// A shared-region mapping request was not aligned to a page boundary.
    UnalignedMapping {
        /// The offending byte offset.
        offset: usize,
    },
    /// A mapping refers to pages that do not exist in the source region.
    BadRegionRange {
        /// First page requested.
        page: usize,
        /// Number of pages requested.
        count: usize,
        /// Pages available in the region.
        available: usize,
    },
    /// Attempted to map over pages that are already part of a shared mapping.
    MappingOverlap {
        /// First overlapping page index in the linear memory.
        page: usize,
    },
    /// A named shared region was not found in the registry.
    RegionNotFound {
        /// The requested region key.
        key: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len, size } => write!(
                f,
                "out-of-bounds access: addr={addr:#x} len={len} memory_size={size:#x}"
            ),
            MemError::LimitExceeded {
                requested_pages,
                max_pages,
            } => write!(
                f,
                "memory limit exceeded: requested {requested_pages} pages, limit {max_pages}"
            ),
            MemError::UnalignedMapping { offset } => {
                write!(f, "mapping offset {offset:#x} is not page-aligned")
            }
            MemError::BadRegionRange {
                page,
                count,
                available,
            } => write!(
                f,
                "region range out of bounds: pages {page}..{} of {available}",
                page + count
            ),
            MemError::MappingOverlap { page } => {
                write!(f, "mapping overlaps existing shared mapping at page {page}")
            }
            MemError::RegionNotFound { key } => write!(f, "shared region not found: {key:?}"),
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = MemError::OutOfBounds {
            addr: 0x10,
            len: 4,
            size: 8,
        };
        assert!(e.to_string().contains("out-of-bounds"));
        let e = MemError::LimitExceeded {
            requested_pages: 10,
            max_pages: 4,
        };
        assert!(e.to_string().contains("limit"));
        let e = MemError::RegionNotFound { key: "k".into() };
        assert!(e.to_string().contains("\"k\""));
    }
}
