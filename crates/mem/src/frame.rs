//! Frames: the backing store of one linear-memory page.

use std::sync::Arc;

use crate::page::Page;

/// How a frame relates to its backing page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The linear memory exclusively owns the page; writes go straight
    /// through.
    Private,
    /// The page is shared with one or more [`crate::MemorySnapshot`]s; the
    /// first write materialises a private copy (copy-on-write, §5.2).
    Cow,
    /// The page belongs to a [`crate::SharedRegion`] mapped into this memory
    /// (§3.3); reads and writes operate on the common page, visible to every
    /// memory that maps the region.
    Shared,
}

/// One page-sized frame of a linear memory.
#[derive(Debug)]
pub struct Frame {
    page: Arc<Page>,
    kind: FrameKind,
}

impl Frame {
    /// Create a private zero-filled frame.
    pub fn private_zeroed() -> Frame {
        Frame {
            page: Arc::new(Page::zeroed()),
            kind: FrameKind::Private,
        }
    }

    /// Create a private frame from existing page data.
    pub fn private(page: Arc<Page>) -> Frame {
        Frame {
            page,
            kind: FrameKind::Private,
        }
    }

    /// Create a copy-on-write frame referencing a snapshot page.
    pub fn cow(page: Arc<Page>) -> Frame {
        Frame {
            page,
            kind: FrameKind::Cow,
        }
    }

    /// Create a shared frame referencing a shared-region page.
    pub fn shared(page: Arc<Page>) -> Frame {
        Frame {
            page,
            kind: FrameKind::Shared,
        }
    }

    /// The frame's relationship to its page.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// Access the backing page for reading.
    pub fn page(&self) -> &Arc<Page> {
        &self.page
    }

    /// Prepare the frame for writing, materialising a private copy if the
    /// frame is copy-on-write. Returns the writable page.
    pub fn page_for_write(&mut self) -> &Arc<Page> {
        if self.kind == FrameKind::Cow {
            self.page = self.page.clone_data();
            self.kind = FrameKind::Private;
        }
        &self.page
    }

    /// Demote a private frame to copy-on-write so its page can also be held
    /// by a snapshot. Shared frames are unaffected: shared-region contents
    /// are deliberately not captured by snapshots (§5.2 snapshots private
    /// execution state only).
    pub fn demote_to_cow(&mut self) {
        if self.kind == FrameKind::Private {
            self.kind = FrameKind::Cow;
        }
    }

    /// Number of memories/snapshots currently referencing the backing page.
    ///
    /// Used for proportional-set-size accounting: a page shared `n` ways
    /// contributes `PAGE_SIZE / n` to each holder's PSS (§6.5, Tab. 3).
    pub fn sharers(&self) -> usize {
        Arc::strong_count(&self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_frame_writes_in_place() {
        let mut f = Frame::private_zeroed();
        let before = Arc::as_ptr(f.page());
        f.page_for_write().write(0, b"x");
        assert_eq!(Arc::as_ptr(f.page()), before, "no copy for private frame");
        assert_eq!(f.kind(), FrameKind::Private);
    }

    #[test]
    fn cow_frame_copies_on_first_write() {
        let base = Arc::new(Page::from_bytes(b"orig"));
        let mut f = Frame::cow(base.clone());
        assert_eq!(f.kind(), FrameKind::Cow);
        f.page_for_write().write(0, b"new!");
        assert_eq!(f.kind(), FrameKind::Private);
        // Original page untouched.
        let mut buf = [0u8; 4];
        base.read(0, &mut buf);
        assert_eq!(&buf, b"orig");
        let mut buf2 = [0u8; 4];
        f.page().read(0, &mut buf2);
        assert_eq!(&buf2, b"new!");
    }

    #[test]
    fn cow_copies_only_once() {
        let base = Arc::new(Page::zeroed());
        let mut f = Frame::cow(base);
        f.page_for_write().write(0, b"a");
        let after_first = Arc::as_ptr(f.page());
        f.page_for_write().write(1, b"b");
        assert_eq!(Arc::as_ptr(f.page()), after_first);
    }

    #[test]
    fn shared_frame_writes_through() {
        let page = Arc::new(Page::zeroed());
        let mut f = Frame::shared(page.clone());
        f.page_for_write().write(0, b"s");
        assert_eq!(f.kind(), FrameKind::Shared);
        let mut buf = [0u8; 1];
        page.read(0, &mut buf);
        assert_eq!(&buf, b"s", "write visible through the region page");
    }

    #[test]
    fn demote_only_affects_private() {
        let mut f = Frame::private_zeroed();
        f.demote_to_cow();
        assert_eq!(f.kind(), FrameKind::Cow);
        let mut s = Frame::shared(Arc::new(Page::zeroed()));
        s.demote_to_cow();
        assert_eq!(s.kind(), FrameKind::Shared);
    }

    #[test]
    fn sharers_counts_references() {
        let page = Arc::new(Page::zeroed());
        let f = Frame::shared(page.clone());
        assert_eq!(f.sharers(), 2);
        drop(page);
        assert_eq!(f.sharers(), 1);
    }
}
