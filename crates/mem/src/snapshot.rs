//! Memory snapshots: the substrate of Proto-Faaslets (§5.2).
//!
//! A snapshot captures a linear memory's private contents in O(pages) pointer
//! copies: each private frame is demoted to copy-on-write and its page `Arc`
//! is cloned into the snapshot. Restoring builds a fresh memory whose frames
//! all reference the snapshot pages copy-on-write, so restore cost is
//! independent of how much data the snapshot holds — pages are physically
//! copied only when the restored Faaslet first writes them.
//!
//! Snapshots are plain data (`Arc`s over immutable-by-convention pages), so
//! they can be serialised with [`MemorySnapshot::to_bytes`] and shipped to
//! other hosts, giving the paper's cross-host, OS-independent restores.

use std::sync::Arc;

use crate::page::{Page, PAGE_SIZE};

/// An immutable capture of a linear memory's private pages.
#[derive(Debug, Clone)]
pub struct MemorySnapshot {
    pub(crate) pages: Vec<Arc<Page>>,
    pub(crate) size_pages: usize,
    pub(crate) max_pages: usize,
}

impl MemorySnapshot {
    /// Number of pages captured.
    pub fn size_pages(&self) -> usize {
        self.size_pages
    }

    /// Size of the captured memory in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_pages * PAGE_SIZE
    }

    /// The page limit of the memory the snapshot was taken from.
    pub fn max_pages(&self) -> usize {
        self.max_pages
    }

    /// The snapshot's pages in address order — the chunking unit of the
    /// snapshot distribution plane (one content-addressed chunk per page).
    pub fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    /// Build a snapshot directly from pages (the chunk-assembly path of a
    /// fetched proto: pages arrive individually, already verified, and the
    /// restored memory maps them copy-on-write like any other snapshot).
    ///
    /// Returns `None` if `max_pages` cannot hold the pages.
    pub fn from_pages(pages: Vec<Arc<Page>>, max_pages: usize) -> Option<MemorySnapshot> {
        if max_pages < pages.len() {
            return None;
        }
        Some(MemorySnapshot {
            size_pages: pages.len(),
            pages,
            max_pages,
        })
    }

    /// Serialise the snapshot to a flat byte buffer (for cross-host
    /// distribution via the global tier).
    ///
    /// Layout: `size_pages:u32 | max_pages:u32 | page bytes...`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pages.len() * PAGE_SIZE);
        out.extend_from_slice(&(self.size_pages as u32).to_le_bytes());
        out.extend_from_slice(&(self.max_pages as u32).to_le_bytes());
        for p in &self.pages {
            out.extend_from_slice(&p.to_bytes());
        }
        out
    }

    /// Deserialise a snapshot previously produced by
    /// [`MemorySnapshot::to_bytes`].
    ///
    /// Returns `None` if the buffer is malformed.
    pub fn from_bytes(data: &[u8]) -> Option<MemorySnapshot> {
        if data.len() < 8 {
            return None;
        }
        let size_pages = u32::from_le_bytes(data[0..4].try_into().ok()?) as usize;
        let max_pages = u32::from_le_bytes(data[4..8].try_into().ok()?) as usize;
        let body = &data[8..];
        if body.len() != size_pages * PAGE_SIZE || max_pages < size_pages {
            return None;
        }
        let pages = (0..size_pages)
            .map(|i| Arc::new(Page::from_bytes(&body[i * PAGE_SIZE..(i + 1) * PAGE_SIZE])))
            .collect();
        Some(MemorySnapshot {
            pages,
            size_pages,
            max_pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearMemory;

    #[test]
    fn roundtrip_serialisation() {
        let mut mem = LinearMemory::new(2, 4).unwrap();
        mem.write(100, b"snapshot me").unwrap();
        let snap = mem.snapshot();
        let bytes = snap.to_bytes();
        let back = MemorySnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.size_pages(), 2);
        assert_eq!(back.max_pages(), 4);
        let restored = LinearMemory::restore(&back);
        let mut buf = vec![0u8; 11];
        restored.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"snapshot me");
    }

    #[test]
    fn from_bytes_rejects_malformed() {
        assert!(MemorySnapshot::from_bytes(&[]).is_none());
        assert!(MemorySnapshot::from_bytes(&[0u8; 7]).is_none());
        // Header claims 1 page but no body.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        assert!(MemorySnapshot::from_bytes(&bad).is_none());
        // max_pages < size_pages.
        let mut bad2 = Vec::new();
        bad2.extend_from_slice(&1u32.to_le_bytes());
        bad2.extend_from_slice(&0u32.to_le_bytes());
        bad2.extend_from_slice(&vec![0u8; PAGE_SIZE]);
        assert!(MemorySnapshot::from_bytes(&bad2).is_none());
    }
}
