//! The per-Faaslet linear address space.

use std::sync::Arc;

use crate::error::MemError;
use crate::frame::{Frame, FrameKind};
use crate::page::PAGE_SIZE;
use crate::region::SharedRegion;
use crate::snapshot::MemorySnapshot;
use crate::stats::MemStats;

/// A WebAssembly-style linear memory: a single densely packed byte array
/// addressed from zero, backed page-by-page by private, copy-on-write or
/// shared frames.
///
/// Guest code always sees one contiguous address space; the frame table makes
/// ranges of it alias shared regions (Fig. 2) or snapshot pages without the
/// guest being able to tell the difference. Every access is bounds-checked
/// and fails with [`MemError::OutOfBounds`] — the software-fault-isolation
/// guarantee.
///
/// # Examples
///
/// ```
/// use faasm_mem::{LinearMemory, SharedRegion, PAGE_SIZE};
///
/// let mut mem = LinearMemory::new(1, 4).unwrap();
/// mem.write(0, b"private").unwrap();
///
/// // Map a shared region; it appears at the end of the address space.
/// let region = SharedRegion::from_bytes(b"shared!");
/// let base = mem.map_shared(&region).unwrap();
/// let mut buf = [0u8; 7];
/// mem.read(base, &mut buf).unwrap();
/// assert_eq!(&buf, b"shared!");
/// ```
#[derive(Debug)]
pub struct LinearMemory {
    frames: Vec<Frame>,
    dirty: Vec<bool>,
    max_pages: usize,
}

impl LinearMemory {
    /// Create a memory with `initial_pages` zeroed private pages and a hard
    /// limit of `max_pages`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LimitExceeded`] if `initial_pages > max_pages`.
    pub fn new(initial_pages: usize, max_pages: usize) -> Result<LinearMemory, MemError> {
        if initial_pages > max_pages {
            return Err(MemError::LimitExceeded {
                requested_pages: initial_pages,
                max_pages,
            });
        }
        Ok(LinearMemory {
            frames: (0..initial_pages)
                .map(|_| Frame::private_zeroed())
                .collect(),
            dirty: vec![false; initial_pages],
            max_pages,
        })
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> usize {
        self.frames.len()
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.frames.len() * PAGE_SIZE
    }

    /// The configured page limit.
    pub fn max_pages(&self) -> usize {
        self.max_pages
    }

    /// Grow the memory by `delta` zeroed private pages, returning the
    /// previous size in pages (the `memory.grow` semantics the host interface
    /// builds `brk`/`mmap` on, §3.2).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LimitExceeded`] if the new size would exceed the
    /// page limit; the memory is unchanged in that case.
    pub fn grow(&mut self, delta: usize) -> Result<usize, MemError> {
        let old = self.frames.len();
        let requested = old + delta;
        if requested > self.max_pages {
            return Err(MemError::LimitExceeded {
                requested_pages: requested,
                max_pages: self.max_pages,
            });
        }
        self.frames
            .extend((0..delta).map(|_| Frame::private_zeroed()));
        self.dirty.extend((0..delta).map(|_| false));
        Ok(old)
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the memory.
    pub fn read(&self, addr: usize, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(addr, buf.len())?;
        let mut pos = 0;
        while pos < buf.len() {
            let a = addr + pos;
            let page = a / PAGE_SIZE;
            let in_page = a % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - pos);
            self.frames[page]
                .page()
                .read(in_page, &mut buf[pos..pos + n]);
            pos += n;
        }
        Ok(())
    }

    /// Write `data` starting at `addr`, materialising copy-on-write pages as
    /// needed and marking touched pages dirty.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the memory.
    pub fn write(&mut self, addr: usize, data: &[u8]) -> Result<(), MemError> {
        self.check(addr, data.len())?;
        let mut pos = 0;
        while pos < data.len() {
            let a = addr + pos;
            let page = a / PAGE_SIZE;
            let in_page = a % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(data.len() - pos);
            self.frames[page]
                .page_for_write()
                .write(in_page, &data[pos..pos + n]);
            self.dirty[page] = true;
            pos += n;
        }
        Ok(())
    }

    /// Read `N` bytes at `addr` without a bounds check; the caller must have
    /// range-checked `[addr, addr + N)` against [`LinearMemory::size_bytes`].
    /// This is the raw half of a *hoisted* bounds check: the FVM's fused
    /// superinstructions do one range comparison per access and then call
    /// this. Panics (safe, out-of-bounds index) if the caller lied.
    #[inline]
    pub fn read_raw<const N: usize>(&self, addr: usize) -> [u8; N] {
        debug_assert!(addr + N <= self.size_bytes(), "caller must range-check");
        let mut buf = [0u8; N];
        let in_page = addr % PAGE_SIZE;
        if in_page + N <= PAGE_SIZE {
            self.frames[addr / PAGE_SIZE].page().read(in_page, &mut buf);
        } else {
            let split = PAGE_SIZE - in_page;
            self.frames[addr / PAGE_SIZE]
                .page()
                .read(in_page, &mut buf[..split]);
            self.frames[addr / PAGE_SIZE + 1]
                .page()
                .read(0, &mut buf[split..]);
        }
        buf
    }

    /// Write `N` bytes at `addr` without a bounds check; see
    /// [`LinearMemory::read_raw`] for the contract. Materialises
    /// copy-on-write pages and marks them dirty exactly like
    /// [`LinearMemory::write`].
    #[inline]
    pub fn write_raw<const N: usize>(&mut self, addr: usize, data: [u8; N]) {
        debug_assert!(addr + N <= self.size_bytes(), "caller must range-check");
        let page = addr / PAGE_SIZE;
        let in_page = addr % PAGE_SIZE;
        if in_page + N <= PAGE_SIZE {
            self.frames[page].page_for_write().write(in_page, &data);
            self.dirty[page] = true;
        } else {
            let split = PAGE_SIZE - in_page;
            self.frames[page]
                .page_for_write()
                .write(in_page, &data[..split]);
            self.frames[page + 1]
                .page_for_write()
                .write(0, &data[split..]);
            self.dirty[page] = true;
            self.dirty[page + 1] = true;
        }
    }

    /// Fill `len` bytes starting at `addr` with `value` (`memset`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the memory.
    pub fn fill(&mut self, addr: usize, len: usize, value: u8) -> Result<(), MemError> {
        self.check(addr, len)?;
        let mut pos = 0;
        while pos < len {
            let a = addr + pos;
            let page = a / PAGE_SIZE;
            let in_page = a % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(len - pos);
            self.frames[page].page_for_write().fill(in_page, n, value);
            self.dirty[page] = true;
            pos += n;
        }
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` within the memory (`memmove`
    /// semantics: overlapping ranges are handled correctly).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if either range exceeds the memory.
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) -> Result<(), MemError> {
        self.check(src, len)?;
        self.check(dst, len)?;
        let mut tmp = vec![0u8; len];
        self.read(src, &mut tmp)?;
        self.write(dst, &tmp)
    }

    /// Map a shared region at the end of the address space, growing the
    /// memory by the region's page count. Returns the base address of the
    /// mapping (the paper's "extend the linear byte array and remap the new
    /// pages onto shared process memory", §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LimitExceeded`] if mapping would exceed the page
    /// limit.
    pub fn map_shared(&mut self, region: &SharedRegion) -> Result<usize, MemError> {
        let base_page = self.frames.len();
        self.map_shared_at(base_page, region)?;
        Ok(base_page * PAGE_SIZE)
    }

    /// Map a shared region so its first page lands at page index `page_idx`,
    /// growing the memory with zeroed private pages if there is a gap.
    ///
    /// # Errors
    ///
    /// * [`MemError::LimitExceeded`] if the mapping end exceeds the limit.
    /// * [`MemError::MappingOverlap`] if any target page is already part of a
    ///   shared mapping (remapping over a live region would silently detach
    ///   other Faaslets, so it is refused).
    pub fn map_shared_at(
        &mut self,
        page_idx: usize,
        region: &SharedRegion,
    ) -> Result<(), MemError> {
        let count = region.page_count();
        let end = page_idx + count;
        if end > self.max_pages {
            return Err(MemError::LimitExceeded {
                requested_pages: end,
                max_pages: self.max_pages,
            });
        }
        for (i, frame) in self.frames.iter().enumerate().skip(page_idx) {
            if i < end && frame.kind() == FrameKind::Shared {
                return Err(MemError::MappingOverlap { page: i });
            }
        }
        if end > self.frames.len() {
            let grow_by = end - self.frames.len();
            self.frames
                .extend((0..grow_by).map(|_| Frame::private_zeroed()));
            self.dirty.extend((0..grow_by).map(|_| false));
        }
        for (i, page) in region.pages().iter().enumerate() {
            self.frames[page_idx + i] = Frame::shared(Arc::clone(page));
        }
        Ok(())
    }

    /// Replace the shared mapping covering `page_idx..page_idx + count` with
    /// zeroed private pages (`munmap` of a shared region).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the memory.
    pub fn unmap(&mut self, page_idx: usize, count: usize) -> Result<(), MemError> {
        let end = page_idx + count;
        if end > self.frames.len() {
            return Err(MemError::OutOfBounds {
                addr: page_idx * PAGE_SIZE,
                len: count * PAGE_SIZE,
                size: self.size_bytes(),
            });
        }
        for i in page_idx..end {
            self.frames[i] = Frame::private_zeroed();
            self.dirty[i] = false;
        }
        Ok(())
    }

    /// The frame kind backing page `page_idx`, if the page exists.
    pub fn frame_kind(&self, page_idx: usize) -> Option<FrameKind> {
        self.frames.get(page_idx).map(|f| f.kind())
    }

    /// Take a snapshot of the memory's contents.
    ///
    /// Private pages are captured in O(1) each by demoting them to
    /// copy-on-write and sharing the page `Arc`; shared-region pages are
    /// captured by value (a point-in-time copy) since the region's future
    /// writes must not leak into the snapshot.
    pub fn snapshot(&mut self) -> MemorySnapshot {
        let mut pages = Vec::with_capacity(self.frames.len());
        for frame in &mut self.frames {
            match frame.kind() {
                FrameKind::Private => {
                    frame.demote_to_cow();
                    pages.push(Arc::clone(frame.page()));
                }
                FrameKind::Cow => pages.push(Arc::clone(frame.page())),
                FrameKind::Shared => pages.push(frame.page().clone_data()),
            }
        }
        MemorySnapshot {
            size_pages: pages.len(),
            max_pages: self.max_pages,
            pages,
        }
    }

    /// Build a new memory from a snapshot using copy-on-write mappings.
    ///
    /// Cost is O(pages) reference-count increments; no page data is copied
    /// until the restored memory is written — the Proto-Faaslet restore path
    /// (§5.2).
    pub fn restore(snap: &MemorySnapshot) -> LinearMemory {
        LinearMemory {
            frames: snap
                .pages
                .iter()
                .map(|p| Frame::cow(Arc::clone(p)))
                .collect(),
            dirty: vec![false; snap.pages.len()],
            max_pages: snap.max_pages,
        }
    }

    /// Indices of pages written since the last [`LinearMemory::clear_dirty`].
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
            .collect()
    }

    /// Reset all dirty bits.
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    /// Point-in-time footprint accounting (see [`MemStats`]).
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for frame in &self.frames {
            match frame.kind() {
                FrameKind::Private => {
                    s.private_pages += 1;
                    s.pss_bytes += PAGE_SIZE as f64;
                }
                FrameKind::Cow => {
                    s.cow_pages += 1;
                    s.pss_bytes += PAGE_SIZE as f64 / frame.sharers() as f64;
                }
                FrameKind::Shared => {
                    s.shared_pages += 1;
                    s.pss_bytes += PAGE_SIZE as f64 / frame.sharers() as f64;
                }
            }
        }
        s.rss_bytes = self.frames.len() * PAGE_SIZE;
        s
    }

    /// Copy the full contents to an owned buffer (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.size_bytes()];
        self.read(0, &mut out).expect("in-bounds by construction");
        out
    }

    fn check(&self, addr: usize, len: usize) -> Result<(), MemError> {
        let size = self.size_bytes();
        if addr.checked_add(len).is_none_or(|end| end > size) {
            return Err(MemError::OutOfBounds { addr, len, size });
        }
        Ok(())
    }
}

// Typed little-endian accessors used by the FVM's load/store instructions.
macro_rules! typed_access {
    ($read:ident, $write:ident, $ty:ty) => {
        impl LinearMemory {
            /// Read a little-endian value at `addr`.
            ///
            /// # Errors
            ///
            /// Returns [`MemError::OutOfBounds`] if the access exceeds the
            /// memory.
            pub fn $read(&self, addr: usize) -> Result<$ty, MemError> {
                let mut buf = [0u8; std::mem::size_of::<$ty>()];
                self.read(addr, &mut buf)?;
                Ok(<$ty>::from_le_bytes(buf))
            }

            /// Write a little-endian value at `addr`.
            ///
            /// # Errors
            ///
            /// Returns [`MemError::OutOfBounds`] if the access exceeds the
            /// memory.
            pub fn $write(&mut self, addr: usize, value: $ty) -> Result<(), MemError> {
                self.write(addr, &value.to_le_bytes())
            }
        }
    };
}

typed_access!(read_u8, write_u8, u8);
typed_access!(read_u16, write_u16, u16);
typed_access!(read_u32, write_u32, u32);
typed_access!(read_u64, write_u64, u64);
typed_access!(read_i8, write_i8, i8);
typed_access!(read_i16, write_i16, i16);
typed_access!(read_i32, write_i32, i32);
typed_access!(read_i64, write_i64, i64);
typed_access!(read_f32, write_f32, f32);
typed_access!(read_f64, write_f64, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_respects_limit() {
        assert!(LinearMemory::new(4, 4).is_ok());
        assert!(matches!(
            LinearMemory::new(5, 4),
            Err(MemError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn grow_returns_old_size_and_enforces_limit() {
        let mut mem = LinearMemory::new(1, 3).unwrap();
        assert_eq!(mem.grow(1).unwrap(), 1);
        assert_eq!(mem.size_pages(), 2);
        assert!(mem.grow(2).is_err());
        assert_eq!(mem.size_pages(), 2, "failed grow leaves memory unchanged");
        assert_eq!(mem.grow(1).unwrap(), 2);
    }

    #[test]
    fn raw_access_matches_checked_path_across_pages() {
        let mut mem = LinearMemory::new(2, 2).unwrap();
        // Straddle the page boundary and hit an interior offset.
        for addr in [100usize, PAGE_SIZE - 3, PAGE_SIZE - 1] {
            let data = [0xA1, 0xB2, 0xC3, 0xD4, 0xE5, 0xF6, 0x07, 0x18];
            mem.write_raw::<8>(addr, data);
            let mut checked = [0u8; 8];
            mem.read(addr, &mut checked).unwrap();
            assert_eq!(checked, data);
            assert_eq!(mem.read_raw::<8>(addr), data);
        }
    }

    #[test]
    fn read_write_cross_page() {
        let mut mem = LinearMemory::new(2, 2).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        mem.write(PAGE_SIZE - 128, &data).unwrap();
        let mut buf = vec![0u8; 256];
        mem.read(PAGE_SIZE - 128, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn out_of_bounds_is_reported_not_panicking() {
        let mut mem = LinearMemory::new(1, 1).unwrap();
        assert!(matches!(
            mem.write(PAGE_SIZE - 1, &[0, 0]),
            Err(MemError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 2];
        assert!(mem.read(PAGE_SIZE - 1, &mut buf).is_err());
        // Address arithmetic overflow also rejected.
        assert!(mem.read(usize::MAX, &mut buf).is_err());
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut mem = LinearMemory::new(1, 1).unwrap();
        mem.write_u32(0, 0xdead_beef).unwrap();
        assert_eq!(mem.read_u32(0).unwrap(), 0xdead_beef);
        mem.write_i64(8, -42).unwrap();
        assert_eq!(mem.read_i64(8).unwrap(), -42);
        mem.write_f64(16, 3.5).unwrap();
        assert_eq!(mem.read_f64(16).unwrap(), 3.5);
        mem.write_f32(24, -0.25).unwrap();
        assert_eq!(mem.read_f32(24).unwrap(), -0.25);
        mem.write_u16(28, 0xbeef).unwrap();
        assert_eq!(mem.read_u16(28).unwrap(), 0xbeef);
        mem.write_i8(30, -1).unwrap();
        assert_eq!(mem.read_i8(30).unwrap(), -1);
    }

    #[test]
    fn fill_and_copy_within() {
        let mut mem = LinearMemory::new(1, 1).unwrap();
        mem.fill(0, 16, 0x11).unwrap();
        mem.copy_within(0, 8, 8).unwrap();
        assert_eq!(mem.read_u64(8).unwrap(), 0x1111_1111_1111_1111);
        // Overlapping forward copy.
        mem.write(100, b"abcdef").unwrap();
        mem.copy_within(100, 102, 6).unwrap();
        let mut buf = [0u8; 6];
        mem.read(102, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn map_shared_appends_and_aliases() {
        let region = SharedRegion::from_bytes(b"hello region");
        let mut a = LinearMemory::new(1, 8).unwrap();
        let mut b = LinearMemory::new(2, 8).unwrap();
        let base_a = a.map_shared(&region).unwrap();
        let base_b = b.map_shared(&region).unwrap();
        assert_eq!(base_a, PAGE_SIZE);
        assert_eq!(base_b, 2 * PAGE_SIZE);
        // A write through one memory is visible in the other and the region.
        a.write(base_a, b"HELLO").unwrap();
        let mut buf = [0u8; 5];
        b.read(base_b, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        let mut rbuf = [0u8; 5];
        region.read(0, &mut rbuf).unwrap();
        assert_eq!(&rbuf, b"HELLO");
    }

    #[test]
    fn map_shared_respects_limit() {
        let region = SharedRegion::new(4 * PAGE_SIZE);
        let mut mem = LinearMemory::new(1, 3).unwrap();
        assert!(matches!(
            mem.map_shared(&region),
            Err(MemError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn map_shared_at_fills_gap_and_rejects_overlap() {
        let region = SharedRegion::new(PAGE_SIZE);
        let mut mem = LinearMemory::new(1, 10).unwrap();
        mem.map_shared_at(3, &region).unwrap();
        assert_eq!(mem.size_pages(), 4);
        assert_eq!(mem.frame_kind(1), Some(FrameKind::Private));
        assert_eq!(mem.frame_kind(3), Some(FrameKind::Shared));
        // Mapping another region over the live one is refused.
        let other = SharedRegion::new(PAGE_SIZE);
        assert!(matches!(
            mem.map_shared_at(3, &other),
            Err(MemError::MappingOverlap { page: 3 })
        ));
    }

    #[test]
    fn unmap_replaces_with_private_zero() {
        let region = SharedRegion::from_bytes(b"data");
        let mut mem = LinearMemory::new(0, 4).unwrap();
        let base = mem.map_shared(&region).unwrap();
        mem.unmap(base / PAGE_SIZE, 1).unwrap();
        assert_eq!(mem.frame_kind(0), Some(FrameKind::Private));
        assert_eq!(mem.read_u32(0).unwrap(), 0);
        // Region itself unaffected.
        let mut buf = [0u8; 4];
        region.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"data");
        assert!(mem.unmap(0, 2).is_err());
    }

    #[test]
    fn snapshot_restore_preserves_contents() {
        let mut mem = LinearMemory::new(2, 4).unwrap();
        mem.write(10, b"state").unwrap();
        let snap = mem.snapshot();
        let restored = LinearMemory::restore(&snap);
        let mut buf = [0u8; 5];
        restored.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"state");
        assert_eq!(restored.size_pages(), 2);
        assert_eq!(restored.max_pages(), 4);
        assert_eq!(restored.frame_kind(0), Some(FrameKind::Cow));
    }

    #[test]
    fn writes_after_snapshot_do_not_leak_into_snapshot() {
        let mut mem = LinearMemory::new(1, 2).unwrap();
        mem.write(0, b"before").unwrap();
        let snap = mem.snapshot();
        mem.write(0, b"AFTER!").unwrap();
        let restored = LinearMemory::restore(&snap);
        let mut buf = [0u8; 6];
        restored.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"before");
    }

    #[test]
    fn restored_memories_diverge_independently() {
        let mut mem = LinearMemory::new(1, 2).unwrap();
        mem.write(0, b"base").unwrap();
        let snap = mem.snapshot();
        let mut r1 = LinearMemory::restore(&snap);
        let mut r2 = LinearMemory::restore(&snap);
        r1.write(0, b"one!").unwrap();
        r2.write(0, b"two!").unwrap();
        let mut b1 = [0u8; 4];
        let mut b2 = [0u8; 4];
        r1.read(0, &mut b1).unwrap();
        r2.read(0, &mut b2).unwrap();
        assert_eq!(&b1, b"one!");
        assert_eq!(&b2, b"two!");
        // Snapshot still pristine.
        let r3 = LinearMemory::restore(&snap);
        let mut b3 = [0u8; 4];
        r3.read(0, &mut b3).unwrap();
        assert_eq!(&b3, b"base");
    }

    #[test]
    fn snapshot_of_shared_pages_copies_by_value() {
        let region = SharedRegion::from_bytes(b"shared");
        let mut mem = LinearMemory::new(0, 2).unwrap();
        let base = mem.map_shared(&region).unwrap();
        let snap = mem.snapshot();
        // Mutate the region after the snapshot.
        region.write(0, b"MUTATE").unwrap();
        let restored = LinearMemory::restore(&snap);
        let mut buf = [0u8; 6];
        restored.read(base, &mut buf).unwrap();
        assert_eq!(&buf, b"shared", "snapshot holds point-in-time copy");
    }

    #[test]
    fn dirty_tracking() {
        let mut mem = LinearMemory::new(3, 3).unwrap();
        assert!(mem.dirty_pages().is_empty());
        mem.write(PAGE_SIZE + 5, &[1]).unwrap();
        mem.write(2 * PAGE_SIZE, &[2]).unwrap();
        assert_eq!(mem.dirty_pages(), vec![1, 2]);
        mem.clear_dirty();
        assert!(mem.dirty_pages().is_empty());
        mem.fill(0, 1, 9).unwrap();
        assert_eq!(mem.dirty_pages(), vec![0]);
    }

    #[test]
    fn grow_after_restore_respects_original_limit() {
        let mut mem = LinearMemory::new(1, 2).unwrap();
        let snap = mem.snapshot();
        let mut restored = LinearMemory::restore(&snap);
        assert!(restored.grow(1).is_ok());
        assert!(restored.grow(1).is_err());
    }
}
