//! The 64 KiB page: the unit of mapping, sharing and snapshotting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size of one memory page in bytes (the WebAssembly page size).
pub const PAGE_SIZE: usize = 64 * 1024;

/// Number of 64-bit words in a page.
const WORDS_PER_PAGE: usize = PAGE_SIZE / 8;

/// A single 64 KiB page of memory.
///
/// Pages are stored as arrays of [`AtomicU64`] words so that a page placed in
/// a shared region can be read and written concurrently from several Faaslet
/// threads without undefined behaviour. Whole-word accesses are single relaxed
/// atomic operations; sub-word writes use a compare-and-swap loop so racing
/// writers never lose each other's neighbouring bytes.
///
/// Relaxed ordering is sufficient for the data itself: callers that need
/// cross-thread ordering (the state API's local read/write locks, §4.2)
/// acquire locks whose release/acquire edges order these relaxed accesses.
/// Lock-free concurrent writers (the HOGWILD! pattern of Listing 1) tolerate
/// word-granularity tearing by design.
pub struct Page {
    words: Box<[AtomicU64]>,
}

impl Page {
    /// Create a zero-filled page.
    pub fn zeroed() -> Page {
        let words: Vec<AtomicU64> = (0..WORDS_PER_PAGE).map(|_| AtomicU64::new(0)).collect();
        Page {
            words: words.into_boxed_slice(),
        }
    }

    /// Create a page initialised from `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than [`PAGE_SIZE`]; shorter input is
    /// zero-padded.
    pub fn from_bytes(data: &[u8]) -> Page {
        assert!(data.len() <= PAGE_SIZE, "page initialiser too long");
        let page = Page::zeroed();
        page.write(0, data);
        page
    }

    /// Read `buf.len()` bytes starting at byte `offset` within the page.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page; bounds are the caller's
    /// responsibility ([`crate::LinearMemory`] checks them and returns
    /// [`crate::MemError::OutOfBounds`] instead).
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        assert!(offset + buf.len() <= PAGE_SIZE, "page read out of range");
        let mut pos = 0;
        while pos < buf.len() {
            let byte_addr = offset + pos;
            let word_idx = byte_addr / 8;
            let in_word = byte_addr % 8;
            let avail = (8 - in_word).min(buf.len() - pos);
            let word = self.words[word_idx].load(Ordering::Relaxed);
            if in_word == 0 && avail == 8 {
                // Aligned whole-word fast path, mirroring [`Page::write`]:
                // the fixed-length copy lets bulk reads (state pushes read
                // whole replicas) compile to straight-line code.
                buf[pos..pos + 8].copy_from_slice(&word.to_le_bytes());
            } else {
                let bytes = word.to_le_bytes();
                buf[pos..pos + avail].copy_from_slice(&bytes[in_word..in_word + avail]);
            }
            pos += avail;
        }
    }

    /// Write `data` starting at byte `offset` within the page.
    ///
    /// Whole aligned words are stored with single atomic stores; partial words
    /// use a CAS loop so that concurrent writers to *other* bytes of the same
    /// word are never clobbered.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page (see [`Page::read`]).
    pub fn write(&self, offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= PAGE_SIZE, "page write out of range");
        let mut pos = 0;
        while pos < data.len() {
            let byte_addr = offset + pos;
            let word_idx = byte_addr / 8;
            let in_word = byte_addr % 8;
            let avail = (8 - in_word).min(data.len() - pos);
            if in_word == 0 && avail == 8 {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&data[pos..pos + 8]);
                self.words[word_idx].store(u64::from_le_bytes(bytes), Ordering::Relaxed);
            } else {
                let slot = &self.words[word_idx];
                let mut cur = slot.load(Ordering::Relaxed);
                loop {
                    let mut bytes = cur.to_le_bytes();
                    bytes[in_word..in_word + avail].copy_from_slice(&data[pos..pos + avail]);
                    match slot.compare_exchange_weak(
                        cur,
                        u64::from_le_bytes(bytes),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
            }
            pos += avail;
        }
    }

    /// Fill `len` bytes starting at `offset` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn fill(&self, offset: usize, len: usize, value: u8) {
        assert!(offset + len <= PAGE_SIZE, "page fill out of range");
        // Reuse the write path in chunks to keep partial-word CAS handling.
        let chunk = [value; 64];
        let mut pos = 0;
        while pos < len {
            let n = (len - pos).min(chunk.len());
            self.write(offset + pos, &chunk[..n]);
            pos += n;
        }
    }

    /// Return an owned copy of the page contents.
    pub fn to_bytes(&self) -> Box<[u8]> {
        let mut out = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.read(0, &mut out);
        out
    }

    /// Create a new page whose contents equal this page at the time of the
    /// call (the materialisation step of a copy-on-write fault).
    pub fn clone_data(&self) -> Arc<Page> {
        let copy = Page::zeroed();
        for i in 0..WORDS_PER_PAGE {
            copy.words[i].store(self.words[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        Arc::new(copy)
    }

    /// True if every byte of the page is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|w| w.load(Ordering::Relaxed) == 0)
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zeroed_page_reads_zero() {
        let p = Page::zeroed();
        let mut buf = [0xffu8; 16];
        p.read(100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert!(p.is_zero());
    }

    #[test]
    fn write_read_roundtrip_aligned() {
        let p = Page::zeroed();
        let data: Vec<u8> = (0..64).collect();
        p.write(0, &data);
        let mut buf = vec![0u8; 64];
        p.read(0, &mut buf);
        assert_eq!(buf, data);
        assert!(!p.is_zero());
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let p = Page::zeroed();
        let data: Vec<u8> = (0..23).map(|i| i as u8 + 1).collect();
        p.write(5, &data);
        let mut buf = vec![0u8; 23];
        p.read(5, &mut buf);
        assert_eq!(buf, data);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 1];
        p.read(4, &mut edge);
        assert_eq!(edge[0], 0);
        p.read(28, &mut edge);
        assert_eq!(edge[0], 0);
    }

    #[test]
    fn write_at_page_end() {
        let p = Page::zeroed();
        p.write(PAGE_SIZE - 4, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        p.read(PAGE_SIZE - 4, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_past_end_panics() {
        let p = Page::zeroed();
        p.write(PAGE_SIZE - 3, &[1, 2, 3, 4]);
    }

    #[test]
    fn fill_sets_range() {
        let p = Page::zeroed();
        p.fill(10, 200, 0xab);
        let mut buf = vec![0u8; 202];
        p.read(9, &mut buf);
        assert_eq!(buf[0], 0);
        assert!(buf[1..201].iter().all(|&b| b == 0xab));
        assert_eq!(buf[201], 0);
    }

    #[test]
    fn clone_data_is_independent() {
        let p = Page::zeroed();
        p.write(0, b"hello");
        let c = p.clone_data();
        p.write(0, b"world");
        let mut buf = [0u8; 5];
        c.read(0, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn concurrent_disjoint_writes_do_not_clobber() {
        // Two threads write adjacent bytes within the same words; CAS loops
        // must preserve both.
        let p = Arc::new(Page::zeroed());
        let a = p.clone();
        let b = p.clone();
        let ta = std::thread::spawn(move || {
            for i in 0..1024 {
                a.write(i * 2, &[0xaa]);
            }
        });
        let tb = std::thread::spawn(move || {
            for i in 0..1024 {
                b.write(i * 2 + 1, &[0xbb]);
            }
        });
        ta.join().unwrap();
        tb.join().unwrap();
        let mut buf = vec![0u8; 2048];
        p.read(0, &mut buf);
        for i in 0..1024 {
            assert_eq!(buf[i * 2], 0xaa, "byte {}", i * 2);
            assert_eq!(buf[i * 2 + 1], 0xbb, "byte {}", i * 2 + 1);
        }
    }

    #[test]
    fn to_bytes_copies_contents() {
        let p = Page::zeroed();
        p.write(1000, &[9, 8, 7]);
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), PAGE_SIZE);
        assert_eq!(&bytes[1000..1003], &[9, 8, 7]);
    }
}
