//! Cache-coherence property test: an arbitrary interleaving of
//! through-cache operations, external (other-host) writes and routing-epoch
//! bumps is checked against a model store.
//!
//! The invariant under `ReadYourWrites` is *bounded staleness with an
//! own-write floor*: every read served by the cache must equal a value the
//! key actually held at some version **no older than the caller's own last
//! acknowledged write** to that key. Serving the current tier value is
//! always legal; serving a leased snapshot is legal only while it is not
//! older than the caller's own acks. After an epoch bump the next read
//! revalidates, so a final bump-then-sweep must observe the tier exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faasm_kvs::{CacheConfig, CachedKv, KvBackend, KvError, KvStore, LockMode, SharedKv};
use proptest::prelude::*;

/// In-process backend over a bare store with a controllable routing epoch
/// (the integration-test twin of the unit harness in `cache.rs`).
struct LocalKv {
    store: KvStore,
    epoch: AtomicU64,
}

impl LocalKv {
    fn new() -> LocalKv {
        LocalKv {
            store: KvStore::new(),
            epoch: AtomicU64::new(1),
        }
    }
}

impl KvBackend for LocalKv {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
        Ok(self.store.get(key))
    }
    fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
        Ok(self.store.get_versioned(key))
    }
    fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
        self.store.set(key, value);
        Ok(())
    }
    fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
        Ok(self.store.set(key, value))
    }
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
        Ok(self.store.get_range(key, offset as usize, len as usize))
    }
    fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
        self.store.set_range(key, offset as usize, &data);
        Ok(())
    }
    fn set_range_versioned(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<u64, KvError> {
        Ok(self.store.set_range(key, offset as usize, &data))
    }
    fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
        Ok(self.multi_get_range_versioned(key, spans)?.0)
    }
    fn multi_get_range_versioned(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<(Option<Vec<Vec<u8>>>, u64), KvError> {
        Ok(self.store.multi_get_range_versioned(key, spans))
    }
    fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
        self.store.multi_set_range(key, &writes);
        Ok(())
    }
    fn multi_set_range_versioned(
        &self,
        key: &str,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> Result<u64, KvError> {
        Ok(self.store.multi_set_range(key, &writes))
    }
    fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
        Ok(self.store.append(key, &data).0 as u64)
    }
    fn del(&self, key: &str) -> Result<bool, KvError> {
        Ok(self.store.del(key).0)
    }
    fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
        Ok(self.store.del(key))
    }
    fn exists(&self, key: &str) -> Result<bool, KvError> {
        Ok(self.store.exists(key))
    }
    fn strlen(&self, key: &str) -> Result<u64, KvError> {
        Ok(self.store.strlen(key) as u64)
    }
    fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
        Ok(self.store.incr(key, delta).0)
    }
    fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        Ok(self.store.sadd(key, member).0)
    }
    fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        Ok(self.store.srem(key, member).0)
    }
    fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
        Ok(self.store.smembers(key))
    }
    fn scard(&self, key: &str) -> Result<u64, KvError> {
        Ok(self.store.scard(key) as u64)
    }
    fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
        Ok(self.store.try_lock(key, mode, 0))
    }
    fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        while !self.store.try_lock(key, mode, 0) {
            std::thread::yield_now();
        }
        Ok(())
    }
    fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        self.store.unlock(key, mode, 0);
        Ok(())
    }
    fn ping(&self) -> Result<(), KvError> {
        Ok(())
    }
    fn flush(&self) -> Result<(), KvError> {
        self.store.flush();
        Ok(())
    }
    fn routing_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
    fn version_of(&self, key: &str) -> Result<u64, KvError> {
        Ok(self.store.version_of(key))
    }
}

/// One step of the generated interleaving. `usize` selects a key from a
/// small hot set so operations genuinely collide.
#[derive(Debug, Clone)]
enum Op {
    /// Writes routed through the instance cache (this caller's own acks).
    CacheSet(usize, Vec<u8>),
    CacheSetRange(usize, u8, Vec<u8>),
    CacheAppend(usize, Vec<u8>),
    CacheIncr(usize, i8),
    CacheDel(usize),
    /// Reads routed through the cache — where staleness would surface.
    CacheGet(usize),
    CacheGetRange(usize, u8, u8),
    /// Another host mutating the tier behind the cache's back.
    ExternalSet(usize, Vec<u8>),
    ExternalDel(usize),
    /// A reshard/failover publishing a new routing epoch.
    EpochBump,
}

const KEYS: usize = 4;

fn key_name(i: usize) -> String {
    format!("coh:{}", i % KEYS)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0..KEYS;
    let bytes = || prop::collection::vec(any::<u8>(), 0..24);
    prop_oneof![
        (key.clone(), bytes()).prop_map(|(k, v)| Op::CacheSet(k, v)),
        (key.clone(), any::<u8>(), bytes()).prop_map(|(k, off, v)| Op::CacheSetRange(
            k,
            off % 32,
            v
        )),
        (key.clone(), bytes()).prop_map(|(k, v)| Op::CacheAppend(k, v)),
        (key.clone(), any::<i8>()).prop_map(|(k, d)| Op::CacheIncr(k, d)),
        key.clone().prop_map(Op::CacheDel),
        key.clone().prop_map(Op::CacheGet),
        (key.clone(), any::<u8>(), any::<u8>()).prop_map(|(k, off, len)| Op::CacheGetRange(
            k,
            off % 32,
            len % 32
        )),
        (key.clone(), bytes()).prop_map(|(k, v)| Op::ExternalSet(k, v)),
        key.prop_map(Op::ExternalDel),
        Just(Op::EpochBump),
    ]
}

/// The store's range-read semantics: missing key reads `None`, a present
/// value slices with truncation (possibly to empty).
fn model_slice(value: Option<&Vec<u8>>, offset: usize, len: usize) -> Option<Vec<u8>> {
    let v = value?;
    let start = offset.min(v.len());
    let end = (offset + len).min(v.len());
    Some(v[start..end].to_vec())
}

/// The store's range-write semantics: zero-extend to `offset`, overwrite.
fn model_apply_range(value: &mut Vec<u8>, offset: usize, data: &[u8]) {
    if value.len() < offset + data.len() {
        value.resize(offset + data.len(), 0);
    }
    value[offset..offset + data.len()].copy_from_slice(data);
}

/// One key's observed `(version, value)` states, oldest first.
type KeyHistory = Vec<(u64, Option<Vec<u8>>)>;

/// Per-key mirror of everything the tier ever held: `(version, value)`
/// states, seeded with the pre-history absent state at version 0.
struct Model {
    history: HashMap<String, KeyHistory>,
    current: HashMap<String, Vec<u8>>,
    /// The caller's own-write floor per key (last acked version).
    ack: HashMap<String, u64>,
}

impl Model {
    fn new() -> Model {
        Model {
            history: HashMap::new(),
            current: HashMap::new(),
            ack: HashMap::new(),
        }
    }

    fn record(&mut self, key: &str, version: u64, own: bool) {
        let state = self.current.get(key).cloned();
        self.history
            .entry(key.to_string())
            .or_insert_with(|| vec![(0, None)])
            .push((version, state));
        if own {
            self.ack.insert(key.to_string(), version);
        }
    }

    /// Is `served` a legal response for a whole-value read of `key`?
    fn read_legal(&self, key: &str, served: &Option<Vec<u8>>) -> bool {
        let floor = self.ack.get(key).copied().unwrap_or(0);
        match self.history.get(key) {
            None => served.is_none(),
            Some(states) => states.iter().any(|(v, val)| *v >= floor && val == served),
        }
    }

    /// Is `served` a legal response for a range read of `key`?
    fn range_legal(&self, key: &str, offset: usize, len: usize, served: &Option<Vec<u8>>) -> bool {
        let floor = self.ack.get(key).copied().unwrap_or(0);
        match self.history.get(key) {
            None => served.is_none(),
            Some(states) => states
                .iter()
                .any(|(v, val)| *v >= floor && model_slice(val.as_ref(), offset, len) == *served),
        }
    }
}

proptest! {
    /// Read-your-writes coherence: no cached read ever serves a state
    /// older than the caller's own last acknowledged write, and a final
    /// epoch bump flushes the cache to exact agreement with the tier.
    #[test]
    fn cached_reads_never_precede_own_acks(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let local = Arc::new(LocalKv::new());
        let cache = CachedKv::new(
            Arc::clone(&local) as SharedKv,
            CacheConfig {
                // Long lease: staleness windows close only via the
                // invalidation machinery under test, never by timeout.
                lease: Duration::from_secs(3600),
                ..CacheConfig::default()
            },
        );
        let mut model = Model::new();

        for op in &ops {
            match op {
                Op::CacheSet(k, v) => {
                    let key = key_name(*k);
                    let ver = cache.set_versioned(&key, v.clone()).unwrap();
                    model.current.insert(key.clone(), v.clone());
                    model.record(&key, ver, true);
                }
                Op::CacheSetRange(k, off, v) => {
                    let key = key_name(*k);
                    let ver = cache
                        .set_range_versioned(&key, u64::from(*off), v.clone())
                        .unwrap();
                    let slot = model.current.entry(key.clone()).or_default();
                    model_apply_range(slot, usize::from(*off), v);
                    model.record(&key, ver, true);
                }
                Op::CacheAppend(k, v) => {
                    let key = key_name(*k);
                    cache.append(&key, v.clone()).unwrap();
                    model.current.entry(key.clone()).or_default().extend_from_slice(v);
                    let ver = local.store.version_of(&key);
                    model.record(&key, ver, true);
                }
                Op::CacheIncr(k, d) => {
                    let key = key_name(*k);
                    let next = cache.incr(&key, i64::from(*d)).unwrap();
                    model.current.insert(key.clone(), next.to_le_bytes().to_vec());
                    let ver = local.store.version_of(&key);
                    model.record(&key, ver, true);
                }
                Op::CacheDel(k) => {
                    let key = key_name(*k);
                    let (_, ver) = cache.del_versioned(&key).unwrap();
                    model.current.remove(&key);
                    model.record(&key, ver, true);
                }
                Op::CacheGet(k) => {
                    let key = key_name(*k);
                    let served = cache.get(&key).unwrap();
                    prop_assert!(
                        model.read_legal(&key, &served),
                        "get({key}) served {served:?} older than own ack \
                         (floor {:?}, history {:?})",
                        model.ack.get(&key),
                        model.history.get(&key),
                    );
                }
                Op::CacheGetRange(k, off, len) => {
                    let key = key_name(*k);
                    let served = cache
                        .get_range(&key, u64::from(*off), u64::from(*len))
                        .unwrap();
                    prop_assert!(
                        model.range_legal(&key, usize::from(*off), usize::from(*len), &served),
                        "get_range({key}, {off}, {len}) served {served:?} \
                         older than own ack (floor {:?})",
                        model.ack.get(&key),
                    );
                }
                Op::ExternalSet(k, v) => {
                    let key = key_name(*k);
                    let ver = local.store.set(&key, v.clone());
                    model.current.insert(key.clone(), v.clone());
                    model.record(&key, ver, false);
                }
                Op::ExternalDel(k) => {
                    let key = key_name(*k);
                    let (_, ver) = local.store.del(&key);
                    model.current.remove(&key);
                    model.record(&key, ver, false);
                }
                Op::EpochBump => {
                    local.epoch.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // An epoch bump forces revalidation on the next touch of every
        // cached entry: the sweep must observe the tier exactly — zero
        // staleness survives a reshard/failover epoch.
        local.epoch.fetch_add(1, Ordering::Relaxed);
        for k in 0..KEYS {
            let key = key_name(k);
            prop_assert_eq!(
                cache.get(&key).unwrap(),
                model.current.get(&key).cloned(),
                "post-epoch sweep must match the tier for {}",
                key
            );
        }
    }
}
