//! Deterministic fault injection for the state tier.
//!
//! Tests and benches use these helpers to kill or partition a shard server
//! mid-workload and then assert the replication invariants (no acked write
//! lost, locks intact after promotion, bounded blackout). They are plain
//! library code — nothing here is test-gated — so the failover example and
//! the bench harness can drive the same faults the integration tests do.

use faasm_net::Fabric;

use crate::server::KvServer;

/// Kill a shard server abruptly: every fabric host it answers on (main and
/// replica NIC) is removed *before* the workers stop, so in-flight callers
/// observe the same `UnknownHost`/timeout errors a crashed machine would
/// produce, and nothing in the routing table is updated — detection is the
/// liveness monitor's (or the test's) job.
pub fn crash_server(fabric: &Fabric, server: KvServer) {
    for id in server.host_ids() {
        fabric.remove_host(id);
    }
    server.shutdown();
}

/// Partition a shard server from the fabric without stopping it: frames to
/// and from its hosts are silently dropped, so callers time out rather
/// than error — the indistinguishable-from-slow failure mode. Undo with
/// [`heal_server`].
pub fn partition_server(fabric: &Fabric, server: &KvServer) {
    for id in server.host_ids() {
        fabric.partition_host(id);
    }
}

/// Heal a partition created by [`partition_server`].
pub fn heal_server(fabric: &Fabric, server: &KvServer) {
    for id in server.host_ids() {
        fabric.heal_host(id);
    }
}
