//! The KVS client used by every host's runtime to reach the global tier.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use faasm_net::{HostId, NetError, Nic};

use crate::codec::{
    decode_request_traced, decode_response, encode_request_at, Request, Response, EPOCH_ANY,
};
use crate::server::apply_traced;
use crate::store::{KvStore, LockMode, ShardStats};

static NEXT_OWNER: AtomicU64 = AtomicU64::new(1);

/// Errors from client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// A network failure.
    Net(NetError),
    /// The server reported an error.
    Server(String),
    /// The server replied with an unexpected response shape.
    Protocol,
    /// The shard does not own the key under its routing table: refresh the
    /// routing table to at least `epoch` and retry on the owning shard.
    /// [`ShardedKvClient`](crate::ShardedKvClient) handles this internally;
    /// it surfaces only when the retry budget is exhausted or the client
    /// has no routing cell to refresh from.
    WrongEpoch {
        /// The epoch the routing table must reach.
        epoch: u64,
        /// That epoch's shard count.
        shard_count: u64,
    },
    /// The shard holds the key only as a backup replica: retry on the
    /// primary (after refreshing the routing table to at least `epoch`).
    /// Like [`KvError::WrongEpoch`], the sharded client absorbs this
    /// internally.
    NotPrimary {
        /// The epoch the routing table must reach.
        epoch: u64,
        /// That epoch's total slot count (live and dead).
        shard_count: u64,
    },
    /// The primary could not reach a write quorum (a backup replica is
    /// down): wait for the failover epoch `epoch + 1` and retry. The
    /// sharded client absorbs this internally.
    Unavailable {
        /// The primary's current epoch when the quorum failed.
        epoch: u64,
        /// That epoch's total slot count (live and dead).
        shard_count: u64,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Net(e) => write!(f, "kvs network error: {e}"),
            KvError::Server(m) => write!(f, "kvs server error: {m}"),
            KvError::Protocol => write!(f, "kvs protocol violation"),
            KvError::WrongEpoch { epoch, shard_count } => write!(
                f,
                "kvs routing stale: shard does not own the key (epoch {epoch}, {shard_count} shards)"
            ),
            KvError::NotPrimary { epoch, shard_count } => write!(
                f,
                "kvs replica is not the primary for the key (epoch {epoch}, {shard_count} shards)"
            ),
            KvError::Unavailable { epoch, shard_count } => write!(
                f,
                "kvs write quorum unavailable (epoch {epoch}, {shard_count} shards)"
            ),
        }
    }
}

impl std::error::Error for KvError {}

impl From<NetError> for KvError {
    fn from(e: NetError) -> KvError {
        KvError::Net(e)
    }
}

/// How a client reaches the store: over the fabric (normal case) or
/// in-process (a host that co-locates the global tier; also used heavily in
/// unit tests).
enum Transport {
    Remote { nic: Nic, server: HostId },
    Local(std::sync::Arc<KvStore>),
}

/// A synchronous KVS client.
///
/// Cloneable and thread-safe; each clone keeps the same owner token for
/// global locks, so a Faaslet can lock on one thread and unlock on another
/// only via the same client instance (as the state layer does).
pub struct KvClient {
    transport: Transport,
    owner: u64,
    /// The routing epoch stamped on every request ([`EPOCH_ANY`] for
    /// clients that do not track routing tables).
    epoch: u64,
}

impl std::fmt::Debug for KvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.transport {
            Transport::Remote { server, .. } => format!("remote({server})"),
            Transport::Local(_) => "local".to_string(),
        };
        f.debug_struct("KvClient")
            .field("transport", &kind)
            .field("owner", &self.owner)
            .finish()
    }
}

impl KvClient {
    /// A client that reaches the server at `server` over `nic`.
    pub fn connect(nic: Nic, server: HostId) -> KvClient {
        KvClient::connect_at(
            nic,
            server,
            EPOCH_ANY,
            NEXT_OWNER.fetch_add(1, Ordering::Relaxed),
        )
    }

    /// A client stamped with a routing `epoch` and an explicit lock-`owner`
    /// token — how a sharded client rebuilds its per-shard connections on
    /// an epoch change while keeping one stable owner, so locks taken
    /// before a reshard are still *its* locks after.
    pub fn connect_at(nic: Nic, server: HostId, epoch: u64, owner: u64) -> KvClient {
        KvClient {
            transport: Transport::Remote { nic, server },
            owner,
            epoch,
        }
    }

    /// A client bound directly to an in-process store.
    pub fn local(store: std::sync::Arc<KvStore>) -> KvClient {
        KvClient {
            transport: Transport::Local(store),
            owner: NEXT_OWNER.fetch_add(1, Ordering::Relaxed),
            epoch: EPOCH_ANY,
        }
    }

    /// Allocate a fresh lock-owner token (the same pool client
    /// constructors draw from).
    pub fn fresh_owner() -> u64 {
        NEXT_OWNER.fetch_add(1, Ordering::Relaxed)
    }

    /// This client's lock-owner token.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// The routing epoch stamped on this client's requests.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn exec(&self, req: &Request) -> Result<Response, KvError> {
        match &self.transport {
            Transport::Remote { nic, server } => {
                let resp = nic.call(*server, encode_request_at(req, self.epoch))?;
                decode_response(&resp).map_err(|_| KvError::Protocol)
            }
            Transport::Local(store) => {
                // Keep the codec on the path so local mode measures the same
                // serialisation costs as remote mode, minus the fabric.
                let (req, epoch, trace) =
                    decode_request_traced(&encode_request_at(req, self.epoch))
                        .map_err(|_| KvError::Protocol)?;
                Ok(apply_traced(store, None, None, req, epoch, trace))
            }
        }
    }

    /// Execute a pre-built request, mapping server-side errors. Borrowing
    /// the request lets the sharded client retry one built request across
    /// epochs without cloning megabyte write payloads per attempt.
    pub(crate) fn request(&self, req: &Request) -> Result<Response, KvError> {
        self.check(self.exec(req)?)
    }

    /// [`KvClient::request`] keeping the key's mutation-version counter
    /// from a [`Response::Versioned`] reply (0 when the server did not
    /// widen the reply).
    pub(crate) fn request_versioned(&self, req: &Request) -> Result<(Response, u64), KvError> {
        self.check_v(self.exec(req)?)
    }

    fn check(&self, resp: Response) -> Result<Response, KvError> {
        self.check_v(resp).map(|(inner, _)| inner)
    }

    /// Map server-side errors and unwrap the version envelope: the plain
    /// API stays version-oblivious while versioned callers (the
    /// function-side cache) read the exact counter the shard stamped.
    fn check_v(&self, resp: Response) -> Result<(Response, u64), KvError> {
        match resp {
            Response::Err(m) => Err(KvError::Server(m)),
            Response::WrongEpoch { epoch, shard_count } => {
                Err(KvError::WrongEpoch { epoch, shard_count })
            }
            Response::NotPrimary { epoch, shard_count } => {
                Err(KvError::NotPrimary { epoch, shard_count })
            }
            Response::Unavailable { epoch, shard_count } => {
                Err(KvError::Unavailable { epoch, shard_count })
            }
            Response::Versioned { version, inner } => Ok((*inner, version)),
            other => Ok((other, 0)),
        }
    }

    /// Get a value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
        match self.check(self.exec(&Request::Get { key: key.into() })?)? {
            Response::Value(v) => Ok(v),
            _ => Err(KvError::Protocol),
        }
    }

    /// Set a value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
        match self.check(self.exec(&Request::Set {
            key: key.into(),
            value,
        })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Read a byte range (`None` if the key is missing).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
        match self.check(self.exec(&Request::GetRange {
            key: key.into(),
            offset,
            len,
        })?)? {
            Response::Value(v) => Ok(v),
            _ => Err(KvError::Protocol),
        }
    }

    /// Write a byte range, zero-extending the value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
        match self.check(self.exec(&Request::SetRange {
            key: key.into(),
            offset,
            data,
        })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Read several byte ranges of one value in a single round-trip
    /// (`None` if the key is missing).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
        match self.check(self.exec(&Request::MultiGetRange {
            key: key.into(),
            spans: spans.to_vec(),
        })?)? {
            // A reply must answer every span: a short run list silently
            // accepted would leave chunks unfetched behind an Ok.
            Response::Spans(Some(runs)) if runs.len() != spans.len() => Err(KvError::Protocol),
            Response::Spans(runs) => Ok(runs),
            _ => Err(KvError::Protocol),
        }
    }

    /// Write several byte ranges of one value in a single round-trip,
    /// zero-extending it as needed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
        match self.check(self.exec(&Request::MultiSetRange {
            key: key.into(),
            writes,
        })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Append bytes; returns the new length.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
        match self.check(self.exec(&Request::Append {
            key: key.into(),
            data,
        })?)? {
            Response::Len(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    /// Delete a key; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn del(&self, key: &str) -> Result<bool, KvError> {
        match self.check(self.exec(&Request::Del { key: key.into() })?)? {
            Response::Bool(b) => Ok(b),
            _ => Err(KvError::Protocol),
        }
    }

    /// Get several whole values in one round-trip, in request order (the
    /// snapshot plane's chunk fetch).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn multi_get(&self, keys: &[String]) -> Result<Vec<Option<Vec<u8>>>, KvError> {
        match self.check(self.exec(&Request::MultiGet {
            keys: keys.to_vec(),
        })?)? {
            Response::MultiValues(vs) if vs.len() == keys.len() => Ok(vs),
            _ => Err(KvError::Protocol),
        }
    }

    /// Whether the key exists.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn exists(&self, key: &str) -> Result<bool, KvError> {
        match self.check(self.exec(&Request::Exists { key: key.into() })?)? {
            Response::Bool(b) => Ok(b),
            _ => Err(KvError::Protocol),
        }
    }

    /// Value length in bytes (0 if missing).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn strlen(&self, key: &str) -> Result<u64, KvError> {
        match self.check(self.exec(&Request::StrLen { key: key.into() })?)? {
            Response::Len(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    /// Atomically add to a counter; returns the new value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
        match self.check(self.exec(&Request::Incr {
            key: key.into(),
            delta,
        })?)? {
            Response::Int(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    /// Add a set member; returns true if newly added.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        match self.check(self.exec(&Request::SAdd {
            key: key.into(),
            member: member.to_vec(),
        })?)? {
            Response::Bool(b) => Ok(b),
            _ => Err(KvError::Protocol),
        }
    }

    /// Remove a set member; returns true if it was present.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        match self.check(self.exec(&Request::SRem {
            key: key.into(),
            member: member.to_vec(),
        })?)? {
            Response::Bool(b) => Ok(b),
            _ => Err(KvError::Protocol),
        }
    }

    /// List set members.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
        match self.check(self.exec(&Request::SMembers { key: key.into() })?)? {
            Response::Values(v) => Ok(v),
            _ => Err(KvError::Protocol),
        }
    }

    /// Set cardinality.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn scard(&self, key: &str) -> Result<u64, KvError> {
        match self.check(self.exec(&Request::SCard { key: key.into() })?)? {
            Response::Len(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    /// Try to acquire a global lock once.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
        match self.check(self.exec(&Request::TryLock {
            key: key.into(),
            mode,
            owner: self.owner,
        })?)? {
            Response::Bool(b) => Ok(b),
            _ => Err(KvError::Protocol),
        }
    }

    /// Acquire a global lock, retrying with backoff (the blocking
    /// `lock_state_global_*` of Tab. 2).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        let mut backoff = Duration::from_micros(50);
        loop {
            if self.try_lock(key, mode)? {
                return Ok(());
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(5));
        }
    }

    /// Release a global lock.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        match self.check(self.exec(&Request::Unlock {
            key: key.into(),
            mode,
            owner: self.owner,
        })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn ping(&self) -> Result<(), KvError> {
        match self.check(self.exec(&Request::Ping)?)? {
            Response::Pong => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Clear the store.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn flush(&self) -> Result<(), KvError> {
        match self.check(self.exec(&Request::Flush)?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// The shard's load report (key count, value bytes, per-op counters).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn stats(&self) -> Result<ShardStats, KvError> {
        match self.check(self.exec(&Request::Stats)?)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(KvError::Protocol),
        }
    }

    /// Begin a migration on this shard toward `(epoch, shard_count)`:
    /// freezes the moving keys and returns their exported state (the
    /// coordinator forwards them to the receiving shard via
    /// [`KvClient::handoff`]).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn migrate(
        &self,
        epoch: u64,
        shard_count: u64,
    ) -> Result<Vec<crate::store::KeyMigration>, KvError> {
        match self.check(self.exec(&Request::Migrate { epoch, shard_count })?)? {
            Response::Handoff(entries) => Ok(entries),
            _ => Err(KvError::Protocol),
        }
    }

    /// Install migrated key state on this shard.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn handoff(&self, entries: Vec<crate::store::KeyMigration>) -> Result<(), KvError> {
        match self.check(self.exec(&Request::Handoff { entries })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Commit a routing epoch on this shard (donors purge moved keys).
    /// `dead` lists the slot indices tombstoned at that epoch and `hosts`
    /// the replica-traffic host ids per slot (both empty for a
    /// replication-factor-1 tier, reproducing the legacy wire shape).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn epoch_commit(
        &self,
        epoch: u64,
        shard_count: u64,
        dead: &[u32],
        hosts: &[u32],
    ) -> Result<(), KvError> {
        match self.check(self.exec(&Request::EpochCommit {
            epoch,
            shard_count,
            dead: dead.to_vec(),
            hosts: hosts.to_vec(),
        })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Ship replicated key state to a backup replica (primary-side call).
    /// Returns the number of entries the backup applied.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn replicate(&self, entries: Vec<crate::store::KeyMigration>) -> Result<u64, KvError> {
        match self.check(self.exec(&Request::Replicate { entries })?)? {
            Response::ReplAck { applied } => Ok(applied),
            _ => Err(KvError::Protocol),
        }
    }

    /// Install one bounded frame of a chunked handoff (`seq` starts at 0
    /// per transfer `xfer`; `last` marks the final frame).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn handoff_frame(
        &self,
        xfer: u64,
        seq: u32,
        last: bool,
        entries: Vec<crate::store::KeyMigration>,
    ) -> Result<(), KvError> {
        match self.check(self.exec(&Request::HandoffFrame {
            xfer,
            seq,
            last,
            entries,
        })?)? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    /// Ask a shard to re-ship replicas for keys whose replica set gained
    /// members relative to the routing table with `prev_dead` tombstones.
    /// Returns how many keys were re-shipped.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn rebuild(&self, prev_dead: &[u32]) -> Result<u64, KvError> {
        match self.check(self.exec(&Request::Rebuild {
            prev_dead: prev_dead.to_vec(),
        })?)? {
            Response::Len(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    /// The key's mutation-version counter (0 if never mutated) — the cheap
    /// revalidation probe: no value bytes cross the wire.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn version_of(&self, key: &str) -> Result<u64, KvError> {
        match self.check(self.exec(&Request::VersionOf { key: key.into() })?)? {
            Response::Len(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    /// [`KvClient::get`] with the version the bytes were observed at.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
        match self.check_v(self.exec(&Request::Get { key: key.into() })?)? {
            (Response::Value(v), version) => Ok((v, version)),
            _ => Err(KvError::Protocol),
        }
    }

    /// [`KvClient::set`] returning the version the write installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
        match self.check_v(self.exec(&Request::Set {
            key: key.into(),
            value,
        })?)? {
            (Response::Ok, version) => Ok(version),
            _ => Err(KvError::Protocol),
        }
    }

    /// [`KvClient::set_range`] returning the version the write installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn set_range_versioned(
        &self,
        key: &str,
        offset: u64,
        data: Vec<u8>,
    ) -> Result<u64, KvError> {
        match self.check_v(self.exec(&Request::SetRange {
            key: key.into(),
            offset,
            data,
        })?)? {
            (Response::Ok, version) => Ok(version),
            _ => Err(KvError::Protocol),
        }
    }

    /// [`KvClient::del`] returning the version the deletion installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
        match self.check_v(self.exec(&Request::Del { key: key.into() })?)? {
            (Response::Bool(b), version) => Ok((b, version)),
            _ => Err(KvError::Protocol),
        }
    }

    /// [`KvClient::multi_get_range`] with the version the runs were
    /// observed at (one version for the whole atomic read).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn multi_get_range_versioned(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> crate::backend::VersionedRunsResult {
        match self.check_v(self.exec(&Request::MultiGetRange {
            key: key.into(),
            spans: spans.to_vec(),
        })?)? {
            (Response::Spans(Some(runs)), _) if runs.len() != spans.len() => Err(KvError::Protocol),
            (Response::Spans(runs), version) => Ok((runs, version)),
            _ => Err(KvError::Protocol),
        }
    }

    /// [`KvClient::multi_set_range`] returning the version the batch
    /// installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn multi_set_range_versioned(
        &self,
        key: &str,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> Result<u64, KvError> {
        match self.check_v(self.exec(&Request::MultiSetRange {
            key: key.into(),
            writes,
        })?)? {
            (Response::Ok, version) => Ok(version),
            _ => Err(KvError::Protocol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::KvServer;
    use faasm_net::Fabric;
    use std::sync::Arc;

    fn remote_pair() -> (KvClient, KvServer) {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client_nic = fabric.add_host();
        let server = KvServer::start(server_nic, 2);
        let client = KvClient::connect(client_nic, server.host_id());
        (client, server)
    }

    #[test]
    fn full_api_over_network() {
        let (c, server) = remote_pair();
        c.ping().unwrap();
        assert_eq!(c.get("k").unwrap(), None);
        c.set("k", b"hello".to_vec()).unwrap();
        assert_eq!(c.get("k").unwrap(), Some(b"hello".to_vec()));
        assert_eq!(c.strlen("k").unwrap(), 5);
        assert_eq!(c.get_range("k", 1, 3).unwrap(), Some(b"ell".to_vec()));
        c.set_range("k", 0, b"J".to_vec()).unwrap();
        assert_eq!(c.get("k").unwrap(), Some(b"Jello".to_vec()));
        assert_eq!(c.append("k", b"!".to_vec()).unwrap(), 6);
        assert!(c.exists("k").unwrap());
        assert_eq!(c.incr("n", 7).unwrap(), 7);
        assert!(c.sadd("s", b"a").unwrap());
        assert_eq!(c.scard("s").unwrap(), 1);
        assert_eq!(c.smembers("s").unwrap(), vec![b"a".to_vec()]);
        assert!(c.srem("s", b"a").unwrap());
        assert!(c.del("k").unwrap());
        c.flush().unwrap();
        server.shutdown();
    }

    #[test]
    fn local_transport_matches_remote_semantics() {
        let store = Arc::new(KvStore::new());
        let c = KvClient::local(store);
        c.set("k", b"v".to_vec()).unwrap();
        assert_eq!(c.get("k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(c.incr("n", 1).unwrap(), 1);
    }

    #[test]
    fn global_locks_exclude_across_clients() {
        let store = Arc::new(KvStore::new());
        let c1 = KvClient::local(Arc::clone(&store));
        let c2 = KvClient::local(store);
        c1.lock("k", LockMode::Write).unwrap();
        assert!(!c2.try_lock("k", LockMode::Write).unwrap());
        c1.unlock("k", LockMode::Write).unwrap();
        assert!(c2.try_lock("k", LockMode::Write).unwrap());
        c2.unlock("k", LockMode::Write).unwrap();
    }

    #[test]
    fn blocking_lock_waits_for_release() {
        let store = Arc::new(KvStore::new());
        let c1 = Arc::new(KvClient::local(Arc::clone(&store)));
        let c2 = KvClient::local(store);
        c2.lock("k", LockMode::Write).unwrap();
        let c1b = Arc::clone(&c1);
        let t = std::thread::spawn(move || {
            c1b.lock("k", LockMode::Write).unwrap();
            c1b.unlock("k", LockMode::Write).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        c2.unlock("k", LockMode::Write).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn network_bytes_are_accounted() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client_nic = fabric.add_host();
        let server = KvServer::start(server_nic, 1);
        let client = KvClient::connect(client_nic, server.host_id());
        let before = fabric.stats().snapshot();
        client.set("key", vec![0u8; 1000]).unwrap();
        let delta = fabric.stats().snapshot().delta(&before);
        assert!(
            delta.bytes_sent >= 1000,
            "payload bytes must be charged: {delta:?}"
        );
        server.shutdown();
    }

    #[test]
    fn server_gone_yields_net_error() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client_nic = fabric.add_host();
        let sid = server_nic.id();
        fabric.remove_host(sid);
        let client = KvClient::connect(client_nic, sid);
        assert!(matches!(client.ping(), Err(KvError::Net(_))));
    }
}
