//! The KVS state machine: sharded maps, range operations, counters, sets and
//! lease-based global read/write locks.
//!
//! This is the authoritative global tier of the two-tier state architecture
//! (§4.2) — the role Redis plays in the paper's deployment. It is a plain
//! data structure with no networking, so every behaviour is unit-testable;
//! `server.rs` exposes it over the fabric.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

const SHARDS: usize = 16;

/// Lock modes for global state locks (Tab. 2:
/// `lock_state_global_read/write`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared read lock.
    Read,
    /// Exclusive write lock.
    Write,
}

#[derive(Debug)]
enum LockState {
    Readers(HashMap<u64, Instant>),
    Writer { owner: u64, expires: Instant },
}

#[derive(Debug, Default)]
struct Shard {
    values: HashMap<String, Vec<u8>>,
    sets: HashMap<String, HashSet<Vec<u8>>>,
    locks: HashMap<String, LockState>,
}

/// A sharded in-memory key-value store with global locks.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<Mutex<Shard>>,
    /// Lock lease duration; expired locks are reaped lazily so a crashed
    /// client cannot deadlock the cluster.
    lease: Duration,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

impl KvStore {
    /// A store with the default 30 s lock lease.
    pub fn new() -> KvStore {
        KvStore::with_lease(Duration::from_secs(30))
    }

    /// A store with an explicit lock lease (tests use short leases).
    pub fn with_lease(lease: Duration) -> KvStore {
        KvStore {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            lease,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// Get a value.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.shard(key).lock().values.get(key).cloned()
    }

    /// Set a value, replacing any previous one.
    pub fn set(&self, key: &str, value: Vec<u8>) {
        self.shard(key).lock().values.insert(key.to_string(), value);
    }

    /// Read `len` bytes at `offset`; the result is truncated (possibly
    /// empty) if the value is shorter. Missing keys yield `None`.
    pub fn get_range(&self, key: &str, offset: usize, len: usize) -> Option<Vec<u8>> {
        let shard = self.shard(key).lock();
        let v = shard.values.get(key)?;
        if offset >= v.len() {
            return Some(Vec::new());
        }
        // Saturate: a wire-supplied `len` near usize::MAX must truncate,
        // not wrap the slice bounds.
        let end = offset.saturating_add(len).min(v.len());
        Some(v[offset..end].to_vec())
    }

    /// Write `data` at `offset`, zero-extending the value as needed
    /// (Redis `SETRANGE` semantics; the paper's `push_state_offset`).
    pub fn set_range(&self, key: &str, offset: usize, data: &[u8]) {
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        if v.len() < offset + data.len() {
            v.resize(offset + data.len(), 0);
        }
        v[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Read several ranges of one value under a single shard-lock
    /// acquisition (the batched chunk pull). `None` if the key is missing;
    /// otherwise one byte run per span, truncated like
    /// [`KvStore::get_range`] where the value is shorter.
    pub fn multi_get_range(&self, key: &str, spans: &[(u64, u64)]) -> Option<Vec<Vec<u8>>> {
        let shard = self.shard(key).lock();
        let v = shard.values.get(key)?;
        Some(
            spans
                .iter()
                .map(|&(offset, len)| {
                    let offset = offset as usize;
                    if offset >= v.len() {
                        return Vec::new();
                    }
                    let end = offset.saturating_add(len as usize).min(v.len());
                    v[offset..end].to_vec()
                })
                .collect(),
        )
    }

    /// Apply several range writes to one value under a single shard-lock
    /// acquisition (the batched chunk push), zero-extending as needed.
    /// Writes land in order, so overlapping ranges resolve last-writer-wins.
    pub fn multi_set_range(&self, key: &str, writes: &[(u64, Vec<u8>)]) {
        if writes.is_empty() {
            return;
        }
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        for (offset, data) in writes {
            let offset = *offset as usize;
            if v.len() < offset + data.len() {
                v.resize(offset + data.len(), 0);
            }
            v[offset..offset + data.len()].copy_from_slice(data);
        }
    }

    /// Append data; returns the new length (the paper's `append_state`).
    pub fn append(&self, key: &str, data: &[u8]) -> usize {
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        v.extend_from_slice(data);
        v.len()
    }

    /// Delete a value; returns whether it existed.
    pub fn del(&self, key: &str) -> bool {
        self.shard(key).lock().values.remove(key).is_some()
    }

    /// Whether the key holds a value.
    pub fn exists(&self, key: &str) -> bool {
        self.shard(key).lock().values.contains_key(key)
    }

    /// Length of the value in bytes (0 if missing).
    pub fn strlen(&self, key: &str) -> usize {
        self.shard(key).lock().values.get(key).map_or(0, Vec::len)
    }

    /// Add `delta` to an 8-byte little-endian counter, creating it at zero;
    /// returns the new value. Non-8-byte existing values are treated as
    /// corrupt and reset (documented divergence from Redis, which errors).
    pub fn incr(&self, key: &str, delta: i64) -> i64 {
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        let cur = if v.len() == 8 {
            i64::from_le_bytes(v[..8].try_into().expect("length checked"))
        } else {
            0
        };
        let next = cur.wrapping_add(delta);
        *v = next.to_le_bytes().to_vec();
        next
    }

    /// Add a member to a set; returns true if newly added (warm-set
    /// registration for the scheduler, §5.1).
    pub fn sadd(&self, key: &str, member: &[u8]) -> bool {
        self.shard(key)
            .lock()
            .sets
            .entry(key.to_string())
            .or_default()
            .insert(member.to_vec())
    }

    /// Remove a member from a set; returns true if it was present.
    pub fn srem(&self, key: &str, member: &[u8]) -> bool {
        self.shard(key)
            .lock()
            .sets
            .get_mut(key)
            .is_some_and(|s| s.remove(member))
    }

    /// All members of a set (sorted for determinism).
    pub fn smembers(&self, key: &str) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = self
            .shard(key)
            .lock()
            .sets
            .get(key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Set cardinality.
    pub fn scard(&self, key: &str) -> usize {
        self.shard(key).lock().sets.get(key).map_or(0, HashSet::len)
    }

    /// Try to acquire a global lock; `owner` is a caller-chosen token used
    /// to release and to make re-acquisition idempotent.
    pub fn try_lock(&self, key: &str, mode: LockMode, owner: u64) -> bool {
        let now = Instant::now();
        let expires = now + self.lease;
        let mut shard = self.shard(key).lock();
        let state = shard.locks.get_mut(key);
        match (mode, state) {
            (LockMode::Read, None) => {
                let mut readers = HashMap::new();
                readers.insert(owner, expires);
                shard
                    .locks
                    .insert(key.to_string(), LockState::Readers(readers));
                true
            }
            (LockMode::Read, Some(LockState::Readers(readers))) => {
                readers.retain(|_, exp| *exp > now);
                readers.insert(owner, expires);
                true
            }
            (
                LockMode::Read,
                Some(LockState::Writer {
                    owner: w,
                    expires: e,
                }),
            ) => {
                if *e <= now || *w == owner {
                    // Expired writer (or self re-entering as reader via
                    // downgrade): replace.
                    let mut readers = HashMap::new();
                    readers.insert(owner, expires);
                    shard
                        .locks
                        .insert(key.to_string(), LockState::Readers(readers));
                    true
                } else {
                    false
                }
            }
            (LockMode::Write, None) => {
                shard
                    .locks
                    .insert(key.to_string(), LockState::Writer { owner, expires });
                true
            }
            (LockMode::Write, Some(LockState::Readers(readers))) => {
                readers.retain(|_, exp| *exp > now);
                let only_self = readers.len() == 1 && readers.contains_key(&owner);
                if readers.is_empty() || only_self {
                    shard
                        .locks
                        .insert(key.to_string(), LockState::Writer { owner, expires });
                    true
                } else {
                    false
                }
            }
            (
                LockMode::Write,
                Some(LockState::Writer {
                    owner: w,
                    expires: e,
                }),
            ) => {
                if *e <= now || *w == owner {
                    shard
                        .locks
                        .insert(key.to_string(), LockState::Writer { owner, expires });
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Release a lock held by `owner`; unknown owners are ignored (the lease
    /// may have already expired and been taken over).
    pub fn unlock(&self, key: &str, mode: LockMode, owner: u64) {
        let mut shard = self.shard(key).lock();
        let remove = match (mode, shard.locks.get_mut(key)) {
            (LockMode::Read, Some(LockState::Readers(readers))) => {
                readers.remove(&owner);
                readers.is_empty()
            }
            (LockMode::Write, Some(LockState::Writer { owner: w, .. })) => *w == owner,
            _ => false,
        };
        if remove {
            shard.locks.remove(key);
        }
    }

    /// Remove everything (tests and failure-injection).
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.values.clear();
            s.sets.clear();
            s.locks.clear();
        }
    }

    /// Total bytes held in values (global-tier memory accounting).
    pub fn total_value_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Number of value keys.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().values.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_del_roundtrip() {
        let s = KvStore::new();
        assert_eq!(s.get("k"), None);
        s.set("k", b"value".to_vec());
        assert_eq!(s.get("k"), Some(b"value".to_vec()));
        assert!(s.exists("k"));
        assert_eq!(s.strlen("k"), 5);
        assert!(s.del("k"));
        assert!(!s.del("k"));
        assert!(!s.exists("k"));
    }

    #[test]
    fn range_ops() {
        let s = KvStore::new();
        s.set_range("k", 4, b"abcd");
        assert_eq!(s.strlen("k"), 8);
        assert_eq!(s.get("k"), Some(b"\0\0\0\0abcd".to_vec()));
        s.set_range("k", 0, b"xy");
        assert_eq!(s.get_range("k", 0, 3), Some(b"xy\0".to_vec()));
        assert_eq!(s.get_range("k", 6, 100), Some(b"cd".to_vec()));
        assert_eq!(s.get_range("k", 100, 4), Some(Vec::new()));
        assert_eq!(s.get_range("missing", 0, 4), None);
    }

    #[test]
    fn multi_range_ops() {
        let s = KvStore::new();
        assert_eq!(s.multi_get_range("missing", &[(0, 4)]), None);
        s.multi_set_range("k", &[(0, b"abcd".to_vec()), (8, b"ef".to_vec())]);
        assert_eq!(s.get("k"), Some(b"abcd\0\0\0\0ef".to_vec()));
        assert_eq!(
            s.multi_get_range("k", &[(0, 2), (8, 100), (100, 4), (9, 0)]),
            Some(vec![b"ab".to_vec(), b"ef".to_vec(), Vec::new(), Vec::new()])
        );
        // Overlaps resolve in order (last writer wins).
        s.multi_set_range("k", &[(0, b"XX".to_vec()), (1, b"Y".to_vec())]);
        assert_eq!(s.get_range("k", 0, 3), Some(b"XYc".to_vec()));
        // An empty batch creates nothing.
        s.multi_set_range("fresh", &[]);
        assert!(!s.exists("fresh"));
    }

    #[test]
    fn append_returns_length() {
        let s = KvStore::new();
        assert_eq!(s.append("log", b"aa"), 2);
        assert_eq!(s.append("log", b"bbb"), 5);
        assert_eq!(s.get("log"), Some(b"aabbb".to_vec()));
    }

    #[test]
    fn counters() {
        let s = KvStore::new();
        assert_eq!(s.incr("c", 5), 5);
        assert_eq!(s.incr("c", -2), 3);
        // Corrupt (non-8-byte) value resets.
        s.set("c", b"xx".to_vec());
        assert_eq!(s.incr("c", 1), 1);
    }

    #[test]
    fn sets() {
        let s = KvStore::new();
        assert!(s.sadd("warm:f", b"host1"));
        assert!(!s.sadd("warm:f", b"host1"));
        assert!(s.sadd("warm:f", b"host0"));
        assert_eq!(s.scard("warm:f"), 2);
        assert_eq!(
            s.smembers("warm:f"),
            vec![b"host0".to_vec(), b"host1".to_vec()]
        );
        assert!(s.srem("warm:f", b"host1"));
        assert!(!s.srem("warm:f", b"host1"));
        assert_eq!(s.scard("warm:f"), 1);
        assert_eq!(s.smembers("missing"), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn read_locks_are_shared() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Read, 1));
        assert!(s.try_lock("k", LockMode::Read, 2));
        // Writer blocked while readers hold.
        assert!(!s.try_lock("k", LockMode::Write, 3));
        s.unlock("k", LockMode::Read, 1);
        assert!(!s.try_lock("k", LockMode::Write, 3));
        s.unlock("k", LockMode::Read, 2);
        assert!(s.try_lock("k", LockMode::Write, 3));
    }

    #[test]
    fn write_lock_is_exclusive() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Write, 1));
        assert!(!s.try_lock("k", LockMode::Write, 2));
        assert!(!s.try_lock("k", LockMode::Read, 2));
        // Re-entrant for the same owner.
        assert!(s.try_lock("k", LockMode::Write, 1));
        s.unlock("k", LockMode::Write, 1);
        assert!(s.try_lock("k", LockMode::Read, 2));
    }

    #[test]
    fn reader_upgrades_to_writer_when_alone() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Read, 1));
        assert!(s.try_lock("k", LockMode::Write, 1), "sole reader upgrades");
        assert!(!s.try_lock("k", LockMode::Read, 2));
        s.unlock("k", LockMode::Write, 1);
    }

    #[test]
    fn unlock_by_non_owner_is_ignored() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Write, 1));
        s.unlock("k", LockMode::Write, 99);
        assert!(!s.try_lock("k", LockMode::Write, 2), "still held by 1");
    }

    #[test]
    fn expired_leases_are_reaped() {
        let s = KvStore::with_lease(Duration::from_millis(10));
        assert!(s.try_lock("k", LockMode::Write, 1));
        assert!(!s.try_lock("k", LockMode::Write, 2));
        std::thread::sleep(Duration::from_millis(15));
        assert!(s.try_lock("k", LockMode::Write, 2), "lease expired");
    }

    #[test]
    fn flush_and_accounting() {
        let s = KvStore::new();
        s.set("a", vec![0; 100]);
        s.set("b", vec![0; 50]);
        s.sadd("set", b"m");
        assert_eq!(s.total_value_bytes(), 150);
        assert_eq!(s.key_count(), 2);
        s.flush();
        assert_eq!(s.total_value_bytes(), 0);
        assert_eq!(s.key_count(), 0);
        assert_eq!(s.scard("set"), 0);
    }

    #[test]
    fn concurrent_incr_is_atomic() {
        let s = std::sync::Arc::new(KvStore::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.incr("n", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.incr("n", 0), 8000);
    }
}
