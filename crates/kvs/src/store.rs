//! The KVS state machine: sharded maps, range operations, counters, sets and
//! lease-based global read/write locks.
//!
//! This is the authoritative global tier of the two-tier state architecture
//! (§4.2) — the role Redis plays in the paper's deployment. It is a plain
//! data structure with no networking, so every behaviour is unit-testable;
//! `server.rs` exposes it over the fabric.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

const SHARDS: usize = 16;

/// Lock modes for global state locks (Tab. 2:
/// `lock_state_global_read/write`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared read lock.
    Read,
    /// Exclusive write lock.
    Write,
}

#[derive(Debug)]
enum LockState {
    Readers(HashMap<u64, Instant>),
    Writer { owner: u64, expires: Instant },
}

#[derive(Debug, Default)]
struct Shard {
    values: HashMap<String, Vec<u8>>,
    sets: HashMap<String, HashSet<Vec<u8>>>,
    locks: HashMap<String, LockState>,
    /// Per-key mutation counters: bumped once per mutating op, under the
    /// same stripe lock as the mutation itself, so the version a caller is
    /// acked with names exactly the state its own write produced. Never
    /// removed on `del` — a deleted-then-recreated key keeps counting up,
    /// which is what makes the counter usable for cache revalidation.
    versions: HashMap<String, u64>,
}

impl Shard {
    /// Bump and return `key`'s version (first mutation yields 1).
    fn bump(&mut self, key: &str) -> u64 {
        let v = self.versions.entry(key.to_string()).or_insert(0);
        *v += 1;
        *v
    }

    /// `key`'s current version (0 if never mutated).
    fn version(&self, key: &str) -> u64 {
        self.versions.get(key).copied().unwrap_or(0)
    }
}

/// Exported lock state for one migrating key: owners and remaining lease.
///
/// Leases are exported as *remaining* milliseconds (not absolute instants)
/// so the receiving shard re-anchors them to its own clock — the owner's
/// exclusivity window never shrinks or grows across the handoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockMigration {
    /// Shared readers: `(owner, remaining_ms)` per holder.
    Readers(Vec<(u64, u64)>),
    /// Exclusive writer.
    Writer {
        /// Owner token used at acquisition.
        owner: u64,
        /// Remaining lease milliseconds.
        remaining_ms: u64,
    },
}

/// One key's complete state as it moves between shards during resharding:
/// value bytes, set members, lock state (with owners preserved) and the
/// per-key version counter (merged max-wise on import, so versions never
/// regress across migration, replication or failover promotion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyMigration {
    /// The state key.
    pub key: String,
    /// Value bytes, if the key holds a value.
    pub value: Option<Vec<u8>>,
    /// Set members, if the key holds a set (empty = no set).
    pub set: Vec<Vec<u8>>,
    /// Live (unexpired) lock state, if any.
    pub lock: Option<LockMigration>,
    /// The key's mutation-version counter at export time.
    pub version: u64,
}

/// A per-shard load report: size plus coarse per-op counters
/// (the migration planner's and the tier autoscaler's skew signal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's routing epoch (0 for unrouted/standalone servers).
    pub epoch: u64,
    /// Distinct keys holding a value.
    pub keys: u64,
    /// Total value bytes held.
    pub value_bytes: u64,
    /// Read-side ops served (gets, range/batched reads, membership probes).
    pub reads: u64,
    /// Write-side ops served (sets, range/batched writes, counters, sets).
    pub writes: u64,
    /// Lock ops served (try_lock / unlock).
    pub lock_ops: u64,
    /// Keyed requests rejected because this shard does not own the key —
    /// the retry-pressure signal during migrations.
    pub wrong_epoch_redirects: u64,
    /// Total ns keyed requests spent blocked on the migration freeze gate.
    pub freeze_wait_ns: u64,
    /// Batched requests served (`MultiGetRange` / `MultiSetRange` calls).
    pub batched_ops: u64,
    /// Items carried by those batched requests (spans read + ranges
    /// written); `batched_items / batched_ops` is the realised batch width.
    pub batched_items: u64,
    /// The tier's replica-set size R (1 for unreplicated shards).
    pub replication: u64,
    /// Primary → backup `Replicate` forwards sent by this shard.
    pub repl_forwards: u64,
    /// Total ns primaries spent waiting on replica quorums (replication
    /// lag; `repl_lag_ns / repl_forwards` is the mean per-forward wait).
    pub repl_lag_ns: u64,
    /// Failover promotions observed (epoch installs that tombstoned a
    /// live slot, promoting this shard's backup copies to primary).
    pub promotions: u64,
    /// Keys this shard currently serves as primary.
    pub primary_keys: u64,
    /// Keys this shard currently holds as a backup replica.
    pub backup_keys: u64,
}

/// A sharded in-memory key-value store with global locks.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<Mutex<Shard>>,
    /// Lock lease duration; expired locks are reaped lazily so a crashed
    /// client cannot deadlock the cluster.
    lease: Duration,
    reads: AtomicU64,
    writes: AtomicU64,
    lock_ops: AtomicU64,
    batched_ops: AtomicU64,
    batched_items: AtomicU64,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

impl KvStore {
    /// A store with the default 30 s lock lease.
    pub fn new() -> KvStore {
        KvStore::with_lease(Duration::from_secs(30))
    }

    /// A store with an explicit lock lease (tests use short leases).
    pub fn with_lease(lease: Duration) -> KvStore {
        KvStore {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            lease,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            lock_ops: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            batched_items: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    fn count_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn count_batch(&self, items: usize) {
        self.batched_ops.fetch_add(1, Ordering::Relaxed);
        self.batched_items
            .fetch_add(items as u64, Ordering::Relaxed);
    }

    /// Get a value.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.get_versioned(key).0
    }

    /// Get several whole values in one pass (the snapshot plane's chunk
    /// fetch), in request order. Not atomic across keys — chunk values are
    /// immutable, so per-key atomicity is all the fetch path needs.
    pub fn multi_get(&self, keys: &[String]) -> Vec<Option<Vec<u8>>> {
        self.count_batch(keys.len());
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Get a value together with the key's version, atomically — the pair a
    /// cache may stamp a snapshot with (reading them in two lock
    /// acquisitions could pair old bytes with a newer version).
    pub fn get_versioned(&self, key: &str) -> (Option<Vec<u8>>, u64) {
        self.count_read();
        let shard = self.shard(key).lock();
        (shard.values.get(key).cloned(), shard.version(key))
    }

    /// `key`'s mutation-version counter (0 if never mutated). Monotone for
    /// the life of the tier: `del` does not reset it, and migration/
    /// replication imports merge max-wise.
    pub fn version_of(&self, key: &str) -> u64 {
        self.shard(key).lock().version(key)
    }

    /// Set a value, replacing any previous one; returns the new version.
    pub fn set(&self, key: &str, value: Vec<u8>) -> u64 {
        self.count_write();
        let mut shard = self.shard(key).lock();
        shard.values.insert(key.to_string(), value);
        shard.bump(key)
    }

    /// Slice `v[offset..offset+len]` with truncation (possibly empty) where
    /// the value is shorter — the shared range-read semantics.
    fn slice_range(v: &[u8], offset: u64, len: u64) -> Vec<u8> {
        let offset = offset as usize;
        if offset >= v.len() {
            return Vec::new();
        }
        // Saturate: a wire-supplied `len` near usize::MAX must truncate,
        // not wrap the slice bounds.
        let end = offset.saturating_add(len as usize).min(v.len());
        v[offset..end].to_vec()
    }

    /// Read `len` bytes at `offset`; the result is truncated (possibly
    /// empty) if the value is shorter. Missing keys yield `None`.
    pub fn get_range(&self, key: &str, offset: usize, len: usize) -> Option<Vec<u8>> {
        self.get_range_versioned(key, offset, len).0
    }

    /// [`KvStore::get_range`] plus the key's version, read atomically.
    pub fn get_range_versioned(
        &self,
        key: &str,
        offset: usize,
        len: usize,
    ) -> (Option<Vec<u8>>, u64) {
        self.count_read();
        let shard = self.shard(key).lock();
        (
            shard
                .values
                .get(key)
                .map(|v| KvStore::slice_range(v, offset as u64, len as u64)),
            shard.version(key),
        )
    }

    /// Write `data` at `offset`, zero-extending the value as needed
    /// (Redis `SETRANGE` semantics; the paper's `push_state_offset`).
    /// Returns the new version.
    pub fn set_range(&self, key: &str, offset: usize, data: &[u8]) -> u64 {
        self.count_write();
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        if v.len() < offset + data.len() {
            v.resize(offset + data.len(), 0);
        }
        v[offset..offset + data.len()].copy_from_slice(data);
        shard.bump(key)
    }

    /// Read several ranges of one value under a single shard-lock
    /// acquisition (the batched chunk pull). `None` if the key is missing;
    /// otherwise one byte run per span, truncated like
    /// [`KvStore::get_range`] where the value is shorter.
    pub fn multi_get_range(&self, key: &str, spans: &[(u64, u64)]) -> Option<Vec<Vec<u8>>> {
        self.multi_get_range_versioned(key, spans).0
    }

    /// [`KvStore::multi_get_range`] plus the key's version, read atomically.
    pub fn multi_get_range_versioned(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> (Option<Vec<Vec<u8>>>, u64) {
        self.count_read();
        self.count_batch(spans.len());
        let shard = self.shard(key).lock();
        (
            shard.values.get(key).map(|v| {
                spans
                    .iter()
                    .map(|&(offset, len)| KvStore::slice_range(v, offset, len))
                    .collect()
            }),
            shard.version(key),
        )
    }

    /// Apply several range writes to one value under a single shard-lock
    /// acquisition (the batched chunk push), zero-extending as needed.
    /// Writes land in order, so overlapping ranges resolve last-writer-wins.
    /// Returns the new version (unchanged for an empty batch, which creates
    /// nothing).
    pub fn multi_set_range(&self, key: &str, writes: &[(u64, Vec<u8>)]) -> u64 {
        self.count_write();
        self.count_batch(writes.len());
        let mut shard = self.shard(key).lock();
        if writes.is_empty() {
            return shard.version(key);
        }
        let v = shard.values.entry(key.to_string()).or_default();
        for (offset, data) in writes {
            let offset = *offset as usize;
            if v.len() < offset + data.len() {
                v.resize(offset + data.len(), 0);
            }
            v[offset..offset + data.len()].copy_from_slice(data);
        }
        shard.bump(key)
    }

    /// Append data; returns the new length and version (the paper's
    /// `append_state`).
    pub fn append(&self, key: &str, data: &[u8]) -> (usize, u64) {
        self.count_write();
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        v.extend_from_slice(data);
        let len = v.len();
        (len, shard.bump(key))
    }

    /// Delete a value; returns whether it existed and the new version (the
    /// deletion itself counts as a mutation).
    pub fn del(&self, key: &str) -> (bool, u64) {
        self.count_write();
        let mut shard = self.shard(key).lock();
        let existed = shard.values.remove(key).is_some();
        (existed, shard.bump(key))
    }

    /// Whether the key holds a value.
    pub fn exists(&self, key: &str) -> bool {
        self.count_read();
        self.shard(key).lock().values.contains_key(key)
    }

    /// Length of the value in bytes (0 if missing).
    pub fn strlen(&self, key: &str) -> usize {
        self.count_read();
        self.shard(key).lock().values.get(key).map_or(0, Vec::len)
    }

    /// Add `delta` to an 8-byte little-endian counter, creating it at zero;
    /// returns the new value and version. Non-8-byte existing values are
    /// treated as corrupt and reset (documented divergence from Redis,
    /// which errors).
    pub fn incr(&self, key: &str, delta: i64) -> (i64, u64) {
        self.count_write();
        let mut shard = self.shard(key).lock();
        let v = shard.values.entry(key.to_string()).or_default();
        let cur = if v.len() == 8 {
            i64::from_le_bytes(v[..8].try_into().expect("length checked"))
        } else {
            0
        };
        let next = cur.wrapping_add(delta);
        *v = next.to_le_bytes().to_vec();
        (next, shard.bump(key))
    }

    /// Add a member to a set; returns true if newly added (warm-set
    /// registration for the scheduler, §5.1), plus the new version.
    pub fn sadd(&self, key: &str, member: &[u8]) -> (bool, u64) {
        self.count_write();
        let mut shard = self.shard(key).lock();
        let added = shard
            .sets
            .entry(key.to_string())
            .or_default()
            .insert(member.to_vec());
        (added, shard.bump(key))
    }

    /// Remove a member from a set; returns true if it was present, plus the
    /// new version.
    pub fn srem(&self, key: &str, member: &[u8]) -> (bool, u64) {
        self.count_write();
        let mut shard = self.shard(key).lock();
        let removed = shard.sets.get_mut(key).is_some_and(|s| s.remove(member));
        (removed, shard.bump(key))
    }

    /// All members of a set (sorted for determinism).
    pub fn smembers(&self, key: &str) -> Vec<Vec<u8>> {
        self.count_read();
        let mut out: Vec<Vec<u8>> = self
            .shard(key)
            .lock()
            .sets
            .get(key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Set cardinality.
    pub fn scard(&self, key: &str) -> usize {
        self.count_read();
        self.shard(key).lock().sets.get(key).map_or(0, HashSet::len)
    }

    /// Try to acquire a global lock; `owner` is a caller-chosen token used
    /// to release and to make re-acquisition idempotent.
    pub fn try_lock(&self, key: &str, mode: LockMode, owner: u64) -> bool {
        self.lock_ops.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let expires = now + self.lease;
        let mut shard = self.shard(key).lock();
        let state = shard.locks.get_mut(key);
        match (mode, state) {
            (LockMode::Read, None) => {
                let mut readers = HashMap::new();
                readers.insert(owner, expires);
                shard
                    .locks
                    .insert(key.to_string(), LockState::Readers(readers));
                true
            }
            (LockMode::Read, Some(LockState::Readers(readers))) => {
                readers.retain(|_, exp| *exp > now);
                readers.insert(owner, expires);
                true
            }
            (
                LockMode::Read,
                Some(LockState::Writer {
                    owner: w,
                    expires: e,
                }),
            ) => {
                if *e <= now || *w == owner {
                    // Expired writer (or self re-entering as reader via
                    // downgrade): replace.
                    let mut readers = HashMap::new();
                    readers.insert(owner, expires);
                    shard
                        .locks
                        .insert(key.to_string(), LockState::Readers(readers));
                    true
                } else {
                    false
                }
            }
            (LockMode::Write, None) => {
                shard
                    .locks
                    .insert(key.to_string(), LockState::Writer { owner, expires });
                true
            }
            (LockMode::Write, Some(LockState::Readers(readers))) => {
                readers.retain(|_, exp| *exp > now);
                let only_self = readers.len() == 1 && readers.contains_key(&owner);
                if readers.is_empty() || only_self {
                    shard
                        .locks
                        .insert(key.to_string(), LockState::Writer { owner, expires });
                    true
                } else {
                    false
                }
            }
            (
                LockMode::Write,
                Some(LockState::Writer {
                    owner: w,
                    expires: e,
                }),
            ) => {
                if *e <= now || *w == owner {
                    shard
                        .locks
                        .insert(key.to_string(), LockState::Writer { owner, expires });
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Release a lock held by `owner`; unknown owners are ignored (the lease
    /// may have already expired and been taken over).
    pub fn unlock(&self, key: &str, mode: LockMode, owner: u64) {
        self.lock_ops.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock();
        let remove = match (mode, shard.locks.get_mut(key)) {
            (LockMode::Read, Some(LockState::Readers(readers))) => {
                readers.remove(&owner);
                readers.is_empty()
            }
            (LockMode::Write, Some(LockState::Writer { owner: w, .. })) => *w == owner,
            _ => false,
        };
        if remove {
            shard.locks.remove(key);
        }
    }

    /// Remove everything (tests and failure-injection).
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.values.clear();
            s.sets.clear();
            s.locks.clear();
            s.versions.clear();
        }
    }

    /// Total bytes held in values (global-tier memory accounting).
    pub fn total_value_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Number of value keys.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().values.len()).sum()
    }

    /// Every distinct key with its value size in bytes (0 for keys holding
    /// only a set or a lock) — the per-key enumeration a migration planner
    /// snapshots to *preview* a reshard (pair it with
    /// [`rendezvous_delta`](crate::rendezvous_delta) to see exactly which
    /// keys and how many bytes an epoch change would move; the `figures
    /// shards` table does). The migration itself exports by predicate
    /// ([`KvStore::export_keys`]) and never needs the full listing.
    pub fn key_sizes(&self) -> Vec<(String, u64)> {
        let mut out: HashMap<String, u64> = HashMap::new();
        for shard in &self.shards {
            let s = shard.lock();
            for (k, v) in &s.values {
                out.insert(k.clone(), v.len() as u64);
            }
            for k in s.sets.keys() {
                out.entry(k.clone()).or_insert(0);
            }
            for k in s.locks.keys() {
                out.entry(k.clone()).or_insert(0);
            }
        }
        out.into_iter().collect()
    }

    /// Load/size counters for this store (the per-shard half of
    /// [`ShardStats`]; the serving layer adds epoch and rejection counts).
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            epoch: 0,
            keys: self.key_count() as u64,
            value_bytes: self.total_value_bytes() as u64,
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            lock_ops: self.lock_ops.load(Ordering::Relaxed),
            wrong_epoch_redirects: 0,
            freeze_wait_ns: 0,
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            batched_items: self.batched_items.load(Ordering::Relaxed),
            replication: 1,
            repl_forwards: 0,
            repl_lag_ns: 0,
            promotions: 0,
            primary_keys: self.key_count() as u64,
            backup_keys: 0,
        }
    }

    /// Export the complete state (value, set members, live lock with its
    /// owners and remaining lease) of every key matching `moving` — the
    /// donor half of a shard migration. Non-destructive: the caller purges
    /// via [`KvStore::purge_keys`] once the new epoch commits, so an
    /// aborted migration loses nothing.
    pub fn export_keys(&self, moving: impl Fn(&str) -> bool) -> Vec<KeyMigration> {
        let now = Instant::now();
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock();
            let mut keys: HashSet<&String> = s.values.keys().collect();
            keys.extend(s.sets.keys());
            keys.extend(s.locks.keys());
            keys.extend(s.versions.keys());
            for key in keys {
                if !moving(key) {
                    continue;
                }
                let lock = s.locks.get(key.as_str()).and_then(|state| match state {
                    LockState::Readers(readers) => {
                        let live: Vec<(u64, u64)> = readers
                            .iter()
                            .filter(|(_, exp)| **exp > now)
                            .map(|(owner, exp)| {
                                (*owner, exp.duration_since(now).as_millis() as u64)
                            })
                            .collect();
                        (!live.is_empty()).then_some(LockMigration::Readers(live))
                    }
                    LockState::Writer { owner, expires } => {
                        (*expires > now).then(|| LockMigration::Writer {
                            owner: *owner,
                            remaining_ms: expires.duration_since(now).as_millis() as u64,
                        })
                    }
                });
                out.push(KeyMigration {
                    key: key.clone(),
                    value: s.values.get(key.as_str()).cloned(),
                    set: s
                        .sets
                        .get(key.as_str())
                        .map(|m| {
                            let mut v: Vec<Vec<u8>> = m.iter().cloned().collect();
                            v.sort();
                            v
                        })
                        .unwrap_or_default(),
                    lock,
                    version: s.version(key),
                });
            }
        }
        out
    }

    /// Install migrated key state — the receiving half of a shard
    /// migration. Replaces any existing state for each key; lock leases are
    /// re-anchored to this store's clock with their exported remaining
    /// time, so lock owners survive the move with their windows intact.
    pub fn import_keys(&self, entries: &[KeyMigration]) {
        let now = Instant::now();
        for entry in entries {
            let mut shard = self.shard(&entry.key).lock();
            let merged = shard.version(&entry.key).max(entry.version);
            if merged > 0 {
                shard.versions.insert(entry.key.clone(), merged);
            }
            match &entry.value {
                Some(v) => {
                    shard.values.insert(entry.key.clone(), v.clone());
                }
                None => {
                    shard.values.remove(&entry.key);
                }
            }
            if entry.set.is_empty() {
                shard.sets.remove(&entry.key);
            } else {
                shard
                    .sets
                    .insert(entry.key.clone(), entry.set.iter().cloned().collect());
            }
            let lock = entry.lock.as_ref().map(|l| match l {
                LockMigration::Readers(readers) => LockState::Readers(
                    readers
                        .iter()
                        .map(|(owner, ms)| (*owner, now + Duration::from_millis(*ms)))
                        .collect(),
                ),
                LockMigration::Writer {
                    owner,
                    remaining_ms,
                } => LockState::Writer {
                    owner: *owner,
                    expires: now + Duration::from_millis(*remaining_ms),
                },
            });
            match lock {
                Some(state) => {
                    shard.locks.insert(entry.key.clone(), state);
                }
                None => {
                    shard.locks.remove(&entry.key);
                }
            }
        }
    }

    /// Drop every key matching `moved` (value, set and lock state) — the
    /// donor's cleanup once the new routing epoch has committed and the
    /// receiving shard owns the keys. Returns how many keys were dropped.
    /// Version counters are deliberately retained: they are a monotone
    /// floor, and keeping them means a key that later migrates back can
    /// never observe a version regression even against stale local state.
    pub fn purge_keys(&self, moved: impl Fn(&str) -> bool) -> usize {
        let mut purged = 0;
        for shard in &self.shards {
            let mut s = shard.lock();
            let doomed: HashSet<String> = s
                .values
                .keys()
                .chain(s.sets.keys())
                .chain(s.locks.keys())
                .filter(|k| moved(k))
                .cloned()
                .collect();
            s.values.retain(|k, _| !doomed.contains(k));
            s.sets.retain(|k, _| !doomed.contains(k));
            s.locks.retain(|k, _| !doomed.contains(k));
            purged += doomed.len();
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_del_roundtrip() {
        let s = KvStore::new();
        assert_eq!(s.get("k"), None);
        s.set("k", b"value".to_vec());
        assert_eq!(s.get("k"), Some(b"value".to_vec()));
        assert!(s.exists("k"));
        assert_eq!(s.strlen("k"), 5);
        assert!(s.del("k").0);
        assert!(!s.del("k").0);
        assert!(!s.exists("k"));
    }

    #[test]
    fn range_ops() {
        let s = KvStore::new();
        s.set_range("k", 4, b"abcd");
        assert_eq!(s.strlen("k"), 8);
        assert_eq!(s.get("k"), Some(b"\0\0\0\0abcd".to_vec()));
        s.set_range("k", 0, b"xy");
        assert_eq!(s.get_range("k", 0, 3), Some(b"xy\0".to_vec()));
        assert_eq!(s.get_range("k", 6, 100), Some(b"cd".to_vec()));
        assert_eq!(s.get_range("k", 100, 4), Some(Vec::new()));
        assert_eq!(s.get_range("missing", 0, 4), None);
    }

    #[test]
    fn multi_range_ops() {
        let s = KvStore::new();
        assert_eq!(s.multi_get_range("missing", &[(0, 4)]), None);
        s.multi_set_range("k", &[(0, b"abcd".to_vec()), (8, b"ef".to_vec())]);
        assert_eq!(s.get("k"), Some(b"abcd\0\0\0\0ef".to_vec()));
        assert_eq!(
            s.multi_get_range("k", &[(0, 2), (8, 100), (100, 4), (9, 0)]),
            Some(vec![b"ab".to_vec(), b"ef".to_vec(), Vec::new(), Vec::new()])
        );
        // Overlaps resolve in order (last writer wins).
        s.multi_set_range("k", &[(0, b"XX".to_vec()), (1, b"Y".to_vec())]);
        assert_eq!(s.get_range("k", 0, 3), Some(b"XYc".to_vec()));
        // An empty batch creates nothing.
        s.multi_set_range("fresh", &[]);
        assert!(!s.exists("fresh"));
    }

    #[test]
    fn append_returns_length() {
        let s = KvStore::new();
        assert_eq!(s.append("log", b"aa").0, 2);
        assert_eq!(s.append("log", b"bbb").0, 5);
        assert_eq!(s.get("log"), Some(b"aabbb".to_vec()));
    }

    #[test]
    fn counters() {
        let s = KvStore::new();
        assert_eq!(s.incr("c", 5).0, 5);
        assert_eq!(s.incr("c", -2).0, 3);
        // Corrupt (non-8-byte) value resets.
        s.set("c", b"xx".to_vec());
        assert_eq!(s.incr("c", 1).0, 1);
    }

    #[test]
    fn sets() {
        let s = KvStore::new();
        assert!(s.sadd("warm:f", b"host1").0);
        assert!(!s.sadd("warm:f", b"host1").0);
        assert!(s.sadd("warm:f", b"host0").0);
        assert_eq!(s.scard("warm:f"), 2);
        assert_eq!(
            s.smembers("warm:f"),
            vec![b"host0".to_vec(), b"host1".to_vec()]
        );
        assert!(s.srem("warm:f", b"host1").0);
        assert!(!s.srem("warm:f", b"host1").0);
        assert_eq!(s.scard("warm:f"), 1);
        assert_eq!(s.smembers("missing"), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn read_locks_are_shared() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Read, 1));
        assert!(s.try_lock("k", LockMode::Read, 2));
        // Writer blocked while readers hold.
        assert!(!s.try_lock("k", LockMode::Write, 3));
        s.unlock("k", LockMode::Read, 1);
        assert!(!s.try_lock("k", LockMode::Write, 3));
        s.unlock("k", LockMode::Read, 2);
        assert!(s.try_lock("k", LockMode::Write, 3));
    }

    #[test]
    fn write_lock_is_exclusive() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Write, 1));
        assert!(!s.try_lock("k", LockMode::Write, 2));
        assert!(!s.try_lock("k", LockMode::Read, 2));
        // Re-entrant for the same owner.
        assert!(s.try_lock("k", LockMode::Write, 1));
        s.unlock("k", LockMode::Write, 1);
        assert!(s.try_lock("k", LockMode::Read, 2));
    }

    #[test]
    fn reader_upgrades_to_writer_when_alone() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Read, 1));
        assert!(s.try_lock("k", LockMode::Write, 1), "sole reader upgrades");
        assert!(!s.try_lock("k", LockMode::Read, 2));
        s.unlock("k", LockMode::Write, 1);
    }

    #[test]
    fn unlock_by_non_owner_is_ignored() {
        let s = KvStore::new();
        assert!(s.try_lock("k", LockMode::Write, 1));
        s.unlock("k", LockMode::Write, 99);
        assert!(!s.try_lock("k", LockMode::Write, 2), "still held by 1");
    }

    #[test]
    fn expired_leases_are_reaped() {
        let s = KvStore::with_lease(Duration::from_millis(10));
        assert!(s.try_lock("k", LockMode::Write, 1));
        assert!(!s.try_lock("k", LockMode::Write, 2));
        std::thread::sleep(Duration::from_millis(15));
        assert!(s.try_lock("k", LockMode::Write, 2), "lease expired");
    }

    #[test]
    fn flush_and_accounting() {
        let s = KvStore::new();
        s.set("a", vec![0; 100]);
        s.set("b", vec![0; 50]);
        s.sadd("set", b"m");
        assert_eq!(s.total_value_bytes(), 150);
        assert_eq!(s.key_count(), 2);
        s.flush();
        assert_eq!(s.total_value_bytes(), 0);
        assert_eq!(s.key_count(), 0);
        assert_eq!(s.scard("set"), 0);
    }

    #[test]
    fn key_sizes_enumerates_values_sets_and_locks() {
        let s = KvStore::new();
        s.set("v", vec![1u8; 10]);
        s.sadd("members", b"m");
        assert!(s.try_lock("locked", LockMode::Write, 9));
        let mut sizes = s.key_sizes();
        sizes.sort();
        assert_eq!(
            sizes,
            vec![
                ("locked".to_string(), 0),
                ("members".to_string(), 0),
                ("v".to_string(), 10)
            ]
        );
    }

    #[test]
    fn stats_report_load_and_op_counters() {
        let s = KvStore::new();
        s.set("a", vec![0; 100]);
        s.set("b", vec![0; 20]);
        let _ = s.get("a");
        let _ = s.get("missing");
        s.try_lock("a", LockMode::Read, 1);
        s.unlock("a", LockMode::Read, 1);
        let st = s.stats();
        assert_eq!(st.keys, 2);
        assert_eq!(st.value_bytes, 120);
        assert_eq!(st.writes, 2);
        assert_eq!(st.reads, 2);
        assert_eq!(st.lock_ops, 2);
    }

    #[test]
    fn export_import_moves_values_sets_and_lock_owners() {
        let donor = KvStore::new();
        donor.set("moves", b"payload".to_vec());
        donor.sadd("moves", b"m1");
        donor.sadd("moves", b"m2");
        assert!(donor.try_lock("moves", LockMode::Write, 42));
        donor.set("stays", b"here".to_vec());
        // A set-only key and a lock-only key move too.
        donor.sadd("set-only", b"s");
        assert!(donor.try_lock("lock-only", LockMode::Read, 7));

        let moving = |k: &str| k != "stays";
        let entries = donor.export_keys(moving);
        assert_eq!(entries.len(), 3);

        let target = KvStore::new();
        target.import_keys(&entries);
        assert_eq!(target.get("moves"), Some(b"payload".to_vec()));
        assert_eq!(
            target.smembers("moves"),
            vec![b"m1".to_vec(), b"m2".to_vec()]
        );
        // Lock state moved with its owner: a stranger cannot take it, the
        // original owner can re-enter and release it.
        assert!(!target.try_lock("moves", LockMode::Write, 99));
        assert!(target.try_lock("moves", LockMode::Write, 42));
        target.unlock("moves", LockMode::Write, 42);
        assert!(target.try_lock("moves", LockMode::Write, 99));
        assert!(target.scard("set-only") == 1);
        assert!(!target.try_lock("lock-only", LockMode::Write, 99));
        assert!(
            target.try_lock("lock-only", LockMode::Read, 8),
            "read lock shared"
        );

        // Export was non-destructive; purge drops exactly the moved keys.
        assert!(donor.exists("moves"));
        let purged = donor.purge_keys(moving);
        assert_eq!(purged, 3);
        assert!(!donor.exists("moves"));
        assert_eq!(donor.scard("set-only"), 0);
        assert!(donor.exists("stays"));
    }

    #[test]
    fn expired_locks_are_not_exported() {
        let s = KvStore::with_lease(Duration::from_millis(5));
        assert!(s.try_lock("k", LockMode::Write, 1));
        std::thread::sleep(Duration::from_millis(10));
        let entries = s.export_keys(|_| true);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lock, None, "expired writer must not migrate");
    }

    #[test]
    fn imported_lease_is_reanchored_with_remaining_time() {
        let donor = KvStore::with_lease(Duration::from_millis(60));
        assert!(donor.try_lock("k", LockMode::Write, 5));
        let entries = donor.export_keys(|_| true);
        let target = KvStore::new();
        target.import_keys(&entries);
        assert!(!target.try_lock("k", LockMode::Write, 6), "still held");
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            target.try_lock("k", LockMode::Write, 6),
            "remaining lease expires on the target's clock"
        );
    }

    #[test]
    fn concurrent_incr_is_atomic() {
        let s = std::sync::Arc::new(KvStore::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.incr("n", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.incr("n", 0).0, 8000);
    }

    #[test]
    fn versions_are_monotone_per_key() {
        let s = KvStore::new();
        assert_eq!(s.version_of("k"), 0);
        let v1 = s.set("k", b"a".to_vec());
        assert_eq!(v1, 1);
        let v2 = s.set_range("k", 0, b"b");
        let (_, v3) = s.append("k", b"c");
        let (_, v4) = s.del("k");
        assert!(v1 < v2 && v2 < v3 && v3 < v4);
        // Deletion keeps the counter: a recreate continues, never restarts.
        let v5 = s.set("k", b"again".to_vec());
        assert!(v5 > v4);
        assert_eq!(s.version_of("k"), v5);
        // Reads pair bytes with the version atomically.
        assert_eq!(s.get_versioned("k"), (Some(b"again".to_vec()), v5));
        assert_eq!(s.get_range_versioned("k", 0, 2).1, v5);
        // An empty multi-set batch reports the version without bumping it.
        assert_eq!(s.multi_set_range("k", &[]), v5);
    }

    #[test]
    fn import_merges_versions_max_wise() {
        let donor = KvStore::new();
        for _ in 0..5 {
            donor.set("k", b"x".to_vec());
        }
        let entries = donor.export_keys(|_| true);
        assert_eq!(entries[0].version, 5);

        // Target already saw a *newer* version (e.g. a replica that applied
        // more forwarded writes): import must not regress it.
        let target = KvStore::new();
        for _ in 0..9 {
            target.set("k", b"y".to_vec());
        }
        target.import_keys(&entries);
        assert_eq!(target.version_of("k"), 9);
        assert_eq!(target.get("k"), Some(b"x".to_vec()));

        // A fresh target adopts the exported version exactly.
        let fresh = KvStore::new();
        fresh.import_keys(&entries);
        assert_eq!(fresh.version_of("k"), 5);
    }

    #[test]
    fn version_only_keys_survive_migration() {
        // A deleted key leaves a version floor behind; migration carries it
        // so the new owner can never hand out a regressed version.
        let donor = KvStore::new();
        donor.set("gone", b"v".to_vec());
        donor.del("gone");
        let entries = donor.export_keys(|_| true);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].value, None);
        assert_eq!(entries[0].version, 2);
        let target = KvStore::new();
        target.import_keys(&entries);
        assert_eq!(target.version_of("gone"), 2);
        assert!(target.set("gone", b"new".to_vec()) > 2);
    }
}
