//! The live-resharding coordinator: epoch-bumped key migration.
//!
//! Growing or shrinking the tier is a three-phase, wire-driven protocol
//! (Cloudburst-style storage autoscaling; the rendezvous routing in
//! [`sharded`](crate::sharded) guarantees the delta is minimal):
//!
//! 1. **Freeze + export** — each donor shard receives `Migrate{epoch+1,
//!    new_count}`: it atomically switches its ownership check to the new
//!    table (in-flight and future operations on *moving* keys answer
//!    `WrongEpoch` and are retried by clients), then exports exactly the
//!    moving keys — values, counters, sets and lock state with owners and
//!    remaining leases intact. The freeze-and-export runs behind the
//!    shard's serving gate, so all of the donor's keyed traffic pauses
//!    for the export snapshot itself; outside that snapshot, non-moving
//!    keys are served throughout the migration.
//! 2. **Handoff** — the coordinator streams each donor's export to the
//!    keys' new owner shard, which installs it.
//! 3. **Commit + publish** — every shard of the new table receives
//!    `EpochCommit{epoch+1, new_count}` (donors purge the keys they no
//!    longer own); only then is the new [`RoutingTable`] published through
//!    the shared [`RoutingCell`], releasing every client blocked on the
//!    `WrongEpoch` handshake onto the new table.
//!
//! No acknowledged write can be lost: a write either lands before the
//! freeze (and is exported with the key) or is rejected with `WrongEpoch`
//! and retried against the new owner after the commit. No read can see the
//! wrong shard: ownership is checked on every keyed request.
//!
//! On a replicated tier (`replication > 1`) two more epoch transitions
//! exist, neither of which migrates any data:
//!
//! - [`failover`] — a slot died. Its index is tombstoned in the new table,
//!   which re-ranks every one of its keys onto the key's first surviving
//!   replica: the promotion *is* the epoch bump, because the backup
//!   already holds every acknowledged write (the quorum guaranteed it).
//!   Survivors then re-ship replicas to the members each key gained, so
//!   the tier returns to full redundancy.
//! - [`retire`] — a planned removal: identical, except the victim also
//!   receives the commit (purging its entire store) and is returned for
//!   shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use faasm_net::{HostId, Nic};

use crate::client::{KvClient, KvError};
use crate::codec::EPOCH_ANY;
use crate::sharded::{shard_index_for, RoutingCell, RoutingTable};
use crate::store::KeyMigration;

fn control(coord: &Nic, host: HostId) -> KvClient {
    KvClient::connect_at(coord.clone(), host, EPOCH_ANY, KvClient::fresh_owner())
}

/// Transfer ids for chunked handoffs: process-wide so two concurrent
/// migrations to one receiver can never interleave frame sequences.
static NEXT_XFER: AtomicU64 = AtomicU64::new(1);

fn entry_weight(e: &KeyMigration) -> usize {
    e.key.len()
        + e.value.as_ref().map_or(0, |v| v.len())
        + e.set.iter().map(|m| m.len()).sum::<usize>()
        + 17
}

/// Stream `entries` to `target` as bounded, sequence-numbered
/// [`HandoffFrame`](crate::codec::Request::HandoffFrame)s — no single
/// fabric message carries an unbounded export.
pub fn send_handoff_chunked(target: &KvClient, entries: Vec<KeyMigration>) -> Result<(), KvError> {
    if entries.is_empty() {
        return Ok(());
    }
    let mut frames: Vec<Vec<KeyMigration>> = vec![Vec::new()];
    let mut bytes = 0usize;
    for e in entries {
        let w = entry_weight(&e);
        let cur = frames.last_mut().expect("one frame always exists");
        if !cur.is_empty()
            && (cur.len() >= crate::server::HANDOFF_FRAME_ENTRIES
                || bytes + w > crate::server::HANDOFF_FRAME_BYTES)
        {
            frames.push(Vec::new());
            bytes = 0;
        }
        bytes += w;
        frames.last_mut().expect("one frame always exists").push(e);
    }
    let xfer = NEXT_XFER.fetch_add(1, Ordering::Relaxed);
    let last = frames.len() - 1;
    for (seq, frame) in frames.into_iter().enumerate() {
        target.handoff_frame(xfer, seq as u32, seq == last, frame)?;
    }
    Ok(())
}

/// The `(dead, hosts)` wire arguments of an
/// [`EpochCommit`](crate::codec::Request::EpochCommit) for `table`.
fn commit_args(table: &RoutingTable) -> (Vec<u32>, Vec<u32>) {
    (
        table.dead.iter().map(|d| *d as u32).collect(),
        table.repl_hosts.iter().map(|h| h.0).collect(),
    )
}

/// Grow the tier by one shard: migrate every key whose rendezvous owner
/// under `old_count + 1` shards is the new shard onto `new_host` (which
/// must already be serving, routed at the next epoch), commit the epoch on
/// every shard and publish the new table through `cell`.
///
/// On a mid-protocol failure the frozen donors are rolled back to the old
/// table (their keys were never purged) and the error is returned; the
/// caller owns shutting down the unused new server.
///
/// # Errors
///
/// Returns [`KvError`] when a shard cannot be reached or rejects a phase.
pub fn grow(
    coord: &Nic,
    cell: &RoutingCell,
    new_host: HostId,
) -> Result<Arc<RoutingTable>, KvError> {
    grow_replicated(coord, cell, new_host, None)
}

/// [`grow`] on a replicated tier: `new_repl_host` is the joining shard's
/// replica-traffic host (required when the table replicates). Rendezvous
/// ranking over the surviving slots is unchanged by the new slot, so the
/// only member any key's replica set gains is the newcomer — every
/// exported entry streams to it, chunked.
///
/// # Errors
///
/// Returns [`KvError`] when a shard cannot be reached or rejects a phase.
pub fn grow_replicated(
    coord: &Nic,
    cell: &RoutingCell,
    new_host: HostId,
    new_repl_host: Option<HostId>,
) -> Result<Arc<RoutingTable>, KvError> {
    // Flight-recorder trigger: snapshot recent shard activity at migration
    // boundaries, where retry storms and freeze waits cluster.
    faasm_telemetry::tier("state-shard").note_anomaly("reshard grow begin");
    let old = cell.load();
    if old.replication > 1 && new_repl_host.is_none() {
        return Err(KvError::Server(
            "a replicated tier's new shard needs a replica-traffic host".into(),
        ));
    }
    let new_epoch = old.epoch + 1;
    let mut hosts = old.hosts.clone();
    hosts.push(new_host);
    let mut repl_hosts = old.repl_hosts.clone();
    repl_hosts.extend(new_repl_host);
    let new_count = hosts.len() as u64;
    let new_table = RoutingTable::replicated(
        new_epoch,
        hosts,
        old.replication,
        old.dead.clone(),
        repl_hosts,
    );
    let (dead_u32, hosts_u32) = commit_args(&new_table);
    let (old_dead_u32, old_hosts_u32) = commit_args(&old);

    let target = control(coord, new_host);
    let mut frozen: Vec<HostId> = Vec::new();
    let migrated = (|| {
        for slot in old.live_slots() {
            let donor = old.hosts[slot];
            frozen.push(donor);
            let entries = control(coord, donor).migrate(new_epoch, new_count)?;
            send_handoff_chunked(&target, entries)?;
        }
        Ok(())
    })();
    if let Err(e) = migrated {
        // Roll back: donors re-commit the old table. Nothing was purged,
        // so service resumes exactly as before the attempt.
        for &donor in &frozen {
            let _ = control(coord, donor).epoch_commit(
                old.epoch,
                old.hosts.len() as u64,
                &old_dead_u32,
                &old_hosts_u32,
            );
        }
        return Err(e);
    }
    // Commit is best-effort per shard, and the table publishes regardless:
    // every donor is already pending on the new table (its ownership
    // answers are identical to the committed state), and the new shard
    // booted routed at the new epoch — so service is correct even if a
    // commit frame is lost. A shard that missed its commit merely delays
    // purging its moved copies until the next epoch change overwrites its
    // pending state. Aborting here instead would be strictly worse: the
    // donors' freeze only releases once the cell reaches the epoch they
    // name in `WrongEpoch`.
    for slot in new_table.live_slots() {
        let _ = control(coord, new_table.hosts[slot])
            .epoch_commit(new_epoch, new_count, &dead_u32, &hosts_u32);
    }
    cell.store(new_table);
    faasm_telemetry::tier("state-shard").note_anomaly("reshard grow commit");
    Ok(cell.load())
}

/// Fail a dead slot out of a replicated tier: tombstone its index at
/// `epoch + 1`, commit the new table to every surviving slot (service for
/// the dead slot's keys resumes at each survivor's commit — this window
/// is the failover blackout), publish, then have every survivor re-ship
/// replicas for the set members its keys gained, restoring redundancy.
///
/// No data migrates at the epoch bump itself: tombstoning re-ranks each of
/// the dead slot's keys onto its first surviving replica, which — because
/// acked writes required the full quorum — already holds every
/// acknowledged write. On an unreplicated tier (`replication == 1`) the
/// failover still reroutes the keys but their data is lost with the shard.
///
/// # Errors
///
/// Returns [`KvError`] when `dead_slot` is not a live slot of the current
/// table or is the last one.
pub fn failover(
    coord: &Nic,
    cell: &RoutingCell,
    dead_slot: usize,
) -> Result<Arc<RoutingTable>, KvError> {
    fail_slot(coord, cell, dead_slot, false).map(|(table, _)| table)
}

/// Planned removal of a live slot from a replicated tier: [`failover`]
/// except the victim also receives the commit — purging its entire store —
/// and its main host is returned for shutdown.
///
/// # Errors
///
/// Returns [`KvError`] when `slot` is not live or is the last live slot.
pub fn retire(
    coord: &Nic,
    cell: &RoutingCell,
    slot: usize,
) -> Result<(Arc<RoutingTable>, HostId), KvError> {
    fail_slot(coord, cell, slot, true)
}

fn fail_slot(
    coord: &Nic,
    cell: &RoutingCell,
    dead_slot: usize,
    planned: bool,
) -> Result<(Arc<RoutingTable>, HostId), KvError> {
    let old = cell.load();
    if dead_slot >= old.hosts.len() || !old.is_live(dead_slot) {
        return Err(KvError::Server(format!(
            "slot {dead_slot} is not a live slot of the current table"
        )));
    }
    if old.live_count() <= 1 {
        return Err(KvError::Server(
            "cannot fail over the last live shard".into(),
        ));
    }
    faasm_telemetry::tier("state-shard").note_anomaly(if planned {
        "state shard retire begin"
    } else {
        "state shard failover begin"
    });
    let victim = old.hosts[dead_slot];
    let new_epoch = old.epoch + 1;
    let mut dead = old.dead.clone();
    dead.push(dead_slot);
    dead.sort_unstable();
    let new_table = RoutingTable::replicated(
        new_epoch,
        old.hosts.clone(),
        old.replication,
        dead,
        old.repl_hosts.clone(),
    );
    let (dead_u32, hosts_u32) = commit_args(&new_table);
    let count = old.hosts.len() as u64;
    if planned {
        // The victim must stop serving (and purge) before its keys are
        // served elsewhere; a dead host in an unplanned failover cannot.
        control(coord, victim).epoch_commit(new_epoch, count, &dead_u32, &hosts_u32)?;
    }
    // Best-effort per survivor, publish regardless: a survivor that missed
    // its commit redirects clients by epoch until it catches up.
    for slot in new_table.live_slots() {
        let _ = control(coord, new_table.hosts[slot])
            .epoch_commit(new_epoch, count, &dead_u32, &hosts_u32);
    }
    cell.store(new_table);
    // Blackout over: parked clients resume against the promoted replicas.
    // Now restore full redundancy — each survivor re-ships the keys whose
    // replica set gained a member when the slot was tombstoned.
    let prev_dead_u32: Vec<u32> = old.dead.iter().map(|d| *d as u32).collect();
    let installed = cell.load();
    for slot in installed.live_slots() {
        let _ = control(coord, installed.hosts[slot]).rebuild(&prev_dead_u32);
    }
    faasm_telemetry::tier("state-shard").note_anomaly(if planned {
        "state shard retire commit"
    } else {
        "state shard failover commit"
    });
    Ok((installed, victim))
}

/// Shrink the tier by one shard: the last shard of the table exports
/// **all** of its keys (frozen for the duration), the coordinator hands
/// each key to its owner under the shrunk table, the remaining shards
/// commit the epoch and the new table is published. Returns the new table
/// and the retired host (the caller owns shutting its server down).
///
/// # Errors
///
/// Returns [`KvError`] when the tier has only one shard, or a shard cannot
/// be reached mid-protocol (the retiring shard is then rolled back).
pub fn shrink(coord: &Nic, cell: &RoutingCell) -> Result<(Arc<RoutingTable>, HostId), KvError> {
    faasm_telemetry::tier("state-shard").note_anomaly("reshard shrink begin");
    let old = cell.load();
    if old.replication > 1 || !old.dead.is_empty() {
        // On a replicated (or already-tombstoned) table a planned removal
        // needs no migration at all: retire the last live slot instead.
        return Err(KvError::Server(
            "shrink is for unreplicated tables; use retire on a replicated tier".into(),
        ));
    }
    if old.hosts.len() <= 1 {
        return Err(KvError::Server("cannot retire the last state shard".into()));
    }
    let new_epoch = old.epoch + 1;
    let hosts = old.hosts[..old.hosts.len() - 1].to_vec();
    let retiring = *old.hosts.last().expect("len checked");
    let new_count = hosts.len() as u64;

    let entries = control(coord, retiring).migrate(new_epoch, new_count)?;
    // Group the retiring shard's keys by their owner under the new table.
    let mut per_target: Vec<Vec<KeyMigration>> = vec![Vec::new(); hosts.len()];
    for entry in entries {
        per_target[shard_index_for(&entry.key, hosts.len())].push(entry);
    }
    let handed = (|| {
        for (idx, batch) in per_target.into_iter().enumerate() {
            if !batch.is_empty() {
                send_handoff_chunked(&control(coord, hosts[idx]), batch)?;
            }
        }
        Ok(())
    })();
    if let Err(e) = handed {
        let _ = control(coord, retiring).epoch_commit(old.epoch, old.hosts.len() as u64, &[], &[]);
        return Err(e);
    }
    // Unlike grow, the surviving shards have seen nothing yet: until each
    // commits, it still rejects the keys it just imported. A commit
    // failure therefore rolls the whole shrink back — retiring shard
    // first (releasing its freeze; its copies were never purged), then
    // any survivor that already committed (re-committing the old table,
    // whose purge also drops the imported copies it no longer owns).
    let mut committed: Vec<HostId> = Vec::new();
    for &host in &hosts {
        if let Err(e) = control(coord, host).epoch_commit(new_epoch, new_count, &[], &[]) {
            let _ =
                control(coord, retiring).epoch_commit(old.epoch, old.hosts.len() as u64, &[], &[]);
            for &done in &committed {
                let _ =
                    control(coord, done).epoch_commit(old.epoch, old.hosts.len() as u64, &[], &[]);
            }
            return Err(e);
        }
        committed.push(host);
    }
    cell.store(RoutingTable::new(new_epoch, hosts));
    faasm_telemetry::tier("state-shard").note_anomaly("reshard shrink commit");
    Ok((cell.load(), retiring))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::KvBackend;
    use crate::server::{KvServer, ShardRouting};
    use crate::sharded::ShardedKvClient;
    use crate::store::{KvStore, LockMode};
    use faasm_net::Fabric;
    use std::time::Duration;

    /// A routed tier of `n` shards at epoch 1 plus its routing cell.
    fn routed_tier(fabric: &Fabric, n: usize) -> (Vec<KvServer>, Arc<RoutingCell>) {
        let servers: Vec<KvServer> = (0..n)
            .map(|i| {
                KvServer::start_routed(
                    fabric.add_host(),
                    2,
                    Arc::new(KvStore::new()),
                    ShardRouting::new(1, n, i),
                )
            })
            .collect();
        let cell = RoutingCell::new(RoutingTable::new(
            1,
            servers.iter().map(KvServer::host_id).collect(),
        ));
        (servers, cell)
    }

    /// Boot one more routed shard at the next epoch, ready to join.
    fn joining_shard(fabric: &Fabric, cell: &RoutingCell) -> KvServer {
        let table = cell.load();
        KvServer::start_routed(
            fabric.add_host(),
            2,
            Arc::new(KvStore::new()),
            ShardRouting::new(table.epoch + 1, table.hosts.len() + 1, table.hosts.len()),
        )
    }

    #[test]
    fn grow_moves_exactly_the_rendezvous_delta_and_loses_nothing() {
        let fabric = Fabric::new();
        let (servers, cell) = routed_tier(&fabric, 2);
        let client = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
        let keys: Vec<String> = (0..64).map(|i| format!("reshard:k{i}")).collect();
        for (i, key) in keys.iter().enumerate() {
            client.set(key, vec![i as u8; 8]).unwrap();
            client.incr(&format!("{key}:ctr"), i as i64).unwrap();
            client.sadd(&format!("{key}:set"), key.as_bytes()).unwrap();
        }

        let newcomer = joining_shard(&fabric, &cell);
        let table = grow(&fabric.add_host(), &cell, newcomer.host_id()).unwrap();
        assert_eq!(table.epoch, 2);
        assert_eq!(table.hosts.len(), 3);

        // Every acknowledged write is still readable through the client…
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(client.get(key).unwrap(), Some(vec![i as u8; 8]), "{key}");
            assert_eq!(client.incr(&format!("{key}:ctr"), 0).unwrap(), i as i64);
            assert_eq!(client.scard(&format!("{key}:set")).unwrap(), 1);
        }
        // …and each key lives on exactly its new owner shard (no wrong-shard
        // copies left behind, no gratuitous movement beyond the delta).
        let stores: Vec<_> = servers
            .iter()
            .map(|s| Arc::clone(s.store()))
            .chain(std::iter::once(Arc::clone(newcomer.store())))
            .collect();
        for key in &keys {
            let owner = shard_index_for(key, 3);
            for (idx, store) in stores.iter().enumerate() {
                assert_eq!(
                    store.exists(key),
                    idx == owner,
                    "{key} must live only on shard {owner}, found on {idx}"
                );
            }
            assert_eq!(
                shard_index_for(key, 2) != owner,
                owner == 2,
                "a moved key moved only because the new shard won it"
            );
        }
    }

    #[test]
    fn stale_clients_are_redirected_not_failed() {
        let fabric = Fabric::new();
        let (_servers, cell) = routed_tier(&fabric, 2);
        // This client builds its connections now and learns of the grow
        // only through the WrongEpoch handshake.
        let stale = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
        for i in 0..32 {
            stale.set(&format!("k{i}"), vec![i]).unwrap();
        }
        let epoch_before = stale.epoch();

        let newcomer = joining_shard(&fabric, &cell);
        grow(&fabric.add_host(), &cell, newcomer.host_id()).unwrap();

        // Some of these keys moved to the new shard; the stale client must
        // transparently refresh and serve all of them.
        for i in 0..32 {
            assert_eq!(stale.get(&format!("k{i}")).unwrap(), Some(vec![i]));
        }
        assert!(stale.epoch() > epoch_before, "client followed the epoch");
        assert!(
            newcomer.store().key_count() > 0,
            "the delta for 32 keys over 2→3 shards is virtually never empty"
        );
        assert!(
            newcomer.routing().unwrap().wrong_epoch_count() == 0,
            "nothing should hit the new shard before the table was published"
        );
    }

    #[test]
    fn lock_owners_survive_migration() {
        let fabric = Fabric::new();
        let (_servers, cell) = routed_tier(&fabric, 2);
        let holder = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
        let rival = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
        let keys: Vec<String> = (0..16).map(|i| format!("locked:{i}")).collect();
        for key in &keys {
            assert!(holder.try_lock(key, LockMode::Write).unwrap());
        }

        let newcomer = joining_shard(&fabric, &cell);
        grow(&fabric.add_host(), &cell, newcomer.host_id()).unwrap();

        for key in &keys {
            assert!(
                !rival.try_lock(key, LockMode::Write).unwrap(),
                "{key}: the migrated lock must still exclude other owners"
            );
            holder.unlock(key, LockMode::Write).unwrap();
            assert!(
                rival.try_lock(key, LockMode::Write).unwrap(),
                "{key}: the original owner's unlock must release the moved lock"
            );
            rival.unlock(key, LockMode::Write).unwrap();
        }
    }

    #[test]
    fn writes_during_the_freeze_window_block_then_land_on_the_new_owner() {
        let fabric = Fabric::new();
        let (servers, cell) = routed_tier(&fabric, 2);
        let client = Arc::new(ShardedKvClient::connect(
            fabric.add_host(),
            Arc::clone(&cell),
        ));
        // Find a key that moves to the new shard under 3 shards.
        let key = (0..1000)
            .map(|i| format!("mover:{i}"))
            .find(|k| shard_index_for(k, 3) == 2)
            .expect("some key moves to the new shard");
        client.set(&key, b"old".to_vec()).unwrap();

        // Freeze the donors by hand (Migrate without commit): the key is
        // now in its migration window.
        let coord = fabric.add_host();
        let newcomer = joining_shard(&fabric, &cell);
        let mut exported = Vec::new();
        for server in &servers {
            exported.extend(control(&coord, server.host_id()).migrate(2, 3).unwrap());
        }

        // A write issued mid-window must not fail and must not land on the
        // donor: it blocks in the WrongEpoch handshake until the commit.
        let writer = {
            let client = Arc::clone(&client);
            let key = key.clone();
            std::thread::spawn(move || client.set(&key, b"new".to_vec()))
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!writer.is_finished(), "the write must wait out the freeze");

        // Complete the migration: handoff, commit, publish.
        control(&coord, newcomer.host_id())
            .handoff(exported)
            .unwrap();
        let mut hosts: Vec<HostId> = servers.iter().map(KvServer::host_id).collect();
        hosts.push(newcomer.host_id());
        for &host in &hosts {
            control(&coord, host).epoch_commit(2, 3, &[], &[]).unwrap();
        }
        cell.store(RoutingTable::new(2, hosts));

        writer.join().unwrap().unwrap();
        assert_eq!(
            newcomer.store().get(&key),
            Some(b"new".to_vec()),
            "the blocked write lands on the new owner after the commit"
        );
        assert_eq!(client.get(&key).unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn shrink_returns_the_retired_shards_keys_to_the_survivors() {
        let fabric = Fabric::new();
        let (servers, cell) = routed_tier(&fabric, 3);
        let client = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
        for i in 0..48 {
            client.set(&format!("shrink:{i}"), vec![i]).unwrap();
        }
        let coord = fabric.add_host();
        let (table, retired) = shrink(&coord, &cell).unwrap();
        assert_eq!(table.hosts.len(), 2);
        assert_eq!(retired, servers[2].host_id());
        for i in 0..48 {
            assert_eq!(client.get(&format!("shrink:{i}")).unwrap(), Some(vec![i]));
        }
        // And the two survivors hold everything between them, correctly
        // placed under the shrunk table.
        for i in 0..48 {
            let key = format!("shrink:{i}");
            let owner = shard_index_for(&key, 2);
            assert!(servers[owner].store().exists(&key), "{key}");
        }
        // One shard cannot be retired.
        let lone_fabric = Fabric::new();
        let (_s, lone_cell) = routed_tier(&lone_fabric, 1);
        assert!(shrink(&lone_fabric.add_host(), &lone_cell).is_err());
    }
}
