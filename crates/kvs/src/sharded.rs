//! A sharded global tier: rendezvous-hashed routing over N shard servers.
//!
//! The paper's global tier is "a distributed key-value store" (§4.2); one
//! `KvServer` per cluster caps state throughput at one host's NIC and one
//! store's locks. [`ShardedKvClient`] removes that ceiling: each key —
//! value, counter, lock and set alike — is owned by exactly one shard,
//! chosen by highest-random-weight (rendezvous) hashing, so adding shards
//! multiplies aggregate tier bandwidth while an unchanged shard set never
//! moves a key.

use crate::backend::KvBackend;
use crate::client::{KvClient, KvError};
use crate::store::LockMode;

/// A client routing each key to its owning shard.
///
/// Owns one [`KvClient`] per shard. Lock ownership is consistent because a
/// key always routes to the same shard client (and therefore the same
/// owner token) for the lifetime of this handle.
pub struct ShardedKvClient {
    shards: Vec<KvClient>,
}

impl std::fmt::Debug for ShardedKvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKvClient")
            .field("shards", &self.shards.len())
            .finish()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finaliser: decorrelates the per-shard weights so rendezvous
/// choice is uniform even for similar keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardedKvClient {
    /// A routing client over per-shard clients; panics if `shards` is empty.
    pub fn new(shards: Vec<KvClient>) -> ShardedKvClient {
        assert!(
            !shards.is_empty(),
            "sharded client needs at least one shard"
        );
        ShardedKvClient { shards }
    }

    /// The shard owning `key` among `shard_count` shards — a pure function
    /// of its arguments (rendezvous hashing: the shard with the highest
    /// mixed hash of `(key, shard)` wins, so removing one shard reassigns
    /// only that shard's keys). Usable for placement questions without any
    /// live clients; panics if `shard_count` is zero.
    pub fn shard_index_for(key: &str, shard_count: usize) -> usize {
        assert!(shard_count > 0, "no shards to route to");
        let kh = fnv1a(key.as_bytes());
        let mut best = 0usize;
        let mut best_w = 0u64;
        for i in 0..shard_count {
            let w = mix(kh ^ mix(i as u64));
            if i == 0 || w > best_w {
                best = i;
                best_w = w;
            }
        }
        best
    }

    /// The shard index owning `key` on this client.
    pub fn shard_index(&self, key: &str) -> usize {
        ShardedKvClient::shard_index_for(key, self.shards.len())
    }

    fn route(&self, key: &str) -> &KvClient {
        &self.shards[self.shard_index(key)]
    }
}

impl KvBackend for ShardedKvClient {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
        self.route(key).get(key)
    }

    fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
        self.route(key).set(key, value)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
        self.route(key).get_range(key, offset, len)
    }

    fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
        self.route(key).set_range(key, offset, data)
    }

    fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
        self.route(key).multi_get_range(key, spans)
    }

    fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
        self.route(key).multi_set_range(key, writes)
    }

    fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
        self.route(key).append(key, data)
    }

    fn del(&self, key: &str) -> Result<bool, KvError> {
        self.route(key).del(key)
    }

    fn exists(&self, key: &str) -> Result<bool, KvError> {
        self.route(key).exists(key)
    }

    fn strlen(&self, key: &str) -> Result<u64, KvError> {
        self.route(key).strlen(key)
    }

    fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
        self.route(key).incr(key, delta)
    }

    fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        self.route(key).sadd(key, member)
    }

    fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        self.route(key).srem(key, member)
    }

    fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
        self.route(key).smembers(key)
    }

    fn scard(&self, key: &str) -> Result<u64, KvError> {
        self.route(key).scard(key)
    }

    fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
        self.route(key).try_lock(key, mode)
    }

    fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        self.route(key).lock(key, mode)
    }

    fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        self.route(key).unlock(key, mode)
    }

    fn ping(&self) -> Result<(), KvError> {
        for shard in &self.shards {
            shard.ping()?;
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), KvError> {
        for shard in &self.shards {
            shard.flush()?;
        }
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvStore;
    use std::sync::Arc;

    fn sharded(n: usize) -> (Vec<Arc<KvStore>>, ShardedKvClient) {
        let stores: Vec<Arc<KvStore>> = (0..n).map(|_| Arc::new(KvStore::new())).collect();
        let clients = stores
            .iter()
            .map(|s| KvClient::local(Arc::clone(s)))
            .collect();
        (stores, ShardedKvClient::new(clients))
    }

    #[test]
    fn routing_is_deterministic_and_covers_full_api() {
        let (_stores, c) = sharded(4);
        c.set("k", b"v".to_vec()).unwrap();
        assert_eq!(c.get("k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(c.strlen("k").unwrap(), 1);
        c.set_range("k", 1, b"w".to_vec()).unwrap();
        assert_eq!(c.get_range("k", 0, 2).unwrap(), Some(b"vw".to_vec()));
        assert_eq!(c.append("k", b"!".to_vec()).unwrap(), 3);
        assert!(c.exists("k").unwrap());
        assert_eq!(c.incr("n", 2).unwrap(), 2);
        assert!(c.sadd("s", b"m").unwrap());
        assert_eq!(c.scard("s").unwrap(), 1);
        assert_eq!(c.smembers("s").unwrap(), vec![b"m".to_vec()]);
        assert!(c.srem("s", b"m").unwrap());
        c.multi_set_range("mk", vec![(0, b"ab".to_vec()), (4, b"cd".to_vec())])
            .unwrap();
        assert_eq!(
            c.multi_get_range("mk", &[(0, 2), (4, 2)]).unwrap(),
            Some(vec![b"ab".to_vec(), b"cd".to_vec()])
        );
        assert!(c.del("k").unwrap());
        c.ping().unwrap();
    }

    #[test]
    fn every_op_on_a_key_lands_on_the_owning_shard() {
        let (stores, c) = sharded(4);
        for key in ["alpha", "mm:C", "sched:warm:u:f", "ctr:9"] {
            let owner = c.shard_index(key);
            c.set(key, b"v".to_vec()).unwrap();
            c.sadd(key, b"m").unwrap();
            // The counter is its own key with its own owner shard.
            let ctr = format!("{key}:n");
            c.incr(&ctr, 1).unwrap();
            for (i, store) in stores.iter().enumerate() {
                assert_eq!(
                    store.exists(&ctr),
                    i == c.shard_index(&ctr),
                    "counter {ctr} must live only on its owner shard"
                );
            }
            assert!(c.try_lock(key, LockMode::Write).unwrap());
            for (i, store) in stores.iter().enumerate() {
                let holds_value = store.exists(key);
                let holds_set = store.scard(key) > 0;
                // The write lock is held, so only the owner can be blocked.
                let lock_free = store.try_lock(key, LockMode::Write, u64::MAX);
                if lock_free {
                    store.unlock(key, LockMode::Write, u64::MAX);
                }
                if i == owner {
                    assert!(holds_value && holds_set, "owner shard {i} must hold {key}");
                    assert!(!lock_free, "owner shard {i} must hold the lock on {key}");
                } else {
                    assert!(
                        !holds_value && !holds_set && lock_free,
                        "shard {i} must not see {key}"
                    );
                }
            }
            c.unlock(key, LockMode::Write).unwrap();
        }
    }

    #[test]
    fn single_shard_routes_everything_to_it() {
        let (stores, c) = sharded(1);
        for i in 0..64 {
            c.set(&format!("k{i}"), vec![i]).unwrap();
        }
        assert_eq!(stores[0].key_count(), 64);
        assert_eq!(c.shard_count(), 1);
    }

    #[test]
    fn load_is_balanced_across_shards() {
        let (stores, c) = sharded(4);
        let keys = 1000;
        for i in 0..keys {
            c.set(&format!("state:key:{i}"), vec![0u8; 8]).unwrap();
        }
        let mean = keys as f64 / 4.0;
        for (i, store) in stores.iter().enumerate() {
            let n = store.key_count();
            assert!(
                (n as f64) <= 2.0 * mean && n > 0,
                "shard {i} holds {n} of {keys} keys (mean {mean})"
            );
        }
    }

    #[test]
    fn flush_clears_every_shard() {
        let (stores, c) = sharded(3);
        for i in 0..32 {
            c.set(&format!("k{i}"), vec![1]).unwrap();
        }
        c.flush().unwrap();
        for store in &stores {
            assert_eq!(store.key_count(), 0);
        }
    }

    #[test]
    fn locks_exclude_across_sharded_clients() {
        let stores: Vec<Arc<KvStore>> = (0..2).map(|_| Arc::new(KvStore::new())).collect();
        let a = ShardedKvClient::new(
            stores
                .iter()
                .map(|s| KvClient::local(Arc::clone(s)))
                .collect(),
        );
        let b = ShardedKvClient::new(
            stores
                .iter()
                .map(|s| KvClient::local(Arc::clone(s)))
                .collect(),
        );
        assert!(a.try_lock("k", LockMode::Write).unwrap());
        assert!(!b.try_lock("k", LockMode::Write).unwrap());
        a.unlock("k", LockMode::Write).unwrap();
        assert!(b.try_lock("k", LockMode::Write).unwrap());
        b.unlock("k", LockMode::Write).unwrap();
    }
}
