//! A sharded global tier: rendezvous-hashed routing over N shard servers.
//!
//! The paper's global tier is "a distributed key-value store" (§4.2); one
//! `KvServer` per cluster caps state throughput at one host's NIC and one
//! store's locks. [`ShardedKvClient`] removes that ceiling: each key —
//! value, counter, lock and set alike — is owned by exactly one shard,
//! chosen by highest-random-weight (rendezvous) hashing, so adding shards
//! multiplies aggregate tier bandwidth while an unchanged shard set never
//! moves a key.
//!
//! The shard set is a **live** property: the routing table is versioned by
//! an epoch and published through a shared [`RoutingCell`]. A client that
//! reaches a shard which no longer owns its key (mid-migration, or with a
//! stale table) gets `WrongEpoch`, waits for the cell to reach the named
//! epoch, rebuilds its per-shard connections and retries — in-flight
//! operations during a reshard are redirected, never lost.

use std::sync::Arc;
use std::time::Duration;

use faasm_net::{HostId, Nic};
use parking_lot::RwLock;

use faasm_telemetry::SpanKind;

use crate::backend::KvBackend;
use crate::client::{KvClient, KvError};
use crate::codec::{Request, Response, EPOCH_ANY};
use crate::store::{LockMode, ShardStats};

/// The sharded client's telemetry recorder (cached; see
/// [`faasm_telemetry::tier`]).
fn client_recorder() -> &'static Arc<faasm_telemetry::Recorder> {
    static REC: std::sync::OnceLock<Arc<faasm_telemetry::Recorder>> = std::sync::OnceLock::new();
    REC.get_or_init(|| faasm_telemetry::tier("kvs-client"))
}

/// One immutable version of the tier's routing: which fabric hosts serve
/// which shard index, stamped with the epoch that produced it.
///
/// Slots are stable for the life of the tier: a crashed shard is
/// *tombstoned* (its index lands in [`RoutingTable::dead`]) rather than
/// removed, so every surviving slot keeps its rendezvous weight and the
/// only keys that move are the dead slot's own — which fall to their
/// next-ranked live slot, i.e. exactly their backup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    /// The table's routing epoch (bumped once per reshard or failover).
    pub epoch: u64,
    /// Shard servers in slot order: key `k` is served by the top-ranked
    /// *live* slot of [`replica_set_live`]. Dead slots keep their entry
    /// (never routed to) so survivor weights are stable.
    pub hosts: Vec<HostId>,
    /// Replica-set size R: each key lives on the top-R live rendezvous
    /// ranks (1 = today's single-owner tier).
    pub replication: usize,
    /// Tombstoned slot indices (sorted), excluded from routing.
    pub dead: Vec<usize>,
    /// Per-slot replication endpoints: the host a *primary* forwards
    /// [`Request::Replicate`] to for each slot. Empty when `replication`
    /// is 1 (no forwarding happens).
    pub repl_hosts: Vec<HostId>,
}

impl RoutingTable {
    /// A single-owner table (replication factor 1, no tombstones) — the
    /// pre-replication shape every existing tier boots with.
    pub fn new(epoch: u64, hosts: Vec<HostId>) -> RoutingTable {
        RoutingTable {
            epoch,
            hosts,
            replication: 1,
            dead: Vec::new(),
            repl_hosts: Vec::new(),
        }
    }

    /// A replicated table: top-`replication` live ranks per key, with
    /// `repl_hosts` as the per-slot forwarding endpoints.
    pub fn replicated(
        epoch: u64,
        hosts: Vec<HostId>,
        replication: usize,
        dead: Vec<usize>,
        repl_hosts: Vec<HostId>,
    ) -> RoutingTable {
        assert!(replication >= 1, "replication factor must be at least 1");
        RoutingTable {
            epoch,
            hosts,
            replication,
            dead,
            repl_hosts,
        }
    }

    /// Whether `slot` is live (in range and not tombstoned).
    pub fn is_live(&self, slot: usize) -> bool {
        slot < self.hosts.len() && !self.dead.contains(&slot)
    }

    /// Number of live slots.
    pub fn live_count(&self) -> usize {
        self.hosts.len() - self.dead.len()
    }

    /// Live slot indices, ascending.
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.hosts.len()).filter(|s| self.is_live(*s)).collect()
    }

    /// The slot serving `key` (rank 0 of its replica set).
    pub fn primary_for(&self, key: &str) -> usize {
        if self.dead.is_empty() {
            shard_index_for(key, self.hosts.len())
        } else {
            primary_index_live(key, self.hosts.len(), &self.dead)
        }
    }

    /// `key`'s ordered replica set over this table's live slots.
    pub fn replica_set(&self, key: &str) -> Vec<usize> {
        replica_set_live(key, self.hosts.len(), &self.dead, self.replication)
    }
}

/// An epoch-versioned routing-table cell (ArcSwap-style): readers `load` a
/// cheap `Arc` snapshot, the resharding coordinator `store`s the next
/// epoch's table after migration commits. Shared by every consumer of one
/// tier, so a single publish redirects the whole cluster.
#[derive(Debug)]
pub struct RoutingCell {
    table: RwLock<Arc<RoutingTable>>,
}

impl RoutingCell {
    /// A cell initially publishing `table`.
    pub fn new(table: RoutingTable) -> Arc<RoutingCell> {
        assert!(table.live_count() > 0, "a routing table needs live shards");
        Arc::new(RoutingCell {
            table: RwLock::new(Arc::new(table)),
        })
    }

    /// The current table (an `Arc` snapshot; never blocks writers long).
    pub fn load(&self) -> Arc<RoutingTable> {
        Arc::clone(&self.table.read())
    }

    /// Publish the next table. Called by the resharding coordinator once
    /// every shard has committed the new epoch.
    pub fn store(&self, table: RoutingTable) {
        assert!(table.live_count() > 0, "a routing table needs live shards");
        *self.table.write() = Arc::new(table);
    }

    /// The published epoch.
    pub fn epoch(&self) -> u64 {
        self.table.read().epoch
    }
}

/// One epoch's connections: the table it was built from, materialised as a
/// `KvClient` per shard (all sharing the owning client's lock-owner token).
struct ShardSet {
    epoch: u64,
    clients: Vec<KvClient>,
    /// The table the set was built from (`None` for static sets, which
    /// have no tombstones and route by plain `shard_index_for`).
    table: Option<Arc<RoutingTable>>,
}

impl ShardSet {
    /// The slot index serving `key` (its primary).
    fn primary_for(&self, key: &str) -> usize {
        match &self.table {
            Some(t) => t.primary_for(key),
            None => shard_index_for(key, self.clients.len()),
        }
    }

    /// Whether `slot` may be routed to (dead slots are skipped by fan-out
    /// operations like `ping` and `flush`).
    fn is_live(&self, slot: usize) -> bool {
        match &self.table {
            Some(t) => t.is_live(slot),
            None => true,
        }
    }
}

enum Source {
    /// A fixed shard set (tests, static single-epoch deployments): no cell
    /// to refresh from, so `WrongEpoch` surfaces to the caller.
    Static(Arc<ShardSet>),
    /// Cell-connected: the client rebuilds its per-shard connections
    /// whenever the published epoch moves past the one it is holding.
    Cell {
        nic: Nic,
        cell: Arc<RoutingCell>,
        current: RwLock<Arc<ShardSet>>,
    },
}

/// How long one operation may wait, in total, for the routing cell to
/// reach an epoch a shard named in `WrongEpoch` (covers the freeze window
/// of a migration in flight) before the error surfaces to the caller.
const MAX_ROUTING_WAIT: Duration = Duration::from_secs(10);

/// A client routing each key to its owning shard.
///
/// Lock ownership is consistent across resharding: the client carries one
/// stable owner token, and rebuilt per-shard connections re-use it, so a
/// global lock taken before a migration is still this client's lock after
/// its key moves shards (the server migrates lock state owner-intact).
pub struct ShardedKvClient {
    source: Source,
    owner: u64,
}

impl std::fmt::Debug for ShardedKvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set = self.current();
        f.debug_struct("ShardedKvClient")
            .field("shards", &set.clients.len())
            .field("epoch", &set.epoch)
            .finish()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finaliser: decorrelates the per-shard weights so rendezvous
/// choice is uniform even for similar keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard owning `key` among `shard_count` shards — a pure function of
/// its arguments (rendezvous hashing: the shard with the highest mixed hash
/// of `(key, shard)` wins, so changing the shard count by one reassigns
/// only the keys whose winner changed). Shared by clients (routing),
/// servers (the ownership check behind `WrongEpoch`) and the migration
/// planner (the epoch delta); panics if `shard_count` is zero.
pub fn shard_index_for(key: &str, shard_count: usize) -> usize {
    assert!(shard_count > 0, "no shards to route to");
    let kh = fnv1a(key.as_bytes());
    let mut best = 0usize;
    let mut best_w = 0u64;
    for i in 0..shard_count {
        let w = mix(kh ^ mix(i as u64));
        if i == 0 || w > best_w {
            best = i;
            best_w = w;
        }
    }
    best
}

/// `key`'s ordered replica set: the top-`replication` shards by rendezvous
/// weight, rank 0 first. Rank 0 always equals [`shard_index_for`], so a
/// replication factor of 1 degenerates to the single-owner tier. Growing
/// the shard count by one can only insert the new shard into a set (the
/// survivors' weights are unchanged), which is the minimal-movement
/// property the migration and rebuild paths rely on.
pub fn replica_set_for(key: &str, shard_count: usize, replication: usize) -> Vec<usize> {
    replica_set_live(key, shard_count, &[], replication)
}

/// [`replica_set_for`] over the *live* slots only: tombstoned slots in
/// `dead` never rank. Because dead slots keep their indices, tombstoning a
/// slot leaves every set that did not contain it untouched, and a set that
/// did loses only that member — its backup is already rank 1, so failover
/// is a promotion, not a reshuffle.
pub fn replica_set_live(
    key: &str,
    shard_count: usize,
    dead: &[usize],
    replication: usize,
) -> Vec<usize> {
    assert!(replication >= 1, "replica set needs at least one rank");
    let kh = fnv1a(key.as_bytes());
    // (weight, slot) for every live slot, ranked descending. Shard counts
    // are small (tens); a full sort of the live slots is cheaper to reason
    // about than a partial heap and is off the per-op hot path (r == 1
    // routing uses `shard_index_for` directly).
    let mut ranked: Vec<(u64, usize)> = (0..shard_count)
        .filter(|i| !dead.contains(i))
        .map(|i| (mix(kh ^ mix(i as u64)), i))
        .collect();
    assert!(!ranked.is_empty(), "no live shards to route to");
    // Weight descending, slot ascending on (astronomically unlikely) ties —
    // the same tie-break as `shard_index_for`'s first-max scan.
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.truncate(replication);
    ranked.into_iter().map(|(_, i)| i).collect()
}

/// The top-ranked *live* slot for `key` — rank 0 of [`replica_set_live`]
/// without the allocation (the client routing hot path under tombstones).
pub fn primary_index_live(key: &str, shard_count: usize, dead: &[usize]) -> usize {
    let kh = fnv1a(key.as_bytes());
    let mut best: Option<(u64, usize)> = None;
    for i in 0..shard_count {
        if dead.contains(&i) {
            continue;
        }
        let w = mix(kh ^ mix(i as u64));
        let better = match best {
            None => true,
            Some((bw, _)) => w > bw,
        };
        if better {
            best = Some((w, i));
        }
    }
    best.expect("no live shards to route to").1
}

/// The exact key movement of an epoch change: every key in `keys` whose
/// owner differs between `old_count` and `new_count` shards, paired with
/// its new owner. Growing by one shard moves keys only *onto* the new
/// shard; shrinking by one moves only the retiring shard's keys — the
/// rendezvous minimal-movement property the migration protocol relies on.
pub fn rendezvous_delta<S: AsRef<str>>(
    keys: &[S],
    old_count: usize,
    new_count: usize,
) -> Vec<(String, usize)> {
    keys.iter()
        .filter_map(|key| {
            let key = key.as_ref();
            let new_owner = shard_index_for(key, new_count);
            (shard_index_for(key, old_count) != new_owner).then(|| (key.to_string(), new_owner))
        })
        .collect()
}

impl ShardedKvClient {
    /// A routing client over a fixed set of per-shard clients; panics if
    /// `shards` is empty. The set never refreshes — use
    /// [`ShardedKvClient::connect`] for tiers that reshard live.
    pub fn new(shards: Vec<KvClient>) -> ShardedKvClient {
        assert!(
            !shards.is_empty(),
            "sharded client needs at least one shard"
        );
        ShardedKvClient {
            source: Source::Static(Arc::new(ShardSet {
                epoch: EPOCH_ANY,
                clients: shards,
                table: None,
            })),
            owner: KvClient::fresh_owner(),
        }
    }

    /// A live-routed client over `nic`: per-shard connections are built
    /// from the cell's current table and rebuilt whenever the published
    /// epoch moves (a reshard landing mid-operation is retried against the
    /// new table instead of failing).
    pub fn connect(nic: Nic, cell: Arc<RoutingCell>) -> ShardedKvClient {
        let owner = KvClient::fresh_owner();
        let current = RwLock::new(Arc::new(build_set(&nic, &cell.load(), owner)));
        ShardedKvClient {
            source: Source::Cell { nic, cell, current },
            owner,
        }
    }

    /// The shard owning `key` among `shard_count` shards (the free function
    /// [`shard_index_for`], kept here for discoverability). Usable for
    /// placement questions without any live clients; panics if
    /// `shard_count` is zero.
    pub fn shard_index_for(key: &str, shard_count: usize) -> usize {
        shard_index_for(key, shard_count)
    }

    /// The shard index serving `key` (its primary) on this client's
    /// current table.
    pub fn shard_index(&self, key: &str) -> usize {
        self.current().primary_for(key)
    }

    /// The routing epoch this client is currently operating at
    /// ([`EPOCH_ANY`] for a static client).
    pub fn epoch(&self) -> u64 {
        self.current().epoch
    }

    /// This client's lock-owner token, stable across epoch changes.
    /// Meaningful for cell-connected clients ([`ShardedKvClient::connect`]),
    /// whose rebuilt per-shard connections all carry it; a static client
    /// ([`ShardedKvClient::new`]) locks with the *inner* clients' own
    /// tokens and never uses this one.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// The current shard set, synchronised with the routing cell: if the
    /// published epoch moved past the held one, per-shard connections are
    /// rebuilt (same owner token, new epoch stamp).
    fn current(&self) -> Arc<ShardSet> {
        match &self.source {
            Source::Static(set) => Arc::clone(set),
            Source::Cell { nic, cell, current } => {
                let held = Arc::clone(&current.read());
                let table = cell.load();
                if table.epoch == held.epoch {
                    return held;
                }
                let mut slot = current.write();
                // Double-check under the write lock: another thread may
                // have rebuilt while we waited.
                if slot.epoch != table.epoch {
                    *slot = Arc::new(build_set(nic, &table, self.owner));
                }
                Arc::clone(&slot)
            }
        }
    }

    /// Wait for the routing cell to publish at least `target` — the other
    /// half of the `WrongEpoch` handshake. The first stale hit retries
    /// immediately (the table may simply be newer than the one this
    /// operation loaded); repeated hits back off while the migration's
    /// freeze window passes.
    fn wait_for_epoch(
        &self,
        target: u64,
        attempt: &mut u32,
        waited: &mut Duration,
        err: KvError,
    ) -> Result<(), KvError> {
        let Source::Cell { cell, .. } = &self.source else {
            // No cell to refresh from: surface the stale-routing error.
            return Err(err);
        };
        // The budget bounds *every* wait path: repeated rejections at an
        // already-published epoch (a mis-paired table, a commit fan-out
        // that never lands) must surface the error, not retry forever.
        if *waited >= MAX_ROUTING_WAIT {
            return Err(err);
        }
        if *attempt == 0 && cell.epoch() >= target {
            *attempt += 1;
            return Ok(());
        }
        *attempt += 1;
        // Wait for the named epoch, but only for a bounded slice per
        // round: a failed migration rolls the shards back and the epoch
        // is *never* published, yet a re-attempt at the current table
        // succeeds immediately — so periodically retry the operation
        // instead of waiting out the full budget for an epoch that may
        // never come.
        const RETRY_SLICE: Duration = Duration::from_millis(100);
        let mut backoff = Duration::from_micros(50);
        let mut sliced = Duration::ZERO;
        while cell.epoch() < target && sliced < RETRY_SLICE {
            if *waited >= MAX_ROUTING_WAIT {
                return Err(err);
            }
            std::thread::sleep(backoff);
            *waited += backoff;
            sliced += backoff;
            backoff = (backoff * 2).min(Duration::from_millis(2));
        }
        if cell.epoch() >= target {
            // The epoch is published but this op was still rejected (e.g.
            // the commit fan-out is mid-flight): pause — longer on each
            // repeat — before retrying so repeated rejections don't spin.
            let pause =
                Duration::from_micros(100 << (*attempt).min(6)).min(Duration::from_millis(5));
            std::thread::sleep(pause);
            *waited += pause;
        }
        Ok(())
    }

    /// Run `op` against `key`'s primary shard, transparently following
    /// routing-epoch changes: `WrongEpoch` and `NotPrimary` wait out the
    /// migration (or failover) and retry on the new table; `Unavailable`
    /// (a primary that cannot reach its write quorum) and network errors
    /// against a cell-connected tier park for the *next* epoch — the
    /// liveness monitor's failover — and retry, so a shard crash is a
    /// bounded stall, not a lost operation.
    fn with_retry<T>(
        &self,
        key: &str,
        op: impl Fn(&KvClient) -> Result<T, KvError>,
    ) -> Result<T, KvError> {
        let mut attempt = 0u32;
        let mut waited = Duration::ZERO;
        loop {
            let set = self.current();
            let client = &set.clients[set.primary_for(key)];
            match op(client) {
                Err(err @ (KvError::WrongEpoch { .. } | KvError::NotPrimary { .. })) => {
                    let (epoch, retryable) = match &err {
                        KvError::WrongEpoch { epoch, .. } => (*epoch, err.clone()),
                        KvError::NotPrimary { epoch, .. } => (*epoch, err.clone()),
                        _ => unreachable!(),
                    };
                    // The park+retry is a first-class latency stage: record
                    // it as a span under the caller's active trace so epoch
                    // storms show up in the ingress call's tree.
                    let parked_ns = faasm_telemetry::now_ns();
                    let outcome = self.wait_for_epoch(epoch, &mut attempt, &mut waited, retryable);
                    let ctx = faasm_telemetry::current();
                    if !ctx.is_none() {
                        client_recorder().span(
                            SpanKind::WrongEpochRetry,
                            ctx,
                            parked_ns,
                            u64::from(attempt),
                        );
                    }
                    outcome?;
                }
                Err(KvError::Unavailable { epoch, shard_count }) => {
                    // The primary applied nothing it will ack: its quorum is
                    // short a backup. Park for the epoch that removes the
                    // dead replica (the liveness monitor's failover) and
                    // retry; the budget inside `wait_for_epoch` bounds the
                    // stall.
                    self.wait_for_epoch(
                        epoch + 1,
                        &mut attempt,
                        &mut waited,
                        KvError::Unavailable { epoch, shard_count },
                    )?;
                }
                Err(KvError::Net(e)) => {
                    // A dead or partitioned shard: if a newer table is
                    // already out, retry against it now; otherwise (cell
                    // tiers only) park for the failover epoch like
                    // `Unavailable` — the blackout between a crash and its
                    // epoch bump must redirect in-flight ops, not fail them.
                    match &self.source {
                        Source::Static(_) => return Err(KvError::Net(e)),
                        Source::Cell { cell, .. } => {
                            if cell.epoch() == set.epoch {
                                self.wait_for_epoch(
                                    set.epoch + 1,
                                    &mut attempt,
                                    &mut waited,
                                    KvError::Net(e),
                                )?;
                            }
                        }
                    }
                }
                other => return other,
            }
        }
    }

    /// Every live shard's load report, in shard-index order.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    pub fn shard_stats(&self) -> Result<Vec<ShardStats>, KvError> {
        let set = self.current();
        set.clients
            .iter()
            .enumerate()
            .filter(|(i, _)| set.is_live(*i))
            .map(|(_, c)| c.stats())
            .collect()
    }
}

/// Materialise a routing table into per-shard connections sharing `owner`.
/// Dead slots get a connection too (slot indexing stays direct) but are
/// never routed to.
fn build_set(nic: &Nic, table: &Arc<RoutingTable>, owner: u64) -> ShardSet {
    ShardSet {
        epoch: table.epoch,
        clients: table
            .hosts
            .iter()
            .map(|&host| KvClient::connect_at(nic.clone(), host, table.epoch, owner))
            .collect(),
        table: Some(Arc::clone(table)),
    }
}

impl KvBackend for ShardedKvClient {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
        self.with_retry(key, |c| c.get(key))
    }

    fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
        // Write payloads are moved into one request and retried by
        // reference: no per-attempt clone of megabyte values on the hot
        // path (the encode copy inside the client is unavoidable).
        let req = Request::Set {
            key: key.into(),
            value,
        };
        match self.with_retry(key, |c| c.request(&req))? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
        self.with_retry(key, |c| c.get_range(key, offset, len))
    }

    fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
        let req = Request::SetRange {
            key: key.into(),
            offset,
            data,
        };
        match self.with_retry(key, |c| c.request(&req))? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
        self.with_retry(key, |c| c.multi_get_range(key, spans))
    }

    fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
        let req = Request::MultiSetRange {
            key: key.into(),
            writes,
        };
        match self.with_retry(key, |c| c.request(&req))? {
            Response::Ok => Ok(()),
            _ => Err(KvError::Protocol),
        }
    }

    fn multi_get(&self, keys: &[String]) -> Result<Vec<Option<Vec<u8>>>, KvError> {
        // The batched chunk fetch: group keys by owning shard, one
        // round-trip per shard. This cannot ride `with_retry` — that loop
        // re-routes on a *single* key, but an epoch change mid-batch can
        // split a group across shards, so every retry re-groups the
        // still-pending keys under the freshly loaded table.
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        let mut attempt = 0u32;
        let mut waited = Duration::ZERO;
        while !pending.is_empty() {
            let set = self.current();
            let mut groups: std::collections::HashMap<usize, Vec<usize>> =
                std::collections::HashMap::new();
            for &i in &pending {
                groups.entry(set.primary_for(&keys[i])).or_default().push(i);
            }
            let mut parked = false;
            for (shard, idxs) in groups {
                let batch: Vec<String> = idxs.iter().map(|&i| keys[i].clone()).collect();
                match set.clients[shard].multi_get(&batch) {
                    Ok(vals) => {
                        for (&i, v) in idxs.iter().zip(vals) {
                            out[i] = v;
                        }
                        pending.retain(|i| !idxs.contains(i));
                    }
                    Err(err @ (KvError::WrongEpoch { .. } | KvError::NotPrimary { .. })) => {
                        let epoch = match &err {
                            KvError::WrongEpoch { epoch, .. }
                            | KvError::NotPrimary { epoch, .. } => *epoch,
                            _ => unreachable!(),
                        };
                        let parked_ns = faasm_telemetry::now_ns();
                        let outcome = self.wait_for_epoch(epoch, &mut attempt, &mut waited, err);
                        let ctx = faasm_telemetry::current();
                        if !ctx.is_none() {
                            client_recorder().span(
                                SpanKind::WrongEpochRetry,
                                ctx,
                                parked_ns,
                                u64::from(attempt),
                            );
                        }
                        outcome?;
                        parked = true;
                    }
                    Err(KvError::Unavailable { epoch, shard_count }) => {
                        self.wait_for_epoch(
                            epoch + 1,
                            &mut attempt,
                            &mut waited,
                            KvError::Unavailable { epoch, shard_count },
                        )?;
                        parked = true;
                    }
                    Err(KvError::Net(e)) => match &self.source {
                        Source::Static(_) => return Err(KvError::Net(e)),
                        Source::Cell { cell, .. } => {
                            if cell.epoch() == set.epoch {
                                self.wait_for_epoch(
                                    set.epoch + 1,
                                    &mut attempt,
                                    &mut waited,
                                    KvError::Net(e),
                                )?;
                            }
                            parked = true;
                        }
                    },
                    Err(other) => return Err(other),
                }
                if parked {
                    // Re-group the pending keys under the new table before
                    // touching the remaining shards of the stale grouping.
                    break;
                }
            }
        }
        Ok(out)
    }

    fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
        let req = Request::Append {
            key: key.into(),
            data,
        };
        match self.with_retry(key, |c| c.request(&req))? {
            Response::Len(n) => Ok(n),
            _ => Err(KvError::Protocol),
        }
    }

    fn del(&self, key: &str) -> Result<bool, KvError> {
        self.with_retry(key, |c| c.del(key))
    }

    fn exists(&self, key: &str) -> Result<bool, KvError> {
        self.with_retry(key, |c| c.exists(key))
    }

    fn strlen(&self, key: &str) -> Result<u64, KvError> {
        self.with_retry(key, |c| c.strlen(key))
    }

    fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
        self.with_retry(key, |c| c.incr(key, delta))
    }

    fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        self.with_retry(key, |c| c.sadd(key, member))
    }

    fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        self.with_retry(key, |c| c.srem(key, member))
    }

    fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
        self.with_retry(key, |c| c.smembers(key))
    }

    fn scard(&self, key: &str) -> Result<u64, KvError> {
        self.with_retry(key, |c| c.scard(key))
    }

    fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
        self.with_retry(key, |c| c.try_lock(key, mode))
    }

    fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        // The blocking loop lives here (not in the per-shard client) so a
        // reshard landing mid-wait re-routes the next attempt to the key's
        // new owner instead of spinning on the donor.
        let mut backoff = Duration::from_micros(50);
        loop {
            if self.try_lock(key, mode)? {
                return Ok(());
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(5));
        }
    }

    fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        self.with_retry(key, |c| c.unlock(key, mode))
    }

    fn ping(&self) -> Result<(), KvError> {
        let set = self.current();
        for (i, shard) in set.clients.iter().enumerate() {
            if set.is_live(i) {
                shard.ping()?;
            }
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), KvError> {
        let set = self.current();
        for (i, shard) in set.clients.iter().enumerate() {
            if set.is_live(i) {
                shard.flush()?;
            }
        }
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.current().clients.len()
    }

    fn shard_stats(&self) -> Result<Vec<ShardStats>, KvError> {
        ShardedKvClient::shard_stats(self)
    }

    fn routing_epoch(&self) -> u64 {
        self.epoch()
    }

    fn version_of(&self, key: &str) -> Result<u64, KvError> {
        self.with_retry(key, |c| c.version_of(key))
    }

    fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
        self.with_retry(key, |c| c.get_versioned(key))
    }

    fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
        let req = Request::Set {
            key: key.into(),
            value,
        };
        match self.with_retry(key, |c| c.request_versioned(&req))? {
            (Response::Ok, version) => Ok(version),
            _ => Err(KvError::Protocol),
        }
    }

    fn set_range_versioned(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<u64, KvError> {
        let req = Request::SetRange {
            key: key.into(),
            offset,
            data,
        };
        match self.with_retry(key, |c| c.request_versioned(&req))? {
            (Response::Ok, version) => Ok(version),
            _ => Err(KvError::Protocol),
        }
    }

    fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
        self.with_retry(key, |c| c.del_versioned(key))
    }

    fn multi_get_range_versioned(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<(Option<Vec<Vec<u8>>>, u64), KvError> {
        self.with_retry(key, |c| c.multi_get_range_versioned(key, spans))
    }

    fn multi_set_range_versioned(
        &self,
        key: &str,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> Result<u64, KvError> {
        let req = Request::MultiSetRange {
            key: key.into(),
            writes,
        };
        match self.with_retry(key, |c| c.request_versioned(&req))? {
            (Response::Ok, version) => Ok(version),
            _ => Err(KvError::Protocol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvStore;
    use std::sync::Arc;

    fn sharded(n: usize) -> (Vec<Arc<KvStore>>, ShardedKvClient) {
        let stores: Vec<Arc<KvStore>> = (0..n).map(|_| Arc::new(KvStore::new())).collect();
        let clients = stores
            .iter()
            .map(|s| KvClient::local(Arc::clone(s)))
            .collect();
        (stores, ShardedKvClient::new(clients))
    }

    #[test]
    fn routing_is_deterministic_and_covers_full_api() {
        let (_stores, c) = sharded(4);
        c.set("k", b"v".to_vec()).unwrap();
        assert_eq!(c.get("k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(c.strlen("k").unwrap(), 1);
        c.set_range("k", 1, b"w".to_vec()).unwrap();
        assert_eq!(c.get_range("k", 0, 2).unwrap(), Some(b"vw".to_vec()));
        assert_eq!(c.append("k", b"!".to_vec()).unwrap(), 3);
        assert!(c.exists("k").unwrap());
        assert_eq!(c.incr("n", 2).unwrap(), 2);
        assert!(c.sadd("s", b"m").unwrap());
        assert_eq!(c.scard("s").unwrap(), 1);
        assert_eq!(c.smembers("s").unwrap(), vec![b"m".to_vec()]);
        assert!(c.srem("s", b"m").unwrap());
        c.multi_set_range("mk", vec![(0, b"ab".to_vec()), (4, b"cd".to_vec())])
            .unwrap();
        assert_eq!(
            c.multi_get_range("mk", &[(0, 2), (4, 2)]).unwrap(),
            Some(vec![b"ab".to_vec(), b"cd".to_vec()])
        );
        assert!(c.del("k").unwrap());
        c.ping().unwrap();
    }

    #[test]
    fn every_op_on_a_key_lands_on_the_owning_shard() {
        let (stores, c) = sharded(4);
        for key in ["alpha", "mm:C", "sched:warm:u:f", "ctr:9"] {
            let owner = c.shard_index(key);
            c.set(key, b"v".to_vec()).unwrap();
            c.sadd(key, b"m").unwrap();
            // The counter is its own key with its own owner shard.
            let ctr = format!("{key}:n");
            c.incr(&ctr, 1).unwrap();
            for (i, store) in stores.iter().enumerate() {
                assert_eq!(
                    store.exists(&ctr),
                    i == c.shard_index(&ctr),
                    "counter {ctr} must live only on its owner shard"
                );
            }
            assert!(c.try_lock(key, LockMode::Write).unwrap());
            for (i, store) in stores.iter().enumerate() {
                let holds_value = store.exists(key);
                let holds_set = store.scard(key) > 0;
                // The write lock is held, so only the owner can be blocked.
                let lock_free = store.try_lock(key, LockMode::Write, u64::MAX);
                if lock_free {
                    store.unlock(key, LockMode::Write, u64::MAX);
                }
                if i == owner {
                    assert!(holds_value && holds_set, "owner shard {i} must hold {key}");
                    assert!(!lock_free, "owner shard {i} must hold the lock on {key}");
                } else {
                    assert!(
                        !holds_value && !holds_set && lock_free,
                        "shard {i} must not see {key}"
                    );
                }
            }
            c.unlock(key, LockMode::Write).unwrap();
        }
    }

    #[test]
    fn single_shard_routes_everything_to_it() {
        let (stores, c) = sharded(1);
        for i in 0..64 {
            c.set(&format!("k{i}"), vec![i]).unwrap();
        }
        assert_eq!(stores[0].key_count(), 64);
        assert_eq!(c.shard_count(), 1);
    }

    #[test]
    fn load_is_balanced_across_shards() {
        let (stores, c) = sharded(4);
        let keys = 1000;
        for i in 0..keys {
            c.set(&format!("state:key:{i}"), vec![0u8; 8]).unwrap();
        }
        let mean = keys as f64 / 4.0;
        for (i, store) in stores.iter().enumerate() {
            let n = store.key_count();
            assert!(
                (n as f64) <= 2.0 * mean && n > 0,
                "shard {i} holds {n} of {keys} keys (mean {mean})"
            );
        }
    }

    #[test]
    fn flush_clears_every_shard() {
        let (stores, c) = sharded(3);
        for i in 0..32 {
            c.set(&format!("k{i}"), vec![1]).unwrap();
        }
        c.flush().unwrap();
        for store in &stores {
            assert_eq!(store.key_count(), 0);
        }
    }

    #[test]
    fn locks_exclude_across_sharded_clients() {
        let stores: Vec<Arc<KvStore>> = (0..2).map(|_| Arc::new(KvStore::new())).collect();
        let a = ShardedKvClient::new(
            stores
                .iter()
                .map(|s| KvClient::local(Arc::clone(s)))
                .collect(),
        );
        let b = ShardedKvClient::new(
            stores
                .iter()
                .map(|s| KvClient::local(Arc::clone(s)))
                .collect(),
        );
        assert!(a.try_lock("k", LockMode::Write).unwrap());
        assert!(!b.try_lock("k", LockMode::Write).unwrap());
        a.unlock("k", LockMode::Write).unwrap();
        assert!(b.try_lock("k", LockMode::Write).unwrap());
        b.unlock("k", LockMode::Write).unwrap();
    }
}
