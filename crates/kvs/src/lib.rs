//! Distributed key-value store: the global state tier.
//!
//! This crate is the reproduction's Redis substitute (DESIGN.md substitution
//! S6). It holds the authoritative value for every state key (§4.2), serves
//! range reads/writes for chunked state, atomic counters, the scheduler's
//! warm sets, and lease-based global read/write locks — everything the
//! two-tier state architecture and the distributed scheduler need from the
//! global tier.
//!
//! Structure: [`KvStore`] is the pure state machine; [`KvServer`] serves it
//! over the `faasm-net` fabric with a hand-rolled binary codec ([`codec`]) so
//! every byte is measured; [`KvClient`] is the synchronous client used by
//! host runtimes. Consumers hold a [`SharedKv`] ([`KvBackend`] trait
//! object): a single [`KvClient`] for one-server deployments, or a
//! [`ShardedKvClient`] routing each key to one of N shard servers by
//! rendezvous hashing.

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod client;
pub mod codec;
pub mod content;
pub mod reshard;
pub mod server;
pub mod sharded;
pub mod store;
pub mod testutil;

pub use backend::{KvBackend, SharedKv};
pub use cache::{CacheConfig, CacheStats, CachedKv, Consistency};
pub use client::{KvClient, KvError};
pub use codec::{Request, Response, EPOCH_ANY};
pub use content::{chunk_key, manifest_key, Digest};
pub use server::{KvServer, ServerShaping, ShardRouting};
pub use sharded::{
    primary_index_live, rendezvous_delta, replica_set_for, replica_set_live, shard_index_for,
    RoutingCell, RoutingTable, ShardedKvClient,
};
pub use store::{KeyMigration, KvStore, LockMigration, LockMode, ShardStats};
