//! Content addressing for the snapshot distribution plane.
//!
//! Proto-Faaslet snapshots ship through the state tier as immutable,
//! hash-keyed chunks: a chunk's key *is* its SHA-256 digest, so identical
//! memory pages across proto versions collapse to one stored chunk, and a
//! fetcher can verify every byte it received against the key it asked for
//! (a corrupt or substituted chunk fails the digest check, never the
//! restore). The hash is a self-contained SHA-256 (FIPS 180-4) — the
//! workspace is offline, so no crypto crate; throughput is a few hundred
//! MB/s, far above what chunk traffic needs.

/// A 32-byte SHA-256 digest: the identity of one content-addressed chunk.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Digest of `data`.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Lower-case hex form (the chunk key suffix).
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parse a 64-char lower/upper-case hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", &self.to_hex()[..12])
    }
}

/// The state-tier key a content-addressed chunk lives under. One namespace
/// for every proto of every function — that is what makes cross-version
/// dedup automatic.
pub fn chunk_key(digest: &Digest) -> String {
    format!("proto/chunk/{}", digest.to_hex())
}

/// The state-tier key a function's proto manifest lives under (the only
/// mutable key in the plane: republishing a proto swaps the manifest, the
/// chunks it points at are immutable).
pub fn manifest_key(user: &str, function: &str) -> String {
    format!("proto/manifest/{user}/{function}")
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Pad: message || 0x80 || zeros || bit-length (big-endian u64), to a
    // multiple of 64 bytes.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut block = [0u8; 64];
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        block.copy_from_slice(chunk);
        compress(&mut h, &block);
    }
    let rem = chunks.remainder();
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] = 0x80;
    block[rem.len() + 1..].fill(0);
    if rem.len() + 1 > 56 {
        compress(&mut h, &block);
        block.fill(0);
    }
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    compress(&mut h, &block);
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress(h: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 test vectors plus padding-boundary lengths (55/56/63/64
    /// land the 0x80 byte and the length field in every branch of the
    /// padding logic).
    #[test]
    fn sha256_known_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Digest::of(input).to_hex(), *want);
        }
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![b'a'; len];
            // Self-consistency across the boundary: digest differs from the
            // next length and roundtrips through hex.
            let d = Digest::of(&data);
            assert_eq!(Digest::from_hex(&d.to_hex()), Some(d), "len {len}");
            assert_ne!(d, Digest::of(&vec![b'a'; len + 1]), "len {len}");
        }
        // The classic million-'a' vector pins the multi-block path.
        let big = vec![b'a'; 1_000_000];
        assert_eq!(
            Digest::of(&big).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_parsing_rejects_garbage() {
        assert!(Digest::from_hex("zz").is_none());
        assert!(Digest::from_hex(&"g".repeat(64)).is_none());
        let d = Digest::of(b"x");
        assert_eq!(Digest::from_hex(&d.to_hex().to_uppercase()), Some(d));
    }

    #[test]
    fn keys_are_stable() {
        let d = Digest::of(b"page");
        assert!(chunk_key(&d).starts_with("proto/chunk/"));
        assert_eq!(manifest_key("alice", "fn"), "proto/manifest/alice/fn");
    }
}
