//! Wire protocol for the KVS: a compact hand-rolled binary codec.
//!
//! Every request/response crossing the fabric is encoded through this module,
//! so the byte counts the fabric records for the global tier are faithful to
//! the protocol (no hidden zero-cost serialisation — the paper's evaluation
//! charges serialisation and transfer to the platform, §2.1).

use bytes::{Buf, BufMut};
use faasm_telemetry::TraceCtx;

use crate::store::{KeyMigration, LockMigration, LockMode, ShardStats};

/// The epoch sent by clients that do not track routing epochs (plain
/// [`KvClient`](crate::KvClient)s and test drivers). Servers still apply the
/// key-ownership check — the sentinel only opts the client out of the
/// "epochs match" fast path, never out of correctness.
pub const EPOCH_ANY: u64 = u64::MAX;

/// A client → server command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Get the value of a key.
    Get {
        /// State key.
        key: String,
    },
    /// Set the value of a key.
    Set {
        /// State key.
        key: String,
        /// New value.
        value: Vec<u8>,
    },
    /// Read a byte range of a value.
    GetRange {
        /// State key.
        key: String,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Write a byte range of a value, zero-extending it.
    SetRange {
        /// State key.
        key: String,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Append bytes to a value.
    Append {
        /// State key.
        key: String,
        /// Bytes to append.
        data: Vec<u8>,
    },
    /// Delete a key.
    Del {
        /// State key.
        key: String,
    },
    /// Does the key exist?
    Exists {
        /// State key.
        key: String,
    },
    /// Length of a value.
    StrLen {
        /// State key.
        key: String,
    },
    /// Add to an 8-byte counter.
    Incr {
        /// Counter key.
        key: String,
        /// Signed delta.
        delta: i64,
    },
    /// Add a set member.
    SAdd {
        /// Set key.
        key: String,
        /// Member bytes.
        member: Vec<u8>,
    },
    /// Remove a set member.
    SRem {
        /// Set key.
        key: String,
        /// Member bytes.
        member: Vec<u8>,
    },
    /// List set members.
    SMembers {
        /// Set key.
        key: String,
    },
    /// Set cardinality.
    SCard {
        /// Set key.
        key: String,
    },
    /// Try to acquire a global lock.
    TryLock {
        /// State key.
        key: String,
        /// Read or write.
        mode: LockMode,
        /// Caller-chosen owner token.
        owner: u64,
    },
    /// Release a global lock.
    Unlock {
        /// State key.
        key: String,
        /// Read or write.
        mode: LockMode,
        /// Owner token used at acquisition.
        owner: u64,
    },
    /// Liveness probe.
    Ping,
    /// Clear the store (tests / failure injection).
    Flush,
    /// Read several byte ranges of one value in a single round-trip (the
    /// batched chunk pull: one request for every missing chunk span).
    MultiGetRange {
        /// State key.
        key: String,
        /// `(offset, len)` spans to read.
        spans: Vec<(u64, u64)>,
    },
    /// Write several byte ranges of one value in a single round-trip (the
    /// batched chunk push), zero-extending it as needed.
    MultiSetRange {
        /// State key.
        key: String,
        /// `(offset, data)` writes to apply, in order.
        writes: Vec<(u64, Vec<u8>)>,
    },
    /// Report this shard's load (key count, value bytes, per-op counters) —
    /// the migration planner's and the tier autoscaler's skew signal.
    Stats,
    /// Begin migrating this shard toward a new routing table: the shard
    /// freezes every key it will no longer own under `shard_count` shards
    /// (answering [`Response::WrongEpoch`] until the epoch commits) and
    /// replies [`Response::Handoff`] with the complete exported state of
    /// exactly those moving keys.
    Migrate {
        /// The routing epoch being migrated to.
        epoch: u64,
        /// The shard count of the new routing table.
        shard_count: u64,
    },
    /// Install migrated key state on the receiving shard (values, set
    /// members, counters-as-values and lock state with owners preserved).
    Handoff {
        /// The moving keys' exported state.
        entries: Vec<KeyMigration>,
    },
    /// Commit a routing epoch: the shard adopts the named table as its
    /// serving table and purges every key outside its replica sets (the
    /// donor's post-handoff cleanup). Also the failover path: a commit
    /// with no pending migration installs the table directly, which is how
    /// a backup learns it has been promoted.
    EpochCommit {
        /// The committed routing epoch.
        epoch: u64,
        /// The committed slot count (dead slots included).
        shard_count: u64,
        /// Tombstoned slot indices of the committed table.
        dead: Vec<u32>,
        /// Per-slot replication endpoints (the hosts primaries forward
        /// [`Request::Replicate`] to); empty for replication factor 1.
        hosts: Vec<u32>,
    },
    /// Primary → backup state shipping: install the full exported state of
    /// the carried keys (an entry with no value, members or lock deletes
    /// the key). Shard-addressed — backups accept it even for keys they
    /// are not primary for.
    Replicate {
        /// Exported state of the replicated keys.
        entries: Vec<KeyMigration>,
    },
    /// One bounded frame of a chunked handoff: frames of one transfer
    /// carry consecutive sequence numbers and are imported as they arrive;
    /// the receiver rejects gaps or reordering.
    HandoffFrame {
        /// Transfer id (unique per migration stream).
        xfer: u64,
        /// 0-based frame sequence number within the transfer.
        seq: u32,
        /// Whether this is the transfer's final frame.
        last: bool,
        /// This frame's slice of the exported entries.
        entries: Vec<KeyMigration>,
    },
    /// Post-failover replica rebuild: the shard re-ships, for every key it
    /// is now primary for, the key's state to replica-set members added by
    /// the last tombstone (computed against `prev_dead`, the dead list
    /// *before* the failover).
    Rebuild {
        /// The tombstoned slots of the previous epoch's table.
        prev_dead: Vec<u32>,
    },
    /// Read a key's mutation-version counter without its bytes — the cheap
    /// revalidation probe a function-side cache sends when a lease expires:
    /// if the version is unchanged the cached snapshot is still current and
    /// the value bytes never cross the wire. Replies [`Response::Len`].
    VersionOf {
        /// State key.
        key: String,
    },
    /// Get several whole values in one round-trip (the snapshot plane's
    /// chunk fetch: every content-addressed chunk a shard owns, in one
    /// request). Multi-key, so the server checks ownership of *every* key
    /// and redirects if any is misrouted. Replies
    /// [`Response::MultiValues`].
    MultiGet {
        /// State keys, in reply order.
        keys: Vec<String>,
    },
}

impl Request {
    /// The state key this request routes on, if any — migration, stats and
    /// liveness commands are shard-addressed, not key-addressed, and skip
    /// the server's ownership check.
    pub fn key(&self) -> Option<&str> {
        match self {
            Request::Get { key }
            | Request::Set { key, .. }
            | Request::GetRange { key, .. }
            | Request::SetRange { key, .. }
            | Request::Append { key, .. }
            | Request::Del { key }
            | Request::Exists { key }
            | Request::StrLen { key }
            | Request::Incr { key, .. }
            | Request::SAdd { key, .. }
            | Request::SRem { key, .. }
            | Request::SMembers { key }
            | Request::SCard { key }
            | Request::TryLock { key, .. }
            | Request::Unlock { key, .. }
            | Request::MultiGetRange { key, .. }
            | Request::MultiSetRange { key, .. }
            | Request::VersionOf { key } => Some(key),
            // MultiGet routes on *all* its keys; the server special-cases
            // its ownership check instead of this single-key accessor.
            Request::Ping
            | Request::Flush
            | Request::Stats
            | Request::Migrate { .. }
            | Request::Handoff { .. }
            | Request::EpochCommit { .. }
            | Request::Replicate { .. }
            | Request::HandoffFrame { .. }
            | Request::Rebuild { .. }
            | Request::MultiGet { .. } => None,
        }
    }
}

/// A server → client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A possibly-missing value.
    Value(Option<Vec<u8>>),
    /// Success with no payload.
    Ok,
    /// A length or cardinality.
    Len(u64),
    /// A counter value.
    Int(i64),
    /// A boolean outcome.
    Bool(bool),
    /// A list of values.
    Values(Vec<Vec<u8>>),
    /// Reply to [`Request::Ping`].
    Pong,
    /// Server-side failure.
    Err(String),
    /// Reply to [`Request::MultiGetRange`]: `None` if the key is missing,
    /// otherwise one (possibly truncated) byte run per requested span.
    Spans(Option<Vec<Vec<u8>>>),
    /// The shard does not own the request's key under its current routing
    /// table: the client should refresh its table to at least `epoch` and
    /// retry against the owning shard.
    WrongEpoch {
        /// The epoch the client must reach before retrying.
        epoch: u64,
        /// The shard count of that epoch's routing table.
        shard_count: u64,
    },
    /// Reply to [`Request::Stats`].
    Stats(ShardStats),
    /// Reply to [`Request::Migrate`]: the exported state of every moving
    /// key (also the payload shape of [`Request::Handoff`]).
    Handoff(Vec<KeyMigration>),
    /// Reply to [`Request::Replicate`]: the backup installed the entries.
    ReplAck {
        /// Number of entries applied.
        applied: u64,
    },
    /// The request's key is replicated on this shard but served by a
    /// different primary: the client should refresh its table to at least
    /// `epoch` and retry — the same redirect-and-retry loop as
    /// [`Response::WrongEpoch`].
    NotPrimary {
        /// The epoch the client should reach before retrying.
        epoch: u64,
        /// The slot count of that epoch's routing table.
        shard_count: u64,
    },
    /// The primary could not assemble its write quorum (a backup is dead
    /// or partitioned): nothing was acked. The client should park for the
    /// failover epoch (`epoch + 1`) and retry.
    Unavailable {
        /// The primary's current epoch.
        epoch: u64,
        /// The slot count of that epoch's routing table.
        shard_count: u64,
    },
    /// Reply to [`Request::MultiGet`]: one possibly-missing value per
    /// requested key, in request order.
    MultiValues(Vec<Option<Vec<u8>>>),
    /// A successful keyed reply widened with the key's mutation-version
    /// counter — what a function-side cache stamps its snapshots with
    /// (reads carry the version the bytes were observed at, mutation acks
    /// the version the write installed, both taken under the same stripe
    /// lock as the operation). Never wraps an error or redirect, and never
    /// nests.
    Versioned {
        /// The key's mutation-version counter at the time of the operation.
        version: u64,
        /// The plain reply being widened.
        inner: Box<Response>,
    },
}

/// A malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.put_u32_le(b.len() as u32);
    out.put_slice(b);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError("truncated length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len {
        return Err(CodecError("truncated bytes".into()));
    }
    // Slice-and-copy rather than zero-fill-then-overwrite: chunked state
    // payloads run to megabytes, and the wasted zeroing shows up directly
    // in pull/push latency.
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    Ok(head.to_vec())
}

fn get_string(buf: &mut &[u8]) -> Result<String, CodecError> {
    String::from_utf8(get_bytes(buf)?).map_err(|_| CodecError("invalid utf-8".into()))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn put_u32_list(out: &mut Vec<u8>, list: &[u32]) {
    out.put_u32_le(list.len() as u32);
    for v in list {
        out.put_u32_le(*v);
    }
}

fn get_u32_list(buf: &mut &[u8]) -> Result<Vec<u32>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError("truncated list count".into()));
    }
    let n = buf.get_u32_le() as usize;
    // Every element costs 4 bytes, so a hostile count cannot out-size the
    // buffer it rode in on.
    if buf.remaining() < n.saturating_mul(4) {
        return Err(CodecError("list count exceeds payload".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_u32_le());
    }
    Ok(out)
}

fn mode_byte(m: LockMode) -> u8 {
    match m {
        LockMode::Read => 0,
        LockMode::Write => 1,
    }
}

fn byte_mode(b: u8) -> Result<LockMode, CodecError> {
    match b {
        0 => Ok(LockMode::Read),
        1 => Ok(LockMode::Write),
        _ => Err(CodecError("bad lock mode".into())),
    }
}

/// Payload bytes one migration entry needs on the wire.
fn entry_payload_len(e: &KeyMigration) -> usize {
    let lock = match &e.lock {
        None => 1,
        Some(LockMigration::Readers(r)) => 5 + r.len() * 16,
        Some(LockMigration::Writer { .. }) => 17,
    };
    17 + e.key.len()
        + e.value.as_ref().map_or(0, |v| v.len() + 4)
        + e.set.iter().map(|m| m.len() + 4).sum::<usize>()
        + lock
}

/// Payload bytes a request encoding will need beyond its fixed fields —
/// sizing the output buffer up front keeps megabyte-scale batched pushes
/// from paying doubling reallocations.
fn request_payload_len(req: &Request) -> usize {
    match req {
        Request::Set { key, value } => key.len() + value.len(),
        Request::SetRange { key, data, .. } | Request::Append { key, data } => {
            key.len() + data.len()
        }
        Request::SAdd { key, member } | Request::SRem { key, member } => key.len() + member.len(),
        Request::MultiGetRange { key, spans } => key.len() + spans.len() * 16,
        Request::MultiSetRange { key, writes } => {
            key.len() + writes.iter().map(|(_, d)| d.len() + 12).sum::<usize>()
        }
        Request::Get { key }
        | Request::GetRange { key, .. }
        | Request::Del { key }
        | Request::Exists { key }
        | Request::StrLen { key }
        | Request::Incr { key, .. }
        | Request::SMembers { key }
        | Request::SCard { key }
        | Request::TryLock { key, .. }
        | Request::Unlock { key, .. }
        | Request::VersionOf { key } => key.len(),
        Request::Ping | Request::Flush | Request::Stats => 0,
        Request::Migrate { .. } => 16,
        Request::EpochCommit { dead, hosts, .. } => 24 + (dead.len() + hosts.len()) * 4,
        Request::Handoff { entries } | Request::Replicate { entries } => {
            entries.iter().map(entry_payload_len).sum()
        }
        Request::HandoffFrame { entries, .. } => {
            17 + entries.iter().map(entry_payload_len).sum::<usize>()
        }
        Request::Rebuild { prev_dead } => 4 + prev_dead.len() * 4,
        Request::MultiGet { keys } => 4 + keys.iter().map(|k| k.len() + 4).sum::<usize>(),
    }
}

fn put_entry(out: &mut Vec<u8>, e: &KeyMigration) {
    put_bytes(out, e.key.as_bytes());
    match &e.value {
        Some(v) => {
            out.put_u8(1);
            put_bytes(out, v);
        }
        None => out.put_u8(0),
    }
    out.put_u32_le(e.set.len() as u32);
    for member in &e.set {
        put_bytes(out, member);
    }
    match &e.lock {
        None => out.put_u8(0),
        Some(LockMigration::Readers(readers)) => {
            out.put_u8(1);
            out.put_u32_le(readers.len() as u32);
            for (owner, remaining) in readers {
                out.put_u64_le(*owner);
                out.put_u64_le(*remaining);
            }
        }
        Some(LockMigration::Writer {
            owner,
            remaining_ms,
        }) => {
            out.put_u8(2);
            out.put_u64_le(*owner);
            out.put_u64_le(*remaining_ms);
        }
    }
    out.put_u64_le(e.version);
}

fn get_entry(buf: &mut &[u8]) -> Result<KeyMigration, CodecError> {
    let key = get_string(buf)?;
    if buf.remaining() < 1 {
        return Err(CodecError("truncated value flag".into()));
    }
    let value = match buf.get_u8() {
        0 => None,
        1 => Some(get_bytes(buf)?),
        _ => return Err(CodecError("bad value flag".into())),
    };
    if buf.remaining() < 4 {
        return Err(CodecError("truncated member count".into()));
    }
    let n = buf.get_u32_le() as usize;
    // Every member costs at least its 4-byte length prefix.
    if buf.remaining() < n.saturating_mul(4) {
        return Err(CodecError("member count exceeds payload".into()));
    }
    let mut set = Vec::with_capacity(n);
    for _ in 0..n {
        set.push(get_bytes(buf)?);
    }
    if buf.remaining() < 1 {
        return Err(CodecError("truncated lock kind".into()));
    }
    let lock = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 4 {
                return Err(CodecError("truncated reader count".into()));
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n.saturating_mul(16) {
                return Err(CodecError("reader count exceeds payload".into()));
            }
            let mut readers = Vec::with_capacity(n);
            for _ in 0..n {
                let owner = buf.get_u64_le();
                let remaining = buf.get_u64_le();
                readers.push((owner, remaining));
            }
            Some(LockMigration::Readers(readers))
        }
        2 => {
            if buf.remaining() < 16 {
                return Err(CodecError("truncated writer lock".into()));
            }
            Some(LockMigration::Writer {
                owner: buf.get_u64_le(),
                remaining_ms: buf.get_u64_le(),
            })
        }
        _ => return Err(CodecError("bad lock kind".into())),
    };
    let version = get_u64(buf)?;
    Ok(KeyMigration {
        key,
        value,
        set,
        lock,
        version,
    })
}

fn get_entries(buf: &mut &[u8]) -> Result<Vec<KeyMigration>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError("truncated entry count".into()));
    }
    let n = buf.get_u32_le() as usize;
    // Every entry costs at least 17 bytes of fixed framing (key length,
    // value flag, member count, lock kind, version), so a hostile count
    // cannot out-size the buffer it rode in on.
    if buf.remaining() < n.saturating_mul(17) {
        return Err(CodecError("entry count exceeds payload".into()));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(get_entry(buf)?);
    }
    Ok(entries)
}

/// Encode a request for the wire without epoch information
/// ([`encode_request_at`] with [`EPOCH_ANY`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    encode_request_at(req, EPOCH_ANY)
}

/// Encode a request for the wire, stamped with the client's routing epoch
/// and the calling thread's active trace context ([`faasm_telemetry::current`]) —
/// so a Faaslet's state I/O carries its ingress call's trace to the shard
/// without any per-call-site plumbing.
pub fn encode_request_at(req: &Request, epoch: u64) -> Vec<u8> {
    encode_request_traced(req, epoch, faasm_telemetry::current())
}

/// Encode a request for the wire, stamped with the client's routing epoch
/// and an explicit trace context. Every request carries the epoch so a
/// shard can recognise stale routing at a glance (and skip the per-key
/// ownership hash when epochs match); the trace context lets the shard
/// parent its apply spans under the ingress call that caused the work.
pub fn encode_request_traced(req: &Request, epoch: u64, trace: TraceCtx) -> Vec<u8> {
    let mut out = Vec::with_capacity(56 + request_payload_len(req));
    out.put_u64_le(epoch);
    out.put_u64_le(trace.trace_id);
    out.put_u64_le(trace.span_id);
    match req {
        Request::Get { key } => {
            out.put_u8(0);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::Set { key, value } => {
            out.put_u8(1);
            put_bytes(&mut out, key.as_bytes());
            put_bytes(&mut out, value);
        }
        Request::GetRange { key, offset, len } => {
            out.put_u8(2);
            put_bytes(&mut out, key.as_bytes());
            out.put_u64_le(*offset);
            out.put_u64_le(*len);
        }
        Request::SetRange { key, offset, data } => {
            out.put_u8(3);
            put_bytes(&mut out, key.as_bytes());
            out.put_u64_le(*offset);
            put_bytes(&mut out, data);
        }
        Request::Append { key, data } => {
            out.put_u8(4);
            put_bytes(&mut out, key.as_bytes());
            put_bytes(&mut out, data);
        }
        Request::Del { key } => {
            out.put_u8(5);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::Exists { key } => {
            out.put_u8(6);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::StrLen { key } => {
            out.put_u8(7);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::Incr { key, delta } => {
            out.put_u8(8);
            put_bytes(&mut out, key.as_bytes());
            out.put_i64_le(*delta);
        }
        Request::SAdd { key, member } => {
            out.put_u8(9);
            put_bytes(&mut out, key.as_bytes());
            put_bytes(&mut out, member);
        }
        Request::SRem { key, member } => {
            out.put_u8(10);
            put_bytes(&mut out, key.as_bytes());
            put_bytes(&mut out, member);
        }
        Request::SMembers { key } => {
            out.put_u8(11);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::SCard { key } => {
            out.put_u8(12);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::TryLock { key, mode, owner } => {
            out.put_u8(13);
            put_bytes(&mut out, key.as_bytes());
            out.put_u8(mode_byte(*mode));
            out.put_u64_le(*owner);
        }
        Request::Unlock { key, mode, owner } => {
            out.put_u8(14);
            put_bytes(&mut out, key.as_bytes());
            out.put_u8(mode_byte(*mode));
            out.put_u64_le(*owner);
        }
        Request::Ping => out.put_u8(15),
        Request::Flush => out.put_u8(16),
        Request::MultiGetRange { key, spans } => {
            out.put_u8(17);
            put_bytes(&mut out, key.as_bytes());
            out.put_u32_le(spans.len() as u32);
            for (offset, len) in spans {
                out.put_u64_le(*offset);
                out.put_u64_le(*len);
            }
        }
        Request::MultiSetRange { key, writes } => {
            out.put_u8(18);
            put_bytes(&mut out, key.as_bytes());
            out.put_u32_le(writes.len() as u32);
            for (offset, data) in writes {
                out.put_u64_le(*offset);
                put_bytes(&mut out, data);
            }
        }
        Request::Stats => out.put_u8(19),
        Request::Migrate { epoch, shard_count } => {
            out.put_u8(20);
            out.put_u64_le(*epoch);
            out.put_u64_le(*shard_count);
        }
        Request::Handoff { entries } => {
            out.put_u8(21);
            out.put_u32_le(entries.len() as u32);
            for entry in entries {
                put_entry(&mut out, entry);
            }
        }
        Request::EpochCommit {
            epoch,
            shard_count,
            dead,
            hosts,
        } => {
            out.put_u8(22);
            out.put_u64_le(*epoch);
            out.put_u64_le(*shard_count);
            put_u32_list(&mut out, dead);
            put_u32_list(&mut out, hosts);
        }
        Request::Replicate { entries } => {
            out.put_u8(23);
            out.put_u32_le(entries.len() as u32);
            for entry in entries {
                put_entry(&mut out, entry);
            }
        }
        Request::HandoffFrame {
            xfer,
            seq,
            last,
            entries,
        } => {
            out.put_u8(24);
            out.put_u64_le(*xfer);
            out.put_u32_le(*seq);
            out.put_u8(*last as u8);
            out.put_u32_le(entries.len() as u32);
            for entry in entries {
                put_entry(&mut out, entry);
            }
        }
        Request::Rebuild { prev_dead } => {
            out.put_u8(25);
            put_u32_list(&mut out, prev_dead);
        }
        Request::VersionOf { key } => {
            out.put_u8(26);
            put_bytes(&mut out, key.as_bytes());
        }
        Request::MultiGet { keys } => {
            out.put_u8(27);
            out.put_u32_le(keys.len() as u32);
            for key in keys {
                put_bytes(&mut out, key.as_bytes());
            }
        }
    }
    out
}

/// Decode a request, discarding the client epoch.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input.
pub fn decode_request(buf: &[u8]) -> Result<Request, CodecError> {
    decode_request_epoch(buf).map(|(req, _)| req)
}

/// Decode a request together with the client's routing epoch, discarding
/// the trace context.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input.
pub fn decode_request_epoch(buf: &[u8]) -> Result<(Request, u64), CodecError> {
    decode_request_traced(buf).map(|(req, epoch, _)| (req, epoch))
}

/// Decode a request together with the client's routing epoch and trace
/// context.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input.
pub fn decode_request_traced(mut buf: &[u8]) -> Result<(Request, u64, TraceCtx), CodecError> {
    if buf.remaining() < 24 {
        return Err(CodecError("truncated epoch".into()));
    }
    let epoch = buf.get_u64_le();
    let trace = TraceCtx {
        trace_id: buf.get_u64_le(),
        span_id: buf.get_u64_le(),
    };
    if buf.is_empty() {
        return Err(CodecError("empty request".into()));
    }
    let op = buf.get_u8();
    let req = match op {
        0 => Request::Get {
            key: get_string(&mut buf)?,
        },
        1 => Request::Set {
            key: get_string(&mut buf)?,
            value: get_bytes(&mut buf)?,
        },
        2 => Request::GetRange {
            key: get_string(&mut buf)?,
            offset: get_u64(&mut buf)?,
            len: get_u64(&mut buf)?,
        },
        3 => Request::SetRange {
            key: get_string(&mut buf)?,
            offset: get_u64(&mut buf)?,
            data: get_bytes(&mut buf)?,
        },
        4 => Request::Append {
            key: get_string(&mut buf)?,
            data: get_bytes(&mut buf)?,
        },
        5 => Request::Del {
            key: get_string(&mut buf)?,
        },
        6 => Request::Exists {
            key: get_string(&mut buf)?,
        },
        7 => Request::StrLen {
            key: get_string(&mut buf)?,
        },
        8 => {
            let key = get_string(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(CodecError("truncated delta".into()));
            }
            Request::Incr {
                key,
                delta: buf.get_i64_le(),
            }
        }
        9 => Request::SAdd {
            key: get_string(&mut buf)?,
            member: get_bytes(&mut buf)?,
        },
        10 => Request::SRem {
            key: get_string(&mut buf)?,
            member: get_bytes(&mut buf)?,
        },
        11 => Request::SMembers {
            key: get_string(&mut buf)?,
        },
        12 => Request::SCard {
            key: get_string(&mut buf)?,
        },
        13 => {
            let key = get_string(&mut buf)?;
            if buf.remaining() < 9 {
                return Err(CodecError("truncated lock".into()));
            }
            let mode = byte_mode(buf.get_u8())?;
            let owner = buf.get_u64_le();
            Request::TryLock { key, mode, owner }
        }
        14 => {
            let key = get_string(&mut buf)?;
            if buf.remaining() < 9 {
                return Err(CodecError("truncated unlock".into()));
            }
            let mode = byte_mode(buf.get_u8())?;
            let owner = buf.get_u64_le();
            Request::Unlock { key, mode, owner }
        }
        15 => Request::Ping,
        16 => Request::Flush,
        17 => {
            let key = get_string(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(CodecError("truncated span count".into()));
            }
            let n = buf.get_u32_le() as usize;
            // Guard before allocating: every span costs 16 bytes on the
            // wire, so a hostile count cannot out-size the buffer it rode
            // in on.
            if buf.remaining() < n.saturating_mul(16) {
                return Err(CodecError("span count exceeds payload".into()));
            }
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                let offset = buf.get_u64_le();
                let len = buf.get_u64_le();
                spans.push((offset, len));
            }
            Request::MultiGetRange { key, spans }
        }
        18 => {
            let key = get_string(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(CodecError("truncated write count".into()));
            }
            let n = buf.get_u32_le() as usize;
            // Each write carries at least an 8-byte offset + 4-byte length.
            if buf.remaining() < n.saturating_mul(12) {
                return Err(CodecError("write count exceeds payload".into()));
            }
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                let offset = get_u64(&mut buf)?;
                let data = get_bytes(&mut buf)?;
                writes.push((offset, data));
            }
            Request::MultiSetRange { key, writes }
        }
        19 => Request::Stats,
        20 => {
            if buf.remaining() < 16 {
                return Err(CodecError("truncated migrate".into()));
            }
            Request::Migrate {
                epoch: buf.get_u64_le(),
                shard_count: buf.get_u64_le(),
            }
        }
        21 => Request::Handoff {
            entries: get_entries(&mut buf)?,
        },
        22 => {
            if buf.remaining() < 16 {
                return Err(CodecError("truncated epoch commit".into()));
            }
            Request::EpochCommit {
                epoch: buf.get_u64_le(),
                shard_count: buf.get_u64_le(),
                dead: get_u32_list(&mut buf)?,
                hosts: get_u32_list(&mut buf)?,
            }
        }
        23 => Request::Replicate {
            entries: get_entries(&mut buf)?,
        },
        24 => {
            if buf.remaining() < 13 {
                return Err(CodecError("truncated handoff frame".into()));
            }
            let xfer = buf.get_u64_le();
            let seq = buf.get_u32_le();
            let last = match buf.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(CodecError("bad frame flag".into())),
            };
            Request::HandoffFrame {
                xfer,
                seq,
                last,
                entries: get_entries(&mut buf)?,
            }
        }
        25 => Request::Rebuild {
            prev_dead: get_u32_list(&mut buf)?,
        },
        26 => Request::VersionOf {
            key: get_string(&mut buf)?,
        },
        27 => {
            if buf.remaining() < 4 {
                return Err(CodecError("truncated key count".into()));
            }
            let n = buf.get_u32_le() as usize;
            // Every key costs at least its 4-byte length prefix.
            if buf.remaining() < n.saturating_mul(4) {
                return Err(CodecError("key count exceeds payload".into()));
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(get_string(&mut buf)?);
            }
            Request::MultiGet { keys }
        }
        other => return Err(CodecError(format!("unknown request op {other}"))),
    };
    if buf.has_remaining() {
        return Err(CodecError("trailing bytes in request".into()));
    }
    Ok((req, epoch, trace))
}

/// Payload bytes a response encoding will need beyond its fixed fields.
fn response_payload_len(resp: &Response) -> usize {
    match resp {
        Response::Value(Some(v)) => v.len(),
        Response::Values(vs) => vs.iter().map(|v| v.len() + 4).sum(),
        Response::Spans(Some(runs)) => runs.iter().map(|r| r.len() + 4).sum(),
        Response::Err(msg) => msg.len(),
        Response::MultiValues(vs) => vs
            .iter()
            .map(|v| v.as_ref().map_or(1, |b| b.len() + 5))
            .sum(),
        Response::Handoff(entries) => entries.iter().map(entry_payload_len).sum(),
        Response::Stats(_) => 128,
        Response::Versioned { inner, .. } => 9 + response_payload_len(inner),
        _ => 0,
    }
}

/// Encode a response for the wire.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + response_payload_len(resp));
    match resp {
        Response::Value(None) => out.put_u8(0),
        Response::Value(Some(v)) => {
            out.put_u8(1);
            put_bytes(&mut out, v);
        }
        Response::Ok => out.put_u8(2),
        Response::Len(n) => {
            out.put_u8(3);
            out.put_u64_le(*n);
        }
        Response::Int(n) => {
            out.put_u8(4);
            out.put_i64_le(*n);
        }
        Response::Bool(b) => {
            out.put_u8(5);
            out.put_u8(*b as u8);
        }
        Response::Values(vs) => {
            out.put_u8(6);
            out.put_u32_le(vs.len() as u32);
            for v in vs {
                put_bytes(&mut out, v);
            }
        }
        Response::Pong => out.put_u8(7),
        Response::Err(msg) => {
            out.put_u8(8);
            put_bytes(&mut out, msg.as_bytes());
        }
        Response::Spans(None) => out.put_u8(9),
        Response::Spans(Some(runs)) => {
            out.put_u8(10);
            out.put_u32_le(runs.len() as u32);
            for run in runs {
                put_bytes(&mut out, run);
            }
        }
        Response::WrongEpoch { epoch, shard_count } => {
            out.put_u8(11);
            out.put_u64_le(*epoch);
            out.put_u64_le(*shard_count);
        }
        Response::Stats(stats) => {
            out.put_u8(12);
            out.put_u64_le(stats.epoch);
            out.put_u64_le(stats.keys);
            out.put_u64_le(stats.value_bytes);
            out.put_u64_le(stats.reads);
            out.put_u64_le(stats.writes);
            out.put_u64_le(stats.lock_ops);
            out.put_u64_le(stats.wrong_epoch_redirects);
            out.put_u64_le(stats.freeze_wait_ns);
            out.put_u64_le(stats.batched_ops);
            out.put_u64_le(stats.batched_items);
            out.put_u64_le(stats.replication);
            out.put_u64_le(stats.repl_forwards);
            out.put_u64_le(stats.repl_lag_ns);
            out.put_u64_le(stats.promotions);
            out.put_u64_le(stats.primary_keys);
            out.put_u64_le(stats.backup_keys);
        }
        Response::Handoff(entries) => {
            out.put_u8(13);
            out.put_u32_le(entries.len() as u32);
            for entry in entries {
                put_entry(&mut out, entry);
            }
        }
        Response::ReplAck { applied } => {
            out.put_u8(14);
            out.put_u64_le(*applied);
        }
        Response::NotPrimary { epoch, shard_count } => {
            out.put_u8(15);
            out.put_u64_le(*epoch);
            out.put_u64_le(*shard_count);
        }
        Response::Unavailable { epoch, shard_count } => {
            out.put_u8(16);
            out.put_u64_le(*epoch);
            out.put_u64_le(*shard_count);
        }
        Response::MultiValues(vs) => {
            out.put_u8(18);
            out.put_u32_le(vs.len() as u32);
            for v in vs {
                match v {
                    Some(b) => {
                        out.put_u8(1);
                        put_bytes(&mut out, b);
                    }
                    None => out.put_u8(0),
                }
            }
        }
        Response::Versioned { version, inner } => {
            debug_assert!(
                !matches!(**inner, Response::Versioned { .. }),
                "versioned responses never nest"
            );
            out.put_u8(17);
            out.put_u64_le(*version);
            out.extend_from_slice(&encode_response(inner));
        }
    }
    out
}

/// Decode a response.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input.
pub fn decode_response(mut buf: &[u8]) -> Result<Response, CodecError> {
    if buf.is_empty() {
        return Err(CodecError("empty response".into()));
    }
    let tag = buf.get_u8();
    let resp = match tag {
        0 => Response::Value(None),
        1 => Response::Value(Some(get_bytes(&mut buf)?)),
        2 => Response::Ok,
        3 => Response::Len(get_u64(&mut buf)?),
        4 => {
            if buf.remaining() < 8 {
                return Err(CodecError("truncated int".into()));
            }
            Response::Int(buf.get_i64_le())
        }
        5 => {
            if buf.remaining() < 1 {
                return Err(CodecError("truncated bool".into()));
            }
            Response::Bool(buf.get_u8() != 0)
        }
        6 => {
            if buf.remaining() < 4 {
                return Err(CodecError("truncated list".into()));
            }
            let n = buf.get_u32_le();
            let mut vs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                vs.push(get_bytes(&mut buf)?);
            }
            Response::Values(vs)
        }
        7 => Response::Pong,
        8 => Response::Err(get_string(&mut buf)?),
        9 => Response::Spans(None),
        10 => {
            if buf.remaining() < 4 {
                return Err(CodecError("truncated span list".into()));
            }
            let n = buf.get_u32_le() as usize;
            // Every run costs at least its 4-byte length prefix.
            if buf.remaining() < n.saturating_mul(4) {
                return Err(CodecError("span list count exceeds payload".into()));
            }
            let mut runs = Vec::with_capacity(n);
            for _ in 0..n {
                runs.push(get_bytes(&mut buf)?);
            }
            Response::Spans(Some(runs))
        }
        11 => {
            if buf.remaining() < 16 {
                return Err(CodecError("truncated wrong-epoch".into()));
            }
            Response::WrongEpoch {
                epoch: buf.get_u64_le(),
                shard_count: buf.get_u64_le(),
            }
        }
        12 => {
            if buf.remaining() < 128 {
                return Err(CodecError("truncated stats".into()));
            }
            Response::Stats(ShardStats {
                epoch: buf.get_u64_le(),
                keys: buf.get_u64_le(),
                value_bytes: buf.get_u64_le(),
                reads: buf.get_u64_le(),
                writes: buf.get_u64_le(),
                lock_ops: buf.get_u64_le(),
                wrong_epoch_redirects: buf.get_u64_le(),
                freeze_wait_ns: buf.get_u64_le(),
                batched_ops: buf.get_u64_le(),
                batched_items: buf.get_u64_le(),
                replication: buf.get_u64_le(),
                repl_forwards: buf.get_u64_le(),
                repl_lag_ns: buf.get_u64_le(),
                promotions: buf.get_u64_le(),
                primary_keys: buf.get_u64_le(),
                backup_keys: buf.get_u64_le(),
            })
        }
        13 => Response::Handoff(get_entries(&mut buf)?),
        14 => Response::ReplAck {
            applied: get_u64(&mut buf)?,
        },
        15 => {
            if buf.remaining() < 16 {
                return Err(CodecError("truncated not-primary".into()));
            }
            Response::NotPrimary {
                epoch: buf.get_u64_le(),
                shard_count: buf.get_u64_le(),
            }
        }
        16 => {
            if buf.remaining() < 16 {
                return Err(CodecError("truncated unavailable".into()));
            }
            Response::Unavailable {
                epoch: buf.get_u64_le(),
                shard_count: buf.get_u64_le(),
            }
        }
        17 => {
            if buf.remaining() < 8 {
                return Err(CodecError("truncated version".into()));
            }
            let version = buf.get_u64_le();
            if buf.first() == Some(&17) {
                return Err(CodecError("nested versioned response".into()));
            }
            // The recursive decode consumes the rest of the buffer and
            // applies its own trailing-bytes check.
            let inner = decode_response(buf)?;
            return Ok(Response::Versioned {
                version,
                inner: Box::new(inner),
            });
        }
        18 => {
            if buf.remaining() < 4 {
                return Err(CodecError("truncated multi-value list".into()));
            }
            let n = buf.get_u32_le() as usize;
            // Every slot costs at least its 1-byte presence flag.
            if buf.remaining() < n {
                return Err(CodecError("multi-value count exceeds payload".into()));
            }
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 1 {
                    return Err(CodecError("truncated value flag".into()));
                }
                vs.push(match buf.get_u8() {
                    0 => None,
                    1 => Some(get_bytes(&mut buf)?),
                    _ => return Err(CodecError("bad value flag".into())),
                });
            }
            Response::MultiValues(vs)
        }
        other => return Err(CodecError(format!("unknown response tag {other}"))),
    };
    if buf.has_remaining() {
        return Err(CodecError("trailing bytes in response".into()));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Get { key: "k".into() },
            Request::Set {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            Request::GetRange {
                key: "k".into(),
                offset: 5,
                len: 10,
            },
            Request::SetRange {
                key: "k".into(),
                offset: 3,
                data: b"xyz".to_vec(),
            },
            Request::Append {
                key: "k".into(),
                data: b"tail".to_vec(),
            },
            Request::Del { key: "k".into() },
            Request::Exists { key: "k".into() },
            Request::StrLen { key: "k".into() },
            Request::Incr {
                key: "k".into(),
                delta: -3,
            },
            Request::SAdd {
                key: "s".into(),
                member: b"m".to_vec(),
            },
            Request::SRem {
                key: "s".into(),
                member: b"m".to_vec(),
            },
            Request::SMembers { key: "s".into() },
            Request::SCard { key: "s".into() },
            Request::TryLock {
                key: "k".into(),
                mode: LockMode::Read,
                owner: 42,
            },
            Request::Unlock {
                key: "k".into(),
                mode: LockMode::Write,
                owner: 42,
            },
            Request::Ping,
            Request::Flush,
            Request::MultiGetRange {
                key: "k".into(),
                spans: vec![(0, 16), (32, 16), (64, 8)],
            },
            Request::MultiGetRange {
                key: "k".into(),
                spans: vec![],
            },
            Request::MultiSetRange {
                key: "k".into(),
                writes: vec![(0, b"aa".to_vec()), (7, Vec::new()), (100, b"z".to_vec())],
            },
            Request::Stats,
            Request::Migrate {
                epoch: 4,
                shard_count: 3,
            },
            Request::Handoff {
                entries: migration_entries(),
            },
            Request::Handoff {
                entries: Vec::new(),
            },
            Request::EpochCommit {
                epoch: 4,
                shard_count: 3,
                dead: Vec::new(),
                hosts: Vec::new(),
            },
            Request::EpochCommit {
                epoch: 9,
                shard_count: 5,
                dead: vec![1, 3],
                hosts: vec![10, 11, 12, 13, 14],
            },
            Request::Replicate {
                entries: migration_entries(),
            },
            Request::Replicate {
                entries: Vec::new(),
            },
            Request::HandoffFrame {
                xfer: 77,
                seq: 2,
                last: true,
                entries: migration_entries(),
            },
            Request::HandoffFrame {
                xfer: 77,
                seq: 0,
                last: false,
                entries: Vec::new(),
            },
            Request::Rebuild {
                prev_dead: vec![0, 4],
            },
            Request::Rebuild {
                prev_dead: Vec::new(),
            },
            Request::VersionOf { key: "k".into() },
            Request::MultiGet {
                keys: vec!["a".into(), "bb".into(), String::new()],
            },
            Request::MultiGet { keys: Vec::new() },
        ]
    }

    fn migration_entries() -> Vec<KeyMigration> {
        vec![
            KeyMigration {
                key: "plain".into(),
                value: Some(b"v".to_vec()),
                set: Vec::new(),
                lock: None,
                version: 3,
            },
            KeyMigration {
                key: "locked".into(),
                value: None,
                set: vec![b"m1".to_vec(), Vec::new()],
                lock: Some(LockMigration::Writer {
                    owner: 42,
                    remaining_ms: 1000,
                }),
                version: 0,
            },
            KeyMigration {
                key: "readers".into(),
                value: Some(Vec::new()),
                set: Vec::new(),
                lock: Some(LockMigration::Readers(vec![(1, 10), (2, 20)])),
                version: u64::MAX,
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Value(None),
            Response::Value(Some(b"v".to_vec())),
            Response::Ok,
            Response::Len(9),
            Response::Int(-1),
            Response::Bool(true),
            Response::Bool(false),
            Response::Values(vec![b"a".to_vec(), b"bb".to_vec()]),
            Response::Pong,
            Response::Err("boom".into()),
            Response::Spans(None),
            Response::Spans(Some(vec![b"run1".to_vec(), Vec::new(), b"r".to_vec()])),
            Response::WrongEpoch {
                epoch: 7,
                shard_count: 4,
            },
            Response::Stats(ShardStats {
                epoch: 3,
                keys: 10,
                value_bytes: 4096,
                reads: 100,
                writes: 50,
                lock_ops: 5,
                wrong_epoch_redirects: 2,
                freeze_wait_ns: 1_500_000,
                batched_ops: 12,
                batched_items: 480,
                replication: 2,
                repl_forwards: 31,
                repl_lag_ns: 9_000,
                promotions: 1,
                primary_keys: 7,
                backup_keys: 3,
            }),
            Response::Handoff(migration_entries()),
            Response::ReplAck { applied: 6 },
            Response::NotPrimary {
                epoch: 5,
                shard_count: 3,
            },
            Response::Unavailable {
                epoch: 5,
                shard_count: 3,
            },
            Response::MultiValues(vec![Some(b"v".to_vec()), None, Some(Vec::new())]),
            Response::MultiValues(Vec::new()),
            Response::Versioned {
                version: 12,
                inner: Box::new(Response::Value(Some(b"bytes".to_vec()))),
            },
            Response::Versioned {
                version: 0,
                inner: Box::new(Response::Ok),
            },
            Response::Versioned {
                version: 7,
                inner: Box::new(Response::Spans(Some(vec![b"run".to_vec(), Vec::new()]))),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "req {req:?}");
            // The client epoch rides every request and roundtrips exactly.
            let bytes = encode_request_at(&req, 17);
            assert_eq!(
                decode_request_epoch(&bytes).unwrap(),
                (req.clone(), 17),
                "epoch-stamped {req:?}"
            );
            // So does the trace context.
            let trace = TraceCtx {
                trace_id: 0xDEAD_BEEF,
                span_id: 0xCAFE,
            };
            let bytes = encode_request_traced(&req, 17, trace);
            assert_eq!(
                decode_request_traced(&bytes).unwrap(),
                (req.clone(), 17, trace),
                "trace-stamped {req:?}"
            );
        }
    }

    #[test]
    fn thread_local_trace_is_stamped() {
        let ctx = TraceCtx::new_root();
        let guard = faasm_telemetry::set_current(ctx);
        let bytes = encode_request_at(&Request::Get { key: "k".into() }, 3);
        drop(guard);
        let (_, epoch, trace) = decode_request_traced(&bytes).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(trace, ctx);
        // Outside a traced call the stamp is the untraced sentinel.
        let bytes = encode_request_at(&Request::Get { key: "k".into() }, 3);
        let (_, _, trace) = decode_request_traced(&bytes).unwrap();
        assert!(trace.is_none());
    }

    #[test]
    fn response_roundtrip() {
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "resp {resp:?}");
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_request(&[200]).is_err());
        assert!(decode_response(&[200]).is_err());
        // Truncations.
        let bytes = encode_request(&Request::Set {
            key: "key".into(),
            value: vec![1, 2, 3],
        });
        for cut in 1..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    /// An epoch+trace-prefixed request frame starting at op `op`.
    fn raw_request(op: u8) -> Vec<u8> {
        let mut bytes = EPOCH_ANY.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]); // untraced ctx
        bytes.push(op);
        bytes
    }

    #[test]
    fn hostile_batch_counts_rejected_before_allocation() {
        // MultiGetRange claiming u32::MAX spans in a tiny payload.
        let mut bytes = raw_request(17);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'k');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // MultiSetRange with an outsized write count.
        let mut bytes = raw_request(18);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'k');
        bytes.extend_from_slice(&0x4000_0000u32.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // Spans response with a count its payload cannot back.
        let mut bytes = vec![10u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
        // Handoff with a hostile entry count.
        let mut bytes = raw_request(21);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // Handoff response with a hostile entry count.
        let mut bytes = vec![13u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
        // Replicate with a hostile entry count.
        let mut bytes = raw_request(23);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // A handoff frame with a hostile entry count.
        let mut bytes = raw_request(24);
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // EpochCommit with a hostile dead-slot count.
        let mut bytes = raw_request(22);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // Rebuild with a hostile slot count.
        let mut bytes = raw_request(25);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // MultiGet with a hostile key count.
        let mut bytes = raw_request(27);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // MultiValues response with a count its payload cannot back.
        let mut bytes = vec![18u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
        // A hostile reader count inside one entry. The reader count sits
        // before one 16-byte reader and the trailing 8-byte version.
        let req = Request::Handoff {
            entries: vec![KeyMigration {
                key: "k".into(),
                value: None,
                set: Vec::new(),
                lock: Some(LockMigration::Readers(vec![(1, 1)])),
                version: 0,
            }],
        };
        let mut bytes = encode_request(&req);
        let n = bytes.len();
        bytes[n - 28..n - 24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn versioned_responses_never_nest() {
        // tag 17, version, then another tag 17: rejected before recursion.
        let mut bytes = vec![17u8];
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.push(17);
        bytes.extend_from_slice(&6u64.to_le_bytes());
        bytes.push(2); // Ok
        assert!(decode_response(&bytes).is_err());
        // A bare versioned header with no inner reply is truncated.
        let mut bytes = vec![17u8];
        bytes.extend_from_slice(&5u64.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn batch_truncations_rejected() {
        let bytes = encode_request(&Request::MultiSetRange {
            key: "key".into(),
            writes: vec![(4, vec![1, 2, 3]), (9, vec![4])],
        });
        for cut in 1..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let bytes = encode_response(&Response::Spans(Some(vec![vec![1, 2], vec![3]])));
        for cut in 1..bytes.len() {
            assert!(decode_response(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn non_utf8_key_rejected() {
        let mut bytes = raw_request(0); // Get
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_request(&bytes).is_err());
    }
}
