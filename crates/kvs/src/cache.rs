//! Function-side state caching with consistency tiers.
//!
//! [`CachedKv`] wraps any [`SharedKv`] with a bounded per-instance cache of
//! leased value/range snapshots, so a function's working set is served from
//! host memory instead of riding the wire to the global tier on every read
//! (§4.2's local tier, generalised to cache *remote* state). It is a plain
//! [`KvBackend`], interposed at the same seam tests already use for fault
//! injection — everything above (state entries, workloads) is unchanged.
//!
//! Three per-key [`Consistency`] modes:
//!
//! * [`Eventual`](Consistency::Eventual) — serve any leased snapshot until
//!   its TTL expires; staleness is bounded by the lease, nothing else.
//! * [`ReadYourWrites`](Consistency::ReadYourWrites) — the default. Cached
//!   snapshots are stamped with the backend's routing epoch and the shard's
//!   per-key mutation version; a reshard or failover (which always bumps the
//!   epoch) or an expired lease forces a cheap `VersionOf` revalidation
//!   round-trip before the snapshot is served again. A per-key floor of the
//!   caller's own acked write versions guarantees the cache never serves
//!   bytes older than this instance's last acknowledged write, even when a
//!   concurrent miss refills the entry with pre-write bytes.
//! * [`Strong`](Consistency::Strong) — bypass the cache entirely; reads and
//!   writes ride the global tier (and its distributed locks) directly.
//!
//! Writes always go through to the global tier first and only then update
//! the cache with the exact version the shard acked (bumped under the same
//! stripe lock as the mutation), so acked-write durability and the
//! replication invariants from the replicated tier are untouched.
//!
//! The cache is bounded by bytes *and* entries with LRU eviction, and it
//! records [`SpanKind::CacheHit`]/[`CacheMiss`](SpanKind::CacheMiss)/
//! [`CacheInvalidate`](SpanKind::CacheInvalidate)/
//! [`Revalidate`](SpanKind::Revalidate) spans under the calling thread's
//! trace context.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use faasm_telemetry::SpanKind;
use parking_lot::Mutex;

use crate::backend::{KvBackend, SharedKv};
use crate::client::KvError;
use crate::store::{LockMode, ShardStats};

/// The cache's telemetry recorder (cached; `tier()` takes a registry lock).
fn cache_recorder() -> &'static Arc<faasm_telemetry::Recorder> {
    static REC: OnceLock<Arc<faasm_telemetry::Recorder>> = OnceLock::new();
    REC.get_or_init(|| faasm_telemetry::tier("kvs-cache"))
}

thread_local! {
    /// Per-call touched-key collection: a worker installs a scope around a
    /// function's execution, and every cache hit the call makes is counted
    /// against its key — the per-function working-set attribution behind
    /// the scheduler's state-affinity signal.
    static TOUCHED: std::cell::RefCell<Option<HashMap<String, u64>>> =
        const { std::cell::RefCell::new(None) };
}

/// Collect cache hits by key on this thread until the guard is finished —
/// wrap one function call to attribute its working set. Scopes do not nest;
/// a nested scope resets the outer one's counts.
pub fn touch_scope() -> TouchScope {
    TOUCHED.with(|t| *t.borrow_mut() = Some(HashMap::new()));
    TouchScope { _priv: () }
}

/// Active touched-key collection; [`finish`](TouchScope::finish) yields the
/// counts. Dropping without finishing discards them.
#[must_use = "finish() yields the collected per-key hit counts"]
pub struct TouchScope {
    _priv: (),
}

impl TouchScope {
    /// Stop collecting and return `(key, hits)` per touched key,
    /// hit-count-descending then by key.
    pub fn finish(self) -> Vec<(String, u64)> {
        let map = TOUCHED.with(|t| t.borrow_mut().take()).unwrap_or_default();
        let mut keys: Vec<(String, u64)> = map.into_iter().collect();
        keys.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        keys
    }
}

impl Drop for TouchScope {
    fn drop(&mut self) {
        TOUCHED.with(|t| {
            t.borrow_mut().take();
        });
    }
}

/// Count one cache hit for `key` in the thread's active scope, if any.
fn note_touch(key: &str) {
    TOUCHED.with(|t| {
        if let Some(map) = t.borrow_mut().as_mut() {
            *map.entry(key.to_string()).or_insert(0) += 1;
        }
    });
}

/// Per-key consistency mode for reads through a [`CachedKv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Serve leased snapshots until the TTL expires; no epoch or version
    /// checks. Staleness is bounded by the lease duration only.
    Eventual,
    /// Epoch-checked invalidation plus a floor of the caller's own acked
    /// write versions: a snapshot is served only while its routing epoch is
    /// current and its version is at least this instance's last ack for the
    /// key; epoch bumps and lease expiry trigger revalidation.
    #[default]
    ReadYourWrites,
    /// Bypass the cache; every read and write rides the global tier (and
    /// distributed locks) directly.
    Strong,
}

impl Consistency {
    /// Stable config/display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Consistency::Eventual => "eventual",
            Consistency::ReadYourWrites => "read_your_writes",
            Consistency::Strong => "strong",
        }
    }

    /// Parse a config name (`"eventual"`, `"read_your_writes"`, `"strong"`).
    pub fn parse(s: &str) -> Option<Consistency> {
        match s {
            "eventual" => Some(Consistency::Eventual),
            "read_your_writes" | "ryw" => Some(Consistency::ReadYourWrites),
            "strong" => Some(Consistency::Strong),
            _ => None,
        }
    }
}

/// Sizing and behaviour knobs for a [`CachedKv`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total cached-bytes budget (keys + values); LRU eviction keeps the
    /// cache under it. A single value larger than the budget is never
    /// cached.
    pub max_bytes: usize,
    /// Entry-count budget (second bound, so many tiny keys cannot make
    /// eviction scans unbounded).
    pub max_entries: usize,
    /// Snapshot lease: how long a cached snapshot may be served without
    /// revalidation. Bounds staleness for `Eventual` keys.
    pub lease: Duration,
    /// Mode for keys without a per-key override.
    pub default_consistency: Consistency,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_bytes: 64 << 20,
            max_entries: 65_536,
            lease: Duration::from_millis(100),
            default_consistency: Consistency::ReadYourWrites,
        }
    }
}

/// Point-in-time counters for cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Reads served from the cache (including successful revalidations).
    pub hits: u64,
    /// Reads that went to the global tier.
    pub misses: u64,
    /// Snapshots dropped because they failed a version/epoch check or were
    /// deleted.
    pub invalidations: u64,
    /// `VersionOf` probes that confirmed a snapshot and extended its lease.
    pub revalidations: u64,
    /// Snapshots dropped by the LRU to stay under budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no reads happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Cached bytes for one key: either the whole value or a set of
/// non-overlapping byte runs (offset → bytes) read at one version.
#[derive(Debug)]
enum CachedBytes {
    Full(Vec<u8>),
    Runs(BTreeMap<u64, Vec<u8>>),
}

impl CachedBytes {
    fn byte_len(&self) -> usize {
        match self {
            CachedBytes::Full(v) => v.len(),
            CachedBytes::Runs(runs) => runs.values().map(Vec::len).sum(),
        }
    }
}

/// Fixed per-entry bookkeeping charge (map nodes, LRU index, stamps).
const ENTRY_OVERHEAD: usize = 96;

#[derive(Debug)]
struct Entry {
    /// Shard mutation version the bytes were observed/acked at.
    version: u64,
    /// Routing epoch the bytes were fetched under.
    epoch: u64,
    /// Lease expiry; serving past it requires revalidation.
    expires_at: Instant,
    /// LRU stamp (key into the recency index).
    tick: u64,
    data: CachedBytes,
}

impl Entry {
    fn charged_bytes(&self, key: &str) -> usize {
        key.len() + self.data.byte_len() + ENTRY_OVERHEAD
    }
}

#[derive(Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// Recency index: tick → key, oldest first.
    lru: BTreeMap<u64, String>,
    /// Charged bytes across all entries.
    bytes: usize,
    /// Monotone LRU clock.
    tick: u64,
    /// Per-key floor of this instance's own acked write versions — the
    /// read-your-writes guarantee. Never removed while the cache lives.
    last_acked: HashMap<String, u64>,
    /// Per-key read counts since the last [`CachedKv::take_hot_keys`] —
    /// the scheduler's state-affinity signal.
    accesses: HashMap<String, u64>,
    /// Per-key consistency overrides.
    modes: HashMap<String, Consistency>,
}

impl Inner {
    fn touch(&mut self, key: &str) {
        if let Some(e) = self.map.get_mut(key) {
            self.lru.remove(&e.tick);
            self.tick += 1;
            e.tick = self.tick;
            self.lru.insert(self.tick, key.to_string());
        }
    }

    /// Remove an entry, returning whether it existed.
    fn remove(&mut self, key: &str) -> bool {
        if let Some(e) = self.map.remove(key) {
            self.lru.remove(&e.tick);
            self.bytes -= e.charged_bytes(key);
            true
        } else {
            false
        }
    }

    /// Install (or replace) an entry unless a *newer* version is already
    /// cached (a racing reader/writer may have refreshed it since the wire
    /// round-trip completed — keep the higher version, versions are
    /// monotone per key). Equal-version snapshots are combined: a full
    /// value subsumes runs, and two run sets merge (bytes at one version
    /// agree wherever they overlap).
    fn upsert(&mut self, key: &str, mut entry: Entry) {
        enum Action {
            KeepExisting,
            Replace,
        }
        let action = match self.map.get_mut(key) {
            Some(existing) if existing.version > entry.version => Action::KeepExisting,
            Some(existing) if existing.version == entry.version => {
                match (&mut existing.data, &mut entry.data) {
                    (CachedBytes::Full(_), CachedBytes::Runs(_)) => {
                        existing.expires_at = existing.expires_at.max(entry.expires_at);
                        existing.epoch = existing.epoch.max(entry.epoch);
                        Action::KeepExisting
                    }
                    (CachedBytes::Runs(old), CachedBytes::Runs(new)) => {
                        for (off, run) in std::mem::take(old) {
                            merge_run(new, off, &run);
                        }
                        Action::Replace
                    }
                    _ => Action::Replace,
                }
            }
            _ => Action::Replace,
        };
        match action {
            Action::KeepExisting => self.touch(key),
            Action::Replace => {
                self.remove(key);
                self.tick += 1;
                entry.tick = self.tick;
                self.bytes += entry.charged_bytes(key);
                self.lru.insert(self.tick, key.to_string());
                self.map.insert(key.to_string(), entry);
            }
        }
    }

    /// The caller's own-ack floor for a key.
    fn floor(&self, key: &str) -> u64 {
        self.last_acked.get(key).copied().unwrap_or(0)
    }

    fn raise_floor(&mut self, key: &str, version: u64) {
        let slot = self.last_acked.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(version);
    }

    fn mode_of(&self, key: &str, default: Consistency) -> Consistency {
        self.modes.get(key).copied().unwrap_or(default)
    }
}

/// What a locked lookup decided; wire work (if any) happens after unlock —
/// the cache never holds its lock across a round-trip.
enum Lookup<T> {
    Hit(T, u64),
    Revalidate(u64),
    Miss,
}

/// A bounded function-side cache over any [`KvBackend`] — see the module
/// docs for the consistency model.
pub struct CachedKv {
    inner: SharedKv,
    cfg: CacheConfig,
    state: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    revalidations: AtomicU64,
    evictions: AtomicU64,
}

impl CachedKv {
    /// Wrap `inner` with a cache sized/behaving per `cfg`.
    pub fn new(inner: SharedKv, cfg: CacheConfig) -> CachedKv {
        CachedKv {
            inner,
            cfg,
            state: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped backend (escape hatch for maintenance paths).
    pub fn backend(&self) -> &SharedKv {
        &self.inner
    }

    /// Override the consistency mode for one key.
    pub fn set_mode(&self, key: &str, mode: Consistency) {
        let mut s = self.state.lock();
        s.modes.insert(key.to_string(), mode);
        if mode == Consistency::Strong {
            // Strong keys never serve from cache; drop any snapshot now.
            if s.remove(key) {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The mode a key currently reads under.
    pub fn mode_of(&self, key: &str) -> Consistency {
        self.state.lock().mode_of(key, self.cfg.default_consistency)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            revalidations: self.revalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently charged against the budget.
    pub fn cached_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Drain the per-key read counters accumulated since the last call —
    /// the scheduler's per-instance hot-key signal (the affinity board maps
    /// each key to its owning shard and scores hosts by overlap).
    pub fn take_hot_keys(&self) -> Vec<(String, u64)> {
        let mut keys: Vec<(String, u64)> = std::mem::take(&mut self.state.lock().accesses)
            .into_iter()
            .collect();
        keys.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        keys
    }

    /// Drop every snapshot (own-ack floors survive — they are a correctness
    /// floor, not cached data).
    pub fn clear(&self) {
        let mut s = self.state.lock();
        let dropped = s.map.len() as u64;
        s.map.clear();
        s.lru.clear();
        s.bytes = 0;
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    fn evict_to_budget(&self, s: &mut Inner) {
        while s.bytes > self.cfg.max_bytes || s.map.len() > self.cfg.max_entries {
            let Some((&tick, _)) = s.lru.iter().next() else {
                break;
            };
            let key = s.lru.remove(&tick).expect("lru index entry just seen");
            if let Some(e) = s.map.remove(&key) {
                s.bytes -= e.charged_bytes(&key);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Validity checks shared by both read shapes. Returns `None` when the
    /// entry must be dropped (below the own-ack floor), `Some(true)` when it
    /// may be served as-is, `Some(false)` when it needs revalidation.
    fn entry_state(&self, s: &Inner, key: &str, e: &Entry, mode: Consistency) -> Option<bool> {
        if mode != Consistency::Eventual && e.version < s.floor(key) {
            // A concurrent miss refilled the cache with pre-write bytes
            // after this instance's own write acked — never serve them.
            return None;
        }
        let fresh = Instant::now() < e.expires_at;
        let epoch_ok = mode == Consistency::Eventual || e.epoch == self.inner.routing_epoch();
        Some(fresh && epoch_ok)
    }

    /// `VersionOf` probe after a lease/epoch check failed: if the shard's
    /// version still matches the snapshot, re-stamp and serve it; otherwise
    /// drop it and fall through to a miss. `read` re-extracts the served
    /// bytes from the (revalidated) entry under the relocked state.
    fn revalidate<T>(
        &self,
        key: &str,
        expected: u64,
        read: impl FnOnce(&Entry) -> Option<T>,
    ) -> Result<Option<(T, u64)>, KvError> {
        let t0 = faasm_telemetry::now_ns();
        let live = self.inner.version_of(key)?;
        cache_recorder().span(SpanKind::Revalidate, faasm_telemetry::current(), t0, live);
        let mut s = self.state.lock();
        if live == expected && live >= s.floor(key) {
            if let Some(e) = s.map.get_mut(key) {
                if e.version == expected {
                    e.expires_at = Instant::now() + self.cfg.lease;
                    e.epoch = self.inner.routing_epoch();
                    if let Some(out) = read(e) {
                        s.touch(key);
                        self.revalidations.fetch_add(1, Ordering::Relaxed);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        note_touch(key);
                        return Ok(Some((out, expected)));
                    }
                }
            }
        }
        // Stale (or raced past): drop the snapshot we probed for, but never
        // a newer one a concurrent write-through just installed.
        if s.map.get(key).is_some_and(|e| e.version == expected) && live != expected {
            s.remove(key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        Ok(None)
    }

    /// Shared read skeleton: locked lookup, optional revalidation, then a
    /// miss fetch + fill. `lookup` inspects a valid entry and either serves
    /// it or declines (forcing a miss without dropping the entry — e.g. a
    /// runs-only entry cannot serve a full-value get); `fetch` does the
    /// wire read; `fill` builds the cached bytes from a successful fetch.
    fn read<T: Clone>(
        &self,
        key: &str,
        lookup: impl Fn(&Entry) -> Option<T>,
        fetch: impl FnOnce() -> Result<(Option<T>, u64), KvError>,
        fill: impl FnOnce(&T) -> Option<CachedBytes>,
    ) -> Result<(Option<T>, u64), KvError> {
        let t0 = faasm_telemetry::now_ns();
        let mode;
        let decision: Lookup<T> = {
            let mut s = self.state.lock();
            mode = s.mode_of(key, self.cfg.default_consistency);
            if mode == Consistency::Strong {
                drop(s);
                return fetch();
            }
            *s.accesses.entry(key.to_string()).or_insert(0) += 1;
            match s.map.get(key) {
                Some(e) => match self.entry_state(&s, key, e, mode) {
                    Some(true) => match lookup(e) {
                        Some(out) => {
                            let version = e.version;
                            s.touch(key);
                            Lookup::Hit(out, version)
                        }
                        None => Lookup::Miss,
                    },
                    Some(false) => {
                        if lookup(e).is_some() {
                            Lookup::Revalidate(e.version)
                        } else {
                            Lookup::Miss
                        }
                    }
                    None => {
                        s.remove(key);
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                        Lookup::Miss
                    }
                },
                None => Lookup::Miss,
            }
        };

        match decision {
            Lookup::Hit(out, version) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                note_touch(key);
                cache_recorder().span(SpanKind::CacheHit, faasm_telemetry::current(), t0, 0);
                return Ok((Some(out), version));
            }
            Lookup::Revalidate(expected) => {
                if let Some((out, version)) = self.revalidate(key, expected, |e| lookup(e))? {
                    return Ok((Some(out), version));
                }
            }
            Lookup::Miss => {}
        }

        // Miss: capture the epoch *before* the round-trip so a reshard that
        // lands mid-flight leaves the snapshot stamped with the older epoch
        // (forcing revalidation) instead of masking it.
        let epoch = self.inner.routing_epoch();
        let (value, version) = fetch()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        match &value {
            Some(v) => {
                if mode == Consistency::Eventual || version >= s.floor(key) {
                    if let Some(data) = fill(v) {
                        let charged = key.len() + data.byte_len() + ENTRY_OVERHEAD;
                        if charged <= self.cfg.max_bytes {
                            s.upsert(
                                key,
                                Entry {
                                    version,
                                    epoch,
                                    expires_at: Instant::now() + self.cfg.lease,
                                    tick: 0,
                                    data,
                                },
                            );
                            self.evict_to_budget(&mut s);
                        }
                    }
                }
            }
            None => {
                // The key is gone at `version`; drop any older snapshot.
                if s.map.get(key).is_some_and(|e| e.version < version) {
                    s.remove(key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(s);
        cache_recorder().span(SpanKind::CacheMiss, faasm_telemetry::current(), t0, version);
        Ok((value, version))
    }

    /// Slice the requested spans out of a cached entry, or `None` when the
    /// entry cannot serve them all (runs coverage gap, or a full-get against
    /// a runs-only entry handled by the caller).
    fn slice_spans(e: &Entry, spans: &[(u64, u64)]) -> Option<Vec<Vec<u8>>> {
        match &e.data {
            CachedBytes::Full(v) => Some(
                spans
                    .iter()
                    .map(|&(off, len)| slice_range(v, off, len))
                    .collect(),
            ),
            CachedBytes::Runs(runs) => {
                let mut out = Vec::with_capacity(spans.len());
                for &(off, len) in spans {
                    let (&roff, run) = runs.range(..=off).next_back()?;
                    let end = off.checked_add(len)?;
                    if end > roff + run.len() as u64 {
                        return None;
                    }
                    let start = (off - roff) as usize;
                    out.push(run[start..start + len as usize].to_vec());
                }
                Some(out)
            }
        }
    }

    /// Write-through bookkeeping after a mutation acked at `version`:
    /// raise the own-ack floor and update/replace the snapshot with
    /// `update`'s result (`None` drops it).
    fn after_write(
        &self,
        key: &str,
        version: u64,
        mode: Consistency,
        update: impl FnOnce(Option<&Entry>) -> Option<CachedBytes>,
    ) {
        let mut s = self.state.lock();
        s.raise_floor(key, version);
        if mode == Consistency::Strong {
            if s.remove(key) {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let epoch = self.inner.routing_epoch();
        // An empty run set carries no servable bytes — treat it as a drop
        // (a Full empty value stays cacheable: empty values exist).
        let updated =
            update(s.map.get(key)).filter(|d| !matches!(d, CachedBytes::Runs(r) if r.is_empty()));
        match updated {
            Some(data) => {
                let charged = key.len() + data.byte_len() + ENTRY_OVERHEAD;
                if charged <= self.cfg.max_bytes {
                    s.upsert(
                        key,
                        Entry {
                            version,
                            epoch,
                            expires_at: Instant::now() + self.cfg.lease,
                            tick: 0,
                            data,
                        },
                    );
                    self.evict_to_budget(&mut s);
                } else if s.remove(key) {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                if s.remove(key) {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(s);
        cache_recorder().span(
            SpanKind::CacheInvalidate,
            faasm_telemetry::current(),
            faasm_telemetry::now_ns(),
            version,
        );
    }

    fn mode_for_write(&self, key: &str) -> Consistency {
        self.state.lock().mode_of(key, self.cfg.default_consistency)
    }

    /// Drop any leased snapshot of `key` without touching its floor.
    /// Acquiring a distributed lock rides through here: reads inside a
    /// critical section must observe the tier, not a lease — taking the
    /// lock promotes the key to strong consistency for the section's first
    /// read (the refetched snapshot is then safe to serve while the lock
    /// is held).
    fn drop_snapshot(&self, key: &str) {
        let mut s = self.state.lock();
        if s.remove(key) {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// [`KvStore`](crate::KvStore)'s range-read semantics, reproduced locally:
/// truncate (possibly to empty) where the value is shorter.
fn slice_range(v: &[u8], offset: u64, len: u64) -> Vec<u8> {
    let offset = offset as usize;
    if offset >= v.len() {
        return Vec::new();
    }
    let end = offset.saturating_add(len as usize).min(v.len());
    v[offset..end].to_vec()
}

/// Overlay `data` at `offset` onto a full value, zero-extending — the
/// store's `set_range` semantics, applied to a cached snapshot.
fn apply_range(v: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let offset = offset as usize;
    if v.len() < offset + data.len() {
        v.resize(offset + data.len(), 0);
    }
    v[offset..offset + data.len()].copy_from_slice(data);
}

/// Merge a byte run into a runs map, coalescing every overlapping or
/// adjacent run into one contiguous run (all runs in an entry were read or
/// written at the entry's version, so overlapping bytes agree).
fn merge_run(runs: &mut BTreeMap<u64, Vec<u8>>, off: u64, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    let mut start = off;
    let mut end = off + data.len() as u64;
    let overlapping: Vec<u64> = runs
        .range(..=end)
        .filter(|&(&roff, run)| roff + run.len() as u64 >= start)
        .map(|(&roff, _)| roff)
        .collect();
    let mut merged: Vec<(u64, Vec<u8>)> = Vec::with_capacity(overlapping.len());
    for roff in overlapping {
        let run = runs.remove(&roff).expect("run offset just seen");
        start = start.min(roff);
        end = end.max(roff + run.len() as u64);
        merged.push((roff, run));
    }
    let mut combined = vec![0u8; (end - start) as usize];
    for (roff, run) in merged {
        let at = (roff - start) as usize;
        combined[at..at + run.len()].copy_from_slice(&run);
    }
    let at = (off - start) as usize;
    combined[at..at + data.len()].copy_from_slice(data);
    runs.insert(start, combined);
}

impl KvBackend for CachedKv {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
        Ok(self.get_versioned(key)?.0)
    }

    fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
        self.read(
            key,
            |e| match &e.data {
                CachedBytes::Full(v) => Some(v.clone()),
                // A runs-only snapshot cannot prove it covers the whole
                // value; fall through to a miss (which upgrades it to Full).
                CachedBytes::Runs(_) => None,
            },
            || self.inner.get_versioned(key),
            |v| Some(CachedBytes::Full(v.clone())),
        )
    }

    fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
        self.set_versioned(key, value).map(|_| ())
    }

    fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
        let mode = self.mode_for_write(key);
        let cached = if mode == Consistency::Strong {
            Vec::new()
        } else {
            value.clone()
        };
        let version = self.inner.set_versioned(key, value)?;
        self.after_write(key, version, mode, |_| Some(CachedBytes::Full(cached)));
        Ok(version)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
        let (runs, _) = self.multi_get_range_versioned(key, &[(offset, len)])?;
        Ok(runs.map(|mut r| r.remove(0)))
    }

    fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
        self.set_range_versioned(key, offset, data).map(|_| ())
    }

    fn set_range_versioned(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<u64, KvError> {
        let mode = self.mode_for_write(key);
        let cached = if mode == Consistency::Strong {
            Vec::new()
        } else {
            data.clone()
        };
        let version = self.inner.set_range_versioned(key, offset, data)?;
        self.after_write(key, version, mode, |existing| match existing {
            // No writer slipped in between our snapshot and our ack: the
            // snapshot plus this write is exactly the value at `version`.
            Some(e) if e.version + 1 == version => match &e.data {
                CachedBytes::Full(v) => {
                    let mut v = v.clone();
                    apply_range(&mut v, offset, &cached);
                    Some(CachedBytes::Full(v))
                }
                CachedBytes::Runs(runs) => {
                    let mut runs = runs.clone();
                    merge_run(&mut runs, offset, &cached);
                    Some(CachedBytes::Runs(runs))
                }
            },
            // Intervening writers may have changed other ranges: only the
            // bytes this write installed are known at `version`.
            _ => {
                let mut runs = BTreeMap::new();
                merge_run(&mut runs, offset, &cached);
                Some(CachedBytes::Runs(runs))
            }
        });
        Ok(version)
    }

    fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
        Ok(self.multi_get_range_versioned(key, spans)?.0)
    }

    fn multi_get_range_versioned(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<(Option<Vec<Vec<u8>>>, u64), KvError> {
        self.read(
            key,
            |e| CachedKv::slice_spans(e, spans),
            || self.inner.multi_get_range_versioned(key, spans),
            |runs| {
                let mut map = BTreeMap::new();
                for (&(off, _), bytes) in spans.iter().zip(runs.iter()) {
                    merge_run(&mut map, off, bytes);
                }
                Some(CachedBytes::Runs(map))
            },
        )
    }

    fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
        self.multi_set_range_versioned(key, writes).map(|_| ())
    }

    fn multi_set_range_versioned(
        &self,
        key: &str,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> Result<u64, KvError> {
        let mode = self.mode_for_write(key);
        let cached: Vec<(u64, Vec<u8>)> = if mode == Consistency::Strong {
            Vec::new()
        } else {
            writes.clone()
        };
        let version = self.inner.multi_set_range_versioned(key, writes)?;
        self.after_write(key, version, mode, |existing| match existing {
            Some(e) if e.version + 1 == version => match &e.data {
                CachedBytes::Full(v) => {
                    let mut v = v.clone();
                    for (off, data) in &cached {
                        apply_range(&mut v, *off, data);
                    }
                    Some(CachedBytes::Full(v))
                }
                CachedBytes::Runs(runs) => {
                    let mut runs = runs.clone();
                    for (off, data) in &cached {
                        merge_run(&mut runs, *off, data);
                    }
                    Some(CachedBytes::Runs(runs))
                }
            },
            _ => {
                let mut runs = BTreeMap::new();
                for (off, data) in &cached {
                    merge_run(&mut runs, *off, data);
                }
                Some(CachedBytes::Runs(runs))
            }
        });
        Ok(version)
    }

    fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
        let mode = self.mode_for_write(key);
        let len = self.inner.append(key, data)?;
        // Appends carry no versioned ack; probe the shard so the own-ack
        // floor covers this write (the probed version is ≥ the append's —
        // over-invalidation is safe, under is not). Eventual keys skip the
        // probe and accept lease-bounded staleness.
        let version = if mode == Consistency::Eventual {
            0
        } else {
            self.inner.version_of(key)?
        };
        self.after_write(key, version, mode, |_| None);
        Ok(len)
    }

    fn del(&self, key: &str) -> Result<bool, KvError> {
        Ok(self.del_versioned(key)?.0)
    }

    fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
        let mode = self.mode_for_write(key);
        let (existed, version) = self.inner.del_versioned(key)?;
        self.after_write(key, version, mode, |_| None);
        Ok((existed, version))
    }

    fn exists(&self, key: &str) -> Result<bool, KvError> {
        self.inner.exists(key)
    }

    fn strlen(&self, key: &str) -> Result<u64, KvError> {
        self.inner.strlen(key)
    }

    fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
        // Counters share the value namespace on the shard: the mutation
        // changes the key's bytes, so drop any snapshot. Like `append`, the
        // ack carries no version — probe so the own-ack floor covers it.
        let mode = self.mode_for_write(key);
        let value = self.inner.incr(key, delta)?;
        let version = if mode == Consistency::Eventual {
            0
        } else {
            self.inner.version_of(key)?
        };
        self.after_write(key, version, mode, |_| None);
        Ok(value)
    }

    fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        self.inner.sadd(key, member)
    }

    fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        self.inner.srem(key, member)
    }

    fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
        self.inner.smembers(key)
    }

    fn scard(&self, key: &str) -> Result<u64, KvError> {
        self.inner.scard(key)
    }

    fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
        let held = self.inner.try_lock(key, mode)?;
        if held {
            self.drop_snapshot(key);
        }
        Ok(held)
    }

    fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        self.inner.lock(key, mode)?;
        self.drop_snapshot(key);
        Ok(())
    }

    fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        self.inner.unlock(key, mode)
    }

    fn ping(&self) -> Result<(), KvError> {
        self.inner.ping()
    }

    fn flush(&self) -> Result<(), KvError> {
        self.inner.flush()?;
        // The store clears its version counters too; reset the floors so a
        // flushed tier starts from a clean slate.
        let mut s = self.state.lock();
        let dropped = s.map.len() as u64;
        s.map.clear();
        s.lru.clear();
        s.bytes = 0;
        s.last_acked.clear();
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        Ok(())
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_stats(&self) -> Result<Vec<ShardStats>, KvError> {
        self.inner.shard_stats()
    }

    fn routing_epoch(&self) -> u64 {
        self.inner.routing_epoch()
    }

    fn version_of(&self, key: &str) -> Result<u64, KvError> {
        self.inner.version_of(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    /// An in-process backend over a bare store, with version support and a
    /// controllable routing epoch — wire-free harness for cache semantics.
    struct LocalKv {
        store: KvStore,
        epoch: AtomicU64,
        reads: AtomicU64,
    }

    impl LocalKv {
        fn new() -> LocalKv {
            LocalKv {
                store: KvStore::new(),
                epoch: AtomicU64::new(1),
                reads: AtomicU64::new(0),
            }
        }

        fn bump_epoch(&self) {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }

        fn wire_reads(&self) -> u64 {
            self.reads.load(Ordering::Relaxed)
        }
    }

    impl KvBackend for LocalKv {
        fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
            Ok(self.get_versioned(key)?.0)
        }
        fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            Ok(self.store.get_versioned(key))
        }
        fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
            self.set_versioned(key, value).map(|_| ())
        }
        fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
            Ok(self.store.set(key, value))
        }
        fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            Ok(self.store.get_range(key, offset as usize, len as usize))
        }
        fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
            self.set_range_versioned(key, offset, data).map(|_| ())
        }
        fn set_range_versioned(
            &self,
            key: &str,
            offset: u64,
            data: Vec<u8>,
        ) -> Result<u64, KvError> {
            Ok(self.store.set_range(key, offset as usize, &data))
        }
        fn multi_get_range(
            &self,
            key: &str,
            spans: &[(u64, u64)],
        ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
            Ok(self.multi_get_range_versioned(key, spans)?.0)
        }
        fn multi_get_range_versioned(
            &self,
            key: &str,
            spans: &[(u64, u64)],
        ) -> Result<(Option<Vec<Vec<u8>>>, u64), KvError> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            Ok(self.store.multi_get_range_versioned(key, spans))
        }
        fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
            self.multi_set_range_versioned(key, writes).map(|_| ())
        }
        fn multi_set_range_versioned(
            &self,
            key: &str,
            writes: Vec<(u64, Vec<u8>)>,
        ) -> Result<u64, KvError> {
            Ok(self.store.multi_set_range(key, &writes))
        }
        fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
            Ok(self.store.append(key, &data).0 as u64)
        }
        fn del(&self, key: &str) -> Result<bool, KvError> {
            Ok(self.del_versioned(key)?.0)
        }
        fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
            Ok(self.store.del(key))
        }
        fn exists(&self, key: &str) -> Result<bool, KvError> {
            Ok(self.store.exists(key))
        }
        fn strlen(&self, key: &str) -> Result<u64, KvError> {
            Ok(self.store.strlen(key) as u64)
        }
        fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
            Ok(self.store.incr(key, delta).0)
        }
        fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
            Ok(self.store.sadd(key, member).0)
        }
        fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
            Ok(self.store.srem(key, member).0)
        }
        fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
            Ok(self.store.smembers(key))
        }
        fn scard(&self, key: &str) -> Result<u64, KvError> {
            Ok(self.store.scard(key) as u64)
        }
        fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
            Ok(self.store.try_lock(key, mode, 0))
        }
        fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
            while !self.store.try_lock(key, mode, 0) {
                std::thread::yield_now();
            }
            Ok(())
        }
        fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
            self.store.unlock(key, mode, 0);
            Ok(())
        }
        fn ping(&self) -> Result<(), KvError> {
            Ok(())
        }
        fn flush(&self) -> Result<(), KvError> {
            self.store.flush();
            Ok(())
        }
        fn routing_epoch(&self) -> u64 {
            self.epoch.load(Ordering::Relaxed)
        }
        fn version_of(&self, key: &str) -> Result<u64, KvError> {
            Ok(self.store.version_of(key))
        }
    }

    fn harness(cfg: CacheConfig) -> (Arc<LocalKv>, CachedKv) {
        let local = Arc::new(LocalKv::new());
        let cache = CachedKv::new(local.clone() as SharedKv, cfg);
        (local, cache)
    }

    fn long_lease() -> CacheConfig {
        CacheConfig {
            lease: Duration::from_secs(3600),
            ..CacheConfig::default()
        }
    }

    #[test]
    fn repeated_reads_hit_without_wire_traffic() {
        let (local, cache) = harness(long_lease());
        cache.set("k", b"hello".to_vec()).unwrap();
        assert_eq!(local.wire_reads(), 0);
        for _ in 0..10 {
            assert_eq!(cache.get("k").unwrap(), Some(b"hello".to_vec()));
        }
        // Write-through populated the cache; no read ever hit the wire.
        assert_eq!(local.wire_reads(), 0);
        let st = cache.stats();
        assert_eq!(st.hits, 10);
        assert_eq!(st.misses, 0);
    }

    #[test]
    fn read_your_writes_after_external_write() {
        let (local, cache) = harness(long_lease());
        local.set("k", b"v1".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"v1".to_vec()));
        // Another host writes directly to the tier: this instance's cache
        // still serves the lease (eventual-within-lease is by design)...
        local.set("k", b"v2".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"v1".to_vec()));
        // ...but this instance's OWN write must never be shadowed.
        cache.set("k", b"v3".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"v3".to_vec()));
    }

    #[test]
    fn own_ack_floor_rejects_stale_refill() {
        let (local, cache) = harness(long_lease());
        cache.set("k", b"mine".to_vec()).unwrap();
        let acked = local.store.version_of("k");
        // Simulate a racing reader refilling the cache with pre-write bytes
        // observed at an older version.
        cache.clear();
        {
            let mut s = cache.state.lock();
            s.upsert(
                "k",
                Entry {
                    version: acked - 1,
                    epoch: local.routing_epoch(),
                    expires_at: Instant::now() + Duration::from_secs(3600),
                    tick: 0,
                    data: CachedBytes::Full(b"stale".to_vec()),
                },
            );
        }
        // The floor check drops the stale snapshot and refetches.
        assert_eq!(cache.get("k").unwrap(), Some(b"mine".to_vec()));
        assert!(cache.stats().invalidations >= 1);
    }

    #[test]
    fn epoch_bump_forces_revalidation() {
        let (local, cache) = harness(long_lease());
        cache.set("k", b"v1".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"v1".to_vec()));
        let probes_before = cache.stats().revalidations;

        // Reshard/failover bumps the epoch; the version is unchanged, so a
        // probe re-stamps the snapshot without refetching the bytes.
        local.bump_epoch();
        assert_eq!(cache.get("k").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(cache.stats().revalidations, probes_before + 1);
        assert_eq!(local.wire_reads(), 0);

        // Epoch bump WITH a concurrent external write: the probe sees a
        // newer version, drops the snapshot, and the read refetches.
        local.set("k", b"v2".to_vec()).unwrap();
        local.bump_epoch();
        assert_eq!(cache.get("k").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(local.wire_reads(), 1);
    }

    #[test]
    fn taking_a_lock_drops_the_lease() {
        // Lock-protected read-modify-write must observe the tier: another
        // writer updated the key, and the critical section's read after
        // acquiring the write lock may not serve the pre-lock lease.
        let (local, cache) = harness(long_lease());
        local.set("k", b"old".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"old".to_vec()));
        local.set("k", b"new".to_vec()).unwrap();
        // Still leased — eventual-within-lease is legal outside a lock.
        assert_eq!(cache.get("k").unwrap(), Some(b"old".to_vec()));
        assert!(cache.try_lock("k", LockMode::Write).unwrap());
        assert_eq!(
            cache.get("k").unwrap(),
            Some(b"new".to_vec()),
            "a read under the lock must see the tier"
        );
        cache.unlock("k", LockMode::Write).unwrap();
        // Blocking acquisition drops the snapshot the same way.
        local.set("k", b"newer".to_vec()).unwrap();
        cache.lock("k", LockMode::Write).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"newer".to_vec()));
        cache.unlock("k", LockMode::Write).unwrap();
    }

    #[test]
    fn lease_expiry_revalidates() {
        let cfg = CacheConfig {
            lease: Duration::ZERO,
            ..CacheConfig::default()
        };
        let (local, cache) = harness(cfg);
        local.set("k", b"v".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"v".to_vec()));
        // Every subsequent read finds the lease expired and revalidates —
        // version unchanged, so the bytes never re-cross the wire.
        for _ in 0..3 {
            assert_eq!(cache.get("k").unwrap(), Some(b"v".to_vec()));
        }
        assert_eq!(local.wire_reads(), 1);
        assert_eq!(cache.stats().revalidations, 3);
    }

    #[test]
    fn eventual_serves_lease_strong_bypasses() {
        let (local, cache) = harness(long_lease());
        cache.set_mode("e", Consistency::Eventual);
        cache.set_mode("s", Consistency::Strong);

        local.set("e", b"e1".to_vec()).unwrap();
        assert_eq!(cache.get("e").unwrap(), Some(b"e1".to_vec()));
        local.set("e", b"e2".to_vec()).unwrap();
        local.bump_epoch(); // Eventual ignores epochs within the lease.
        assert_eq!(cache.get("e").unwrap(), Some(b"e1".to_vec()));

        local.set("s", b"s1".to_vec()).unwrap();
        let before = local.wire_reads();
        assert_eq!(cache.get("s").unwrap(), Some(b"s1".to_vec()));
        assert_eq!(cache.get("s").unwrap(), Some(b"s1".to_vec()));
        // Strong never serves from cache: every read hit the wire.
        assert_eq!(local.wire_reads(), before + 2);
        assert_eq!(cache.stats().hits, 1); // only the leased "e" hit
    }

    #[test]
    fn range_reads_cache_runs_and_serve_subspans() {
        let (local, cache) = harness(long_lease());
        local.set("k", (0u8..=255).collect()).unwrap();
        let spans = [(0u64, 64u64), (128, 64)];
        let runs = cache.multi_get_range("k", &spans).unwrap().unwrap();
        assert_eq!(runs[0], (0u8..64).collect::<Vec<u8>>());
        assert_eq!(runs[1], (128u8..192).collect::<Vec<u8>>());
        let before = local.wire_reads();
        // Sub-spans of cached runs are served locally...
        assert_eq!(
            cache.get_range("k", 10, 20).unwrap(),
            Some((10u8..30).collect::<Vec<u8>>())
        );
        assert_eq!(
            cache.get_range("k", 140, 8).unwrap(),
            Some((140u8..148).collect::<Vec<u8>>())
        );
        assert_eq!(local.wire_reads(), before);
        // ...an uncovered span goes to the wire.
        assert_eq!(
            cache.get_range("k", 64, 8).unwrap(),
            Some((64u8..72).collect::<Vec<u8>>())
        );
        assert_eq!(local.wire_reads(), before + 1);
    }

    #[test]
    fn range_write_through_keeps_full_snapshot_current() {
        let (local, cache) = harness(long_lease());
        cache.set("k", vec![0u8; 16]).unwrap();
        cache.set_range("k", 4, vec![9u8; 4]).unwrap();
        let mut want = vec![0u8; 16];
        want[4..8].copy_from_slice(&[9; 4]);
        assert_eq!(cache.get("k").unwrap(), Some(want.clone()));
        assert_eq!(local.wire_reads(), 0);
        // And the cached snapshot matches the authoritative value exactly.
        assert_eq!(local.store.get("k"), Some(want));
    }

    #[test]
    fn intervening_writer_downgrades_snapshot_to_runs() {
        let (local, cache) = harness(long_lease());
        cache.set("k", vec![0u8; 16]).unwrap(); // cached Full at v1
        local.store.set_range("k", 0, &[7u8; 4]); // external write → v2
        cache.set_range("k", 8, vec![9u8; 4]).unwrap(); // acked v3 ≠ v1+1
                                                        // The cache must not serve a full value stitched from v1 bytes.
        let full = cache.get("k").unwrap().unwrap();
        assert_eq!(full, local.store.get("k").unwrap());
        // But the bytes this instance just wrote were servable locally.
        assert_eq!(cache.get_range("k", 8, 4).unwrap(), Some(vec![9u8; 4]));
    }

    #[test]
    fn delete_invalidates_and_floor_survives() {
        let (local, cache) = harness(long_lease());
        cache.set("k", b"v".to_vec()).unwrap();
        assert!(cache.del("k").unwrap());
        assert_eq!(cache.get("k").unwrap(), None);
        // Recreation through the tier is visible (version monotone past the
        // deletion's floor).
        local.set("k", b"back".to_vec()).unwrap();
        assert_eq!(cache.get("k").unwrap(), Some(b"back".to_vec()));
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let cfg = CacheConfig {
            max_bytes: 3 * (1 + 1024 + ENTRY_OVERHEAD),
            max_entries: 1024,
            ..long_lease()
        };
        let (local, cache) = harness(cfg);
        for k in ["a", "b", "c", "d"] {
            local.set(k, vec![1u8; 1024]).unwrap();
        }
        for k in ["a", "b", "c"] {
            cache.get(k).unwrap();
        }
        cache.get("a").unwrap(); // refresh "a": "b" is now oldest
        cache.get("d").unwrap(); // over budget → evict "b"
        assert_eq!(cache.cached_entries(), 3);
        assert_eq!(cache.stats().evictions, 1);
        let before = local.wire_reads();
        cache.get("a").unwrap();
        cache.get("c").unwrap();
        cache.get("d").unwrap();
        assert_eq!(local.wire_reads(), before); // survivors still cached
        cache.get("b").unwrap();
        assert_eq!(local.wire_reads(), before + 1); // "b" was evicted
    }

    #[test]
    fn oversized_values_are_never_cached() {
        let cfg = CacheConfig {
            max_bytes: 512,
            ..long_lease()
        };
        let (local, cache) = harness(cfg);
        cache.set("big", vec![1u8; 4096]).unwrap();
        assert_eq!(cache.cached_entries(), 0);
        assert_eq!(cache.get("big").unwrap(), Some(vec![1u8; 4096]));
        assert_eq!(cache.cached_entries(), 0);
        assert_eq!(local.wire_reads(), 1);
    }

    #[test]
    fn hot_keys_drain_for_affinity() {
        let (local, cache) = harness(long_lease());
        local.set("hot", b"h".to_vec()).unwrap();
        local.set("cold", b"c".to_vec()).unwrap();
        for _ in 0..5 {
            cache.get("hot").unwrap();
        }
        cache.get("cold").unwrap();
        let keys = cache.take_hot_keys();
        assert_eq!(keys[0], ("hot".to_string(), 5));
        assert_eq!(keys[1], ("cold".to_string(), 1));
        assert!(cache.take_hot_keys().is_empty()); // drained
    }

    #[test]
    fn touch_scope_attributes_hits_per_call() {
        let (local, cache) = harness(long_lease());
        local.set("a", b"x".to_vec()).unwrap();
        local.set("b", b"y".to_vec()).unwrap();
        cache.get("a").unwrap(); // misses outside any scope
        cache.get("b").unwrap();
        let scope = touch_scope();
        for _ in 0..3 {
            cache.get("a").unwrap();
        }
        cache.get("b").unwrap();
        let touched = scope.finish();
        assert_eq!(touched, vec![("a".to_string(), 3), ("b".to_string(), 1)]);
        // Outside a scope, hits are not collected anywhere.
        cache.get("a").unwrap();
        assert!(touch_scope().finish().is_empty());
    }

    #[test]
    fn merge_run_coalesces_overlaps() {
        let mut runs = BTreeMap::new();
        merge_run(&mut runs, 0, &[1, 1, 1, 1]);
        merge_run(&mut runs, 8, &[3, 3, 3, 3]);
        assert_eq!(runs.len(), 2);
        // Bridge the gap: all three coalesce into one run.
        merge_run(&mut runs, 2, &[2; 8]);
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs.get(&0).unwrap(),
            &vec![1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3]
        );
    }
}
