//! The KVS server: serves a [`KvStore`] over the fabric.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use faasm_net::{Envelope, Nic, TokenBucket, MSG_HEADER_BYTES};
use faasm_telemetry::{SpanKind, TraceCtx};
use parking_lot::RwLock;

use crate::codec::{decode_request_traced, encode_response, Request, Response};
use crate::sharded::shard_index_for;
use crate::store::KvStore;

/// The state tier's telemetry recorder (shared by every shard server in the
/// process; cached so the hot path never touches the registry lock).
fn shard_recorder() -> &'static Arc<faasm_telemetry::Recorder> {
    static REC: std::sync::OnceLock<Arc<faasm_telemetry::Recorder>> = std::sync::OnceLock::new();
    REC.get_or_init(|| faasm_telemetry::tier("state-shard"))
}

#[derive(Debug, Clone, Copy)]
struct RouteState {
    epoch: u64,
    shard_count: usize,
    index: usize,
    /// A migration in flight: the `(epoch, shard_count)` being moved to.
    /// While pending, the ownership check uses the *new* table — moving
    /// keys are frozen (rejected with `WrongEpoch`) so no write can land
    /// on the donor after its export snapshot and be lost.
    pending: Option<(u64, usize)>,
}

/// One shard server's view of the cluster routing table: which epoch it
/// serves, how many shards that table has, and which index this shard is.
///
/// Drives the ownership check behind [`Response::WrongEpoch`]: a keyed
/// request whose key does not rendezvous-route to this shard under the
/// effective table is rejected, so a client with a stale table can never
/// read or write the wrong shard.
pub struct ShardRouting {
    state: RwLock<RouteState>,
    /// Serialises migration state changes against in-flight keyed ops:
    /// every keyed request holds a read guard across its ownership check
    /// **and** store apply, while `Migrate`/`EpochCommit` hold the write
    /// guard across freeze + export / commit + purge. Without it, a worker
    /// that passed the check before `Migrate` landed could apply a write
    /// *after* the export snapshot — an acknowledged write silently lost.
    gate: RwLock<()>,
    wrong_epoch: AtomicU64,
    /// Total ns keyed requests spent blocked on `gate` while a migration
    /// held the write side (the freeze cost clients actually observed).
    freeze_wait: AtomicU64,
}

impl std::fmt::Debug for ShardRouting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = *self.state.read();
        f.debug_struct("ShardRouting")
            .field("epoch", &s.epoch)
            .field("shard_count", &s.shard_count)
            .field("index", &s.index)
            .field("pending", &s.pending)
            .finish()
    }
}

impl ShardRouting {
    /// A routing view serving `(epoch, shard_count)` as shard `index`.
    pub fn new(epoch: u64, shard_count: usize, index: usize) -> Arc<ShardRouting> {
        assert!(shard_count > 0, "a routed shard needs a non-empty table");
        Arc::new(ShardRouting {
            state: RwLock::new(RouteState {
                epoch,
                shard_count,
                index,
                pending: None,
            }),
            gate: RwLock::new(()),
            wrong_epoch: AtomicU64::new(0),
            freeze_wait: AtomicU64::new(0),
        })
    }

    /// The epoch this shard currently serves.
    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    /// The shard count of the serving table.
    pub fn shard_count(&self) -> usize {
        self.state.read().shard_count
    }

    /// This shard's index in the table.
    pub fn index(&self) -> usize {
        self.state.read().index
    }

    /// Keyed requests rejected with `WrongEpoch` so far.
    pub fn wrong_epoch_count(&self) -> u64 {
        self.wrong_epoch.load(Ordering::Relaxed)
    }

    /// Total ns keyed requests have spent blocked on the migration freeze
    /// gate.
    pub fn freeze_wait_ns(&self) -> u64 {
        self.freeze_wait.load(Ordering::Relaxed)
    }

    /// Ownership check for one keyed request: `None` when this shard owns
    /// `key` under the effective table, else the `(epoch, shard_count)` the
    /// client must reach before retrying.
    fn check(&self, key: &str, client_epoch: u64) -> Option<(u64, u64)> {
        let s = *self.state.read();
        if s.pending.is_none() && client_epoch == s.epoch {
            // The client routed with this exact table, so the pure routing
            // function already sent the key to its owner — skip the hash.
            return None;
        }
        let (epoch, count) = s.pending.unwrap_or((s.epoch, s.shard_count));
        if s.index < count && shard_index_for(key, count) == s.index {
            return None;
        }
        self.wrong_epoch.fetch_add(1, Ordering::Relaxed);
        Some((epoch, count as u64))
    }

    fn begin(&self, epoch: u64, shard_count: usize) {
        self.state.write().pending = Some((epoch, shard_count));
    }

    fn commit(&self, epoch: u64, shard_count: usize) {
        let mut s = self.state.write();
        s.epoch = epoch;
        s.shard_count = shard_count;
        s.pending = None;
    }
}

/// A running KVS server: worker threads draining a NIC and applying
/// commands to a shared store.
pub struct KvServer {
    store: Arc<KvStore>,
    routing: Option<Arc<ShardRouting>>,
    nic: Nic,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

/// Per-server NIC bandwidth shaping: request and response bytes debit one
/// token bucket shared by all worker threads — the `tc` cap on the global
/// tier host's interface (the paper's testbed runs the tier on 1 Gbps
/// links, so a shard's NIC, not its CPU, is the contended resource).
pub type ServerShaping = Option<Arc<TokenBucket>>;

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("host", &self.nic.id())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl KvServer {
    /// Start a server on `nic` with `workers` threads.
    pub fn start(nic: Nic, workers: usize) -> KvServer {
        KvServer::start_with_store(nic, workers, Arc::new(KvStore::new()))
    }

    /// Start a server over an existing store (used to simulate restart with
    /// retained state, or to inspect state from tests).
    pub fn start_with_store(nic: Nic, workers: usize, store: Arc<KvStore>) -> KvServer {
        KvServer::start_shaped(nic, workers, store, None)
    }

    /// [`KvServer::start_with_store`] with optional NIC bandwidth shaping:
    /// every served request debits its request + response bytes from the
    /// bucket before the reply leaves the host.
    pub fn start_shaped(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        shaping: ServerShaping,
    ) -> KvServer {
        KvServer::start_full(nic, workers, store, shaping, None)
    }

    /// Start a shard server with an explicit routing view: keyed requests
    /// for keys this shard does not own answer [`Response::WrongEpoch`],
    /// and the server participates in the `Migrate`/`Handoff`/`EpochCommit`
    /// resharding protocol.
    pub fn start_routed(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        routing: Arc<ShardRouting>,
    ) -> KvServer {
        KvServer::start_full(nic, workers, store, None, Some(routing))
    }

    /// The fully general constructor: store, shaping and routing view.
    pub fn start_full(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        shaping: ServerShaping,
        routing: Option<Arc<ShardRouting>>,
    ) -> KvServer {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..workers.max(1))
            .map(|_| {
                let nic = nic.clone();
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let shaping = shaping.clone();
                let routing = routing.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match nic.recv_timeout(Duration::from_millis(50)) {
                            Ok(env) => {
                                serve_one(&store, routing.as_deref(), &nic, env, shaping.as_deref())
                            }
                            Err(faasm_net::NetError::Timeout) => continue,
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();
        KvServer {
            store,
            routing,
            nic,
            stop,
            workers: handles,
        }
    }

    /// The server's host id on the fabric.
    pub fn host_id(&self) -> faasm_net::HostId {
        self.nic.id()
    }

    /// Direct access to the underlying store (test/metric inspection).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The shard's routing view, if it serves one.
    pub fn routing(&self) -> Option<&Arc<ShardRouting>> {
        self.routing.as_ref()
    }

    /// Stop the worker threads and wait for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn serve_one(
    store: &KvStore,
    routing: Option<&ShardRouting>,
    nic: &Nic,
    env: Envelope,
    shaper: Option<&TokenBucket>,
) {
    let resp = match decode_request_traced(&env.payload) {
        Ok((req, epoch, trace)) => apply_traced(store, routing, req, epoch, trace),
        Err(e) => Response::Err(e.to_string()),
    };
    // One-way requests (fire-and-forget writes) carry no reply tag.
    if env.reply_tag.is_some() {
        let bytes = encode_response(&resp);
        if let Some(bucket) = shaper {
            bucket.acquire(env.payload.len() + bytes.len() + 2 * MSG_HEADER_BYTES as usize);
        }
        let _ = nic.respond(&env, bytes);
    } else if let Some(bucket) = shaper {
        bucket.acquire(env.payload.len() + MSG_HEADER_BYTES as usize);
    }
}

/// The largest value a single range write may create. Range writes
/// zero-extend, so without a cap one hostile frame with an offset near
/// `u64::MAX` would panic (or OOM) the worker thread that served it —
/// the codec's count guards bound the *message*, this bounds the *store*.
pub const MAX_VALUE_BYTES: u64 = 256 * 1024 * 1024;

fn write_in_bounds(offset: u64, len: usize) -> bool {
    offset.saturating_add(len as u64) <= MAX_VALUE_BYTES
}

/// Apply one command to the store (exposed for deterministic unit tests).
pub fn apply(store: &KvStore, req: Request) -> Response {
    match req {
        Request::Get { key } => Response::Value(store.get(&key)),
        Request::Set { key, value } => {
            store.set(&key, value);
            Response::Ok
        }
        Request::GetRange { key, offset, len } => {
            Response::Value(store.get_range(&key, offset as usize, len as usize))
        }
        Request::SetRange { key, offset, data } => {
            if !write_in_bounds(offset, data.len()) {
                return Response::Err("set_range beyond max value size".into());
            }
            store.set_range(&key, offset as usize, &data);
            Response::Ok
        }
        Request::Append { key, data } => Response::Len(store.append(&key, &data) as u64),
        Request::Del { key } => Response::Bool(store.del(&key)),
        Request::Exists { key } => Response::Bool(store.exists(&key)),
        Request::StrLen { key } => Response::Len(store.strlen(&key) as u64),
        Request::Incr { key, delta } => Response::Int(store.incr(&key, delta)),
        Request::SAdd { key, member } => Response::Bool(store.sadd(&key, &member)),
        Request::SRem { key, member } => Response::Bool(store.srem(&key, &member)),
        Request::SMembers { key } => Response::Values(store.smembers(&key)),
        Request::SCard { key } => Response::Len(store.scard(&key) as u64),
        Request::TryLock { key, mode, owner } => Response::Bool(store.try_lock(&key, mode, owner)),
        Request::Unlock { key, mode, owner } => {
            store.unlock(&key, mode, owner);
            Response::Ok
        }
        Request::Ping => Response::Pong,
        Request::Flush => {
            store.flush();
            Response::Ok
        }
        Request::MultiGetRange { key, spans } => {
            Response::Spans(store.multi_get_range(&key, &spans))
        }
        Request::MultiSetRange { key, writes } => {
            if writes
                .iter()
                .any(|(offset, data)| !write_in_bounds(*offset, data.len()))
            {
                return Response::Err("multi_set_range beyond max value size".into());
            }
            store.multi_set_range(&key, &writes);
            Response::Ok
        }
        Request::Stats => Response::Stats(store.stats()),
        Request::Handoff { entries } => {
            if entries.iter().any(|e| {
                e.value
                    .as_ref()
                    .is_some_and(|v| v.len() as u64 > MAX_VALUE_BYTES)
            }) {
                return Response::Err("handoff value beyond max value size".into());
            }
            store.import_keys(&entries);
            Response::Ok
        }
        Request::Migrate { .. } | Request::EpochCommit { .. } => {
            Response::Err("resharding requires a routed shard".into())
        }
    }
}

/// Apply one command through a shard's routing view: keyed requests are
/// ownership-checked (and rejected with [`Response::WrongEpoch`] when the
/// key routes elsewhere), and the resharding protocol messages mutate the
/// view. With `routing: None` this is plain [`apply`].
pub fn apply_routed(
    store: &KvStore,
    routing: Option<&ShardRouting>,
    req: Request,
    client_epoch: u64,
) -> Response {
    apply_traced(store, routing, req, client_epoch, TraceCtx::NONE)
}

/// [`apply_routed`] with the request's decoded trace context: a traced
/// keyed op records a [`SpanKind::ShardApply`] span (parented under the
/// client's stamp) covering freeze-gate wait + ownership check + apply, so
/// the state tier appears in the ingress call's span tree.
pub fn apply_traced(
    store: &KvStore,
    routing: Option<&ShardRouting>,
    req: Request,
    client_epoch: u64,
    trace: TraceCtx,
) -> Response {
    let Some(routing) = routing else {
        return apply(store, req);
    };
    match req {
        Request::Stats => {
            let mut stats = store.stats();
            stats.epoch = routing.epoch();
            stats.wrong_epoch_redirects = routing.wrong_epoch_count();
            stats.freeze_wait_ns = routing.freeze_wait_ns();
            Response::Stats(stats)
        }
        Request::Migrate { epoch, shard_count } => {
            if shard_count == 0 {
                return Response::Err("migrate to an empty table".into());
            }
            // Write side of the gate: from here on no in-flight keyed op
            // can land between the freeze and the export snapshot.
            let _migrating = routing.gate.write();
            routing.begin(epoch, shard_count as usize);
            let index = routing.index();
            let moving = |key: &str| {
                index >= shard_count as usize || shard_index_for(key, shard_count as usize) != index
            };
            Response::Handoff(store.export_keys(moving))
        }
        Request::EpochCommit { epoch, shard_count } => {
            if shard_count == 0 {
                return Response::Err("commit of an empty table".into());
            }
            let _migrating = routing.gate.write();
            routing.commit(epoch, shard_count as usize);
            let index = routing.index();
            let moved = |key: &str| {
                index >= shard_count as usize || shard_index_for(key, shard_count as usize) != index
            };
            store.purge_keys(moved);
            Response::Ok
        }
        req => {
            let entered_ns = faasm_telemetry::now_ns();
            // Read side of the gate: the ownership check and the store
            // apply are atomic with respect to a concurrent freeze.
            let serving = routing.gate.try_read().unwrap_or_else(|| {
                // Contended: a migration holds the write side. Account the
                // block so `figures shards` can show the freeze cost.
                let g = routing.gate.read();
                routing.freeze_wait.fetch_add(
                    faasm_telemetry::now_ns().saturating_sub(entered_ns),
                    Ordering::Relaxed,
                );
                g
            });
            if let Some(key) = req.key() {
                if let Some((epoch, shard_count)) = routing.check(key, client_epoch) {
                    return Response::WrongEpoch { epoch, shard_count };
                }
            }
            let resp = apply(store, req);
            drop(serving);
            if !trace.is_none() {
                shard_recorder().span(SpanKind::ShardApply, trace, entered_ns, 0);
            }
            resp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LockMode;
    use faasm_net::Fabric;

    #[test]
    fn apply_covers_every_command() {
        let store = KvStore::new();
        assert_eq!(
            apply(
                &store,
                Request::Set {
                    key: "k".into(),
                    value: b"v".to_vec()
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(&store, Request::Get { key: "k".into() }),
            Response::Value(Some(b"v".to_vec()))
        );
        assert_eq!(
            apply(
                &store,
                Request::GetRange {
                    key: "k".into(),
                    offset: 0,
                    len: 1
                }
            ),
            Response::Value(Some(b"v".to_vec()))
        );
        assert_eq!(
            apply(
                &store,
                Request::SetRange {
                    key: "k".into(),
                    offset: 1,
                    data: b"w".to_vec()
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(&store, Request::StrLen { key: "k".into() }),
            Response::Len(2)
        );
        assert_eq!(
            apply(
                &store,
                Request::Append {
                    key: "k".into(),
                    data: b"x".to_vec()
                }
            ),
            Response::Len(3)
        );
        assert_eq!(
            apply(&store, Request::Exists { key: "k".into() }),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::Incr {
                    key: "c".into(),
                    delta: 2
                }
            ),
            Response::Int(2)
        );
        assert_eq!(
            apply(
                &store,
                Request::SAdd {
                    key: "s".into(),
                    member: b"m".to_vec()
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(&store, Request::SCard { key: "s".into() }),
            Response::Len(1)
        );
        assert_eq!(
            apply(&store, Request::SMembers { key: "s".into() }),
            Response::Values(vec![b"m".to_vec()])
        );
        assert_eq!(
            apply(
                &store,
                Request::SRem {
                    key: "s".into(),
                    member: b"m".to_vec()
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::TryLock {
                    key: "k".into(),
                    mode: LockMode::Write,
                    owner: 1
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::Unlock {
                    key: "k".into(),
                    mode: LockMode::Write,
                    owner: 1
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiSetRange {
                    key: "m".into(),
                    writes: vec![(0, b"ab".to_vec()), (4, b"cd".to_vec())]
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiGetRange {
                    key: "m".into(),
                    spans: vec![(0, 2), (4, 2)]
                }
            ),
            Response::Spans(Some(vec![b"ab".to_vec(), b"cd".to_vec()]))
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiGetRange {
                    key: "absent".into(),
                    spans: vec![(0, 2)]
                }
            ),
            Response::Spans(None)
        );
        assert_eq!(
            apply(&store, Request::Del { key: "m".into() }),
            Response::Bool(true)
        );
        assert_eq!(apply(&store, Request::Ping), Response::Pong);
        assert_eq!(
            apply(&store, Request::Del { key: "k".into() }),
            Response::Bool(true)
        );
        assert_eq!(apply(&store, Request::Flush), Response::Ok);
        assert_eq!(store.key_count(), 0);
    }

    #[test]
    fn server_replies_over_fabric() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let server = KvServer::start(server_nic, 2);
        let sid = server.host_id();
        let resp = client
            .call(sid, crate::codec::encode_request(&Request::Ping))
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Pong
        );
        server.shutdown();
    }

    #[test]
    fn hostile_offsets_get_errors_and_do_not_kill_workers() {
        // Offsets near u64::MAX pass the codec (the message is tiny) but
        // would panic the zero-extending store write; the apply layer must
        // reject them and the single worker must keep serving afterwards.
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let server = KvServer::start(server_nic, 1);
        let sid = server.host_id();
        for req in [
            Request::SetRange {
                key: "k".into(),
                offset: u64::MAX,
                data: vec![1],
            },
            Request::MultiSetRange {
                key: "k".into(),
                writes: vec![(0, vec![1]), (u64::MAX - 1, vec![2, 3])],
            },
        ] {
            let resp = client
                .call(sid, crate::codec::encode_request(&req))
                .unwrap();
            assert!(
                matches!(
                    crate::codec::decode_response(&resp).unwrap(),
                    Response::Err(_)
                ),
                "hostile write must be rejected: {req:?}"
            );
        }
        // Huge read lengths truncate instead of wrapping slice bounds.
        server.store().set("k", vec![7u8; 8]);
        let resp = client
            .call(
                sid,
                crate::codec::encode_request(&Request::GetRange {
                    key: "k".into(),
                    offset: 2,
                    len: u64::MAX,
                }),
            )
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Value(Some(vec![7u8; 6]))
        );
        // The lone worker survived all of it.
        let resp = client
            .call(sid, crate::codec::encode_request(&Request::Ping))
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Pong
        );
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_error_response() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let _server = KvServer::start(server_nic.clone(), 1);
        let resp = client.call(server_nic.id(), vec![255, 255]).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Err(_)
        ));
    }

    #[test]
    fn restart_with_retained_store() {
        let fabric = Fabric::new();
        let nic = fabric.add_host();
        let store = Arc::new(KvStore::new());
        store.set("persist", b"yes".to_vec());
        let server = KvServer::start_with_store(nic.clone(), 1, Arc::clone(&store));
        server.shutdown();
        // "Restart" the server process on the same authoritative state.
        let server2 = KvServer::start_with_store(nic, 1, store);
        assert_eq!(server2.store().get("persist"), Some(b"yes".to_vec()));
        server2.shutdown();
    }
}
