//! The KVS server: serves a [`KvStore`] over the fabric.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use faasm_net::{Envelope, Nic, TokenBucket, MSG_HEADER_BYTES};

use crate::codec::{decode_request, encode_response, Request, Response};
use crate::store::KvStore;

/// A running KVS server: worker threads draining a NIC and applying
/// commands to a shared store.
pub struct KvServer {
    store: Arc<KvStore>,
    nic: Nic,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

/// Per-server NIC bandwidth shaping: request and response bytes debit one
/// token bucket shared by all worker threads — the `tc` cap on the global
/// tier host's interface (the paper's testbed runs the tier on 1 Gbps
/// links, so a shard's NIC, not its CPU, is the contended resource).
pub type ServerShaping = Option<Arc<TokenBucket>>;

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("host", &self.nic.id())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl KvServer {
    /// Start a server on `nic` with `workers` threads.
    pub fn start(nic: Nic, workers: usize) -> KvServer {
        KvServer::start_with_store(nic, workers, Arc::new(KvStore::new()))
    }

    /// Start a server over an existing store (used to simulate restart with
    /// retained state, or to inspect state from tests).
    pub fn start_with_store(nic: Nic, workers: usize, store: Arc<KvStore>) -> KvServer {
        KvServer::start_shaped(nic, workers, store, None)
    }

    /// [`KvServer::start_with_store`] with optional NIC bandwidth shaping:
    /// every served request debits its request + response bytes from the
    /// bucket before the reply leaves the host.
    pub fn start_shaped(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        shaping: ServerShaping,
    ) -> KvServer {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..workers.max(1))
            .map(|_| {
                let nic = nic.clone();
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let shaping = shaping.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match nic.recv_timeout(Duration::from_millis(50)) {
                            Ok(env) => serve_one(&store, &nic, env, shaping.as_deref()),
                            Err(faasm_net::NetError::Timeout) => continue,
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();
        KvServer {
            store,
            nic,
            stop,
            workers: handles,
        }
    }

    /// The server's host id on the fabric.
    pub fn host_id(&self) -> faasm_net::HostId {
        self.nic.id()
    }

    /// Direct access to the underlying store (test/metric inspection).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// Stop the worker threads and wait for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn serve_one(store: &KvStore, nic: &Nic, env: Envelope, shaper: Option<&TokenBucket>) {
    let resp = match decode_request(&env.payload) {
        Ok(req) => apply(store, req),
        Err(e) => Response::Err(e.to_string()),
    };
    // One-way requests (fire-and-forget writes) carry no reply tag.
    if env.reply_tag.is_some() {
        let bytes = encode_response(&resp);
        if let Some(bucket) = shaper {
            bucket.acquire(env.payload.len() + bytes.len() + 2 * MSG_HEADER_BYTES as usize);
        }
        let _ = nic.respond(&env, bytes);
    } else if let Some(bucket) = shaper {
        bucket.acquire(env.payload.len() + MSG_HEADER_BYTES as usize);
    }
}

/// The largest value a single range write may create. Range writes
/// zero-extend, so without a cap one hostile frame with an offset near
/// `u64::MAX` would panic (or OOM) the worker thread that served it —
/// the codec's count guards bound the *message*, this bounds the *store*.
pub const MAX_VALUE_BYTES: u64 = 256 * 1024 * 1024;

fn write_in_bounds(offset: u64, len: usize) -> bool {
    offset.saturating_add(len as u64) <= MAX_VALUE_BYTES
}

/// Apply one command to the store (exposed for deterministic unit tests).
pub fn apply(store: &KvStore, req: Request) -> Response {
    match req {
        Request::Get { key } => Response::Value(store.get(&key)),
        Request::Set { key, value } => {
            store.set(&key, value);
            Response::Ok
        }
        Request::GetRange { key, offset, len } => {
            Response::Value(store.get_range(&key, offset as usize, len as usize))
        }
        Request::SetRange { key, offset, data } => {
            if !write_in_bounds(offset, data.len()) {
                return Response::Err("set_range beyond max value size".into());
            }
            store.set_range(&key, offset as usize, &data);
            Response::Ok
        }
        Request::Append { key, data } => Response::Len(store.append(&key, &data) as u64),
        Request::Del { key } => Response::Bool(store.del(&key)),
        Request::Exists { key } => Response::Bool(store.exists(&key)),
        Request::StrLen { key } => Response::Len(store.strlen(&key) as u64),
        Request::Incr { key, delta } => Response::Int(store.incr(&key, delta)),
        Request::SAdd { key, member } => Response::Bool(store.sadd(&key, &member)),
        Request::SRem { key, member } => Response::Bool(store.srem(&key, &member)),
        Request::SMembers { key } => Response::Values(store.smembers(&key)),
        Request::SCard { key } => Response::Len(store.scard(&key) as u64),
        Request::TryLock { key, mode, owner } => Response::Bool(store.try_lock(&key, mode, owner)),
        Request::Unlock { key, mode, owner } => {
            store.unlock(&key, mode, owner);
            Response::Ok
        }
        Request::Ping => Response::Pong,
        Request::Flush => {
            store.flush();
            Response::Ok
        }
        Request::MultiGetRange { key, spans } => {
            Response::Spans(store.multi_get_range(&key, &spans))
        }
        Request::MultiSetRange { key, writes } => {
            if writes
                .iter()
                .any(|(offset, data)| !write_in_bounds(*offset, data.len()))
            {
                return Response::Err("multi_set_range beyond max value size".into());
            }
            store.multi_set_range(&key, &writes);
            Response::Ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LockMode;
    use faasm_net::Fabric;

    #[test]
    fn apply_covers_every_command() {
        let store = KvStore::new();
        assert_eq!(
            apply(
                &store,
                Request::Set {
                    key: "k".into(),
                    value: b"v".to_vec()
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(&store, Request::Get { key: "k".into() }),
            Response::Value(Some(b"v".to_vec()))
        );
        assert_eq!(
            apply(
                &store,
                Request::GetRange {
                    key: "k".into(),
                    offset: 0,
                    len: 1
                }
            ),
            Response::Value(Some(b"v".to_vec()))
        );
        assert_eq!(
            apply(
                &store,
                Request::SetRange {
                    key: "k".into(),
                    offset: 1,
                    data: b"w".to_vec()
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(&store, Request::StrLen { key: "k".into() }),
            Response::Len(2)
        );
        assert_eq!(
            apply(
                &store,
                Request::Append {
                    key: "k".into(),
                    data: b"x".to_vec()
                }
            ),
            Response::Len(3)
        );
        assert_eq!(
            apply(&store, Request::Exists { key: "k".into() }),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::Incr {
                    key: "c".into(),
                    delta: 2
                }
            ),
            Response::Int(2)
        );
        assert_eq!(
            apply(
                &store,
                Request::SAdd {
                    key: "s".into(),
                    member: b"m".to_vec()
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(&store, Request::SCard { key: "s".into() }),
            Response::Len(1)
        );
        assert_eq!(
            apply(&store, Request::SMembers { key: "s".into() }),
            Response::Values(vec![b"m".to_vec()])
        );
        assert_eq!(
            apply(
                &store,
                Request::SRem {
                    key: "s".into(),
                    member: b"m".to_vec()
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::TryLock {
                    key: "k".into(),
                    mode: LockMode::Write,
                    owner: 1
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::Unlock {
                    key: "k".into(),
                    mode: LockMode::Write,
                    owner: 1
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiSetRange {
                    key: "m".into(),
                    writes: vec![(0, b"ab".to_vec()), (4, b"cd".to_vec())]
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiGetRange {
                    key: "m".into(),
                    spans: vec![(0, 2), (4, 2)]
                }
            ),
            Response::Spans(Some(vec![b"ab".to_vec(), b"cd".to_vec()]))
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiGetRange {
                    key: "absent".into(),
                    spans: vec![(0, 2)]
                }
            ),
            Response::Spans(None)
        );
        assert_eq!(
            apply(&store, Request::Del { key: "m".into() }),
            Response::Bool(true)
        );
        assert_eq!(apply(&store, Request::Ping), Response::Pong);
        assert_eq!(
            apply(&store, Request::Del { key: "k".into() }),
            Response::Bool(true)
        );
        assert_eq!(apply(&store, Request::Flush), Response::Ok);
        assert_eq!(store.key_count(), 0);
    }

    #[test]
    fn server_replies_over_fabric() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let server = KvServer::start(server_nic, 2);
        let sid = server.host_id();
        let resp = client
            .call(sid, crate::codec::encode_request(&Request::Ping))
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Pong
        );
        server.shutdown();
    }

    #[test]
    fn hostile_offsets_get_errors_and_do_not_kill_workers() {
        // Offsets near u64::MAX pass the codec (the message is tiny) but
        // would panic the zero-extending store write; the apply layer must
        // reject them and the single worker must keep serving afterwards.
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let server = KvServer::start(server_nic, 1);
        let sid = server.host_id();
        for req in [
            Request::SetRange {
                key: "k".into(),
                offset: u64::MAX,
                data: vec![1],
            },
            Request::MultiSetRange {
                key: "k".into(),
                writes: vec![(0, vec![1]), (u64::MAX - 1, vec![2, 3])],
            },
        ] {
            let resp = client
                .call(sid, crate::codec::encode_request(&req))
                .unwrap();
            assert!(
                matches!(
                    crate::codec::decode_response(&resp).unwrap(),
                    Response::Err(_)
                ),
                "hostile write must be rejected: {req:?}"
            );
        }
        // Huge read lengths truncate instead of wrapping slice bounds.
        server.store().set("k", vec![7u8; 8]);
        let resp = client
            .call(
                sid,
                crate::codec::encode_request(&Request::GetRange {
                    key: "k".into(),
                    offset: 2,
                    len: u64::MAX,
                }),
            )
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Value(Some(vec![7u8; 6]))
        );
        // The lone worker survived all of it.
        let resp = client
            .call(sid, crate::codec::encode_request(&Request::Ping))
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Pong
        );
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_error_response() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let _server = KvServer::start(server_nic.clone(), 1);
        let resp = client.call(server_nic.id(), vec![255, 255]).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Err(_)
        ));
    }

    #[test]
    fn restart_with_retained_store() {
        let fabric = Fabric::new();
        let nic = fabric.add_host();
        let store = Arc::new(KvStore::new());
        store.set("persist", b"yes".to_vec());
        let server = KvServer::start_with_store(nic.clone(), 1, Arc::clone(&store));
        server.shutdown();
        // "Restart" the server process on the same authoritative state.
        let server2 = KvServer::start_with_store(nic, 1, store);
        assert_eq!(server2.store().get("persist"), Some(b"yes".to_vec()));
        server2.shutdown();
    }
}
