//! The KVS server: serves a [`KvStore`] over the fabric.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use faasm_net::{Envelope, HostId, Nic, TokenBucket, MSG_HEADER_BYTES};
use faasm_telemetry::{SpanKind, TraceCtx};
use parking_lot::{Mutex, RwLock};

use crate::codec::{
    decode_request_traced, decode_response, encode_request_at, encode_response, Request, Response,
};
use crate::sharded::{primary_index_live, replica_set_live};
use crate::store::{KeyMigration, KvStore};

/// The state tier's telemetry recorder (shared by every shard server in the
/// process; cached so the hot path never touches the registry lock).
fn shard_recorder() -> &'static Arc<faasm_telemetry::Recorder> {
    static REC: std::sync::OnceLock<Arc<faasm_telemetry::Recorder>> = std::sync::OnceLock::new();
    REC.get_or_init(|| faasm_telemetry::tier("state-shard"))
}

/// One routing table generation as a shard sees it: the epoch, the total
/// slot count (live *and* dead), and the tombstoned slot indices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TableInfo {
    epoch: u64,
    shard_count: usize,
    dead: Vec<usize>,
}

#[derive(Debug, Clone)]
struct RouteState {
    cur: TableInfo,
    index: usize,
    /// A migration in flight: the table being moved to. While pending, a
    /// keyed op is served only if the key's replica set is identical under
    /// both tables and this shard is its primary — moving keys are frozen
    /// (rejected with `WrongEpoch`) so no write can land on the donor
    /// after its export snapshot and be lost.
    pending: Option<TableInfo>,
}

/// Striped ordering locks for outbound replication: same fnv1a hash as the
/// store's internal shards, so two writes to one key always forward in
/// their apply order.
const REPL_STRIPES: usize = 16;

fn repl_stripe(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % REPL_STRIPES
}

/// One shard server's view of the cluster routing table: which epoch it
/// serves, how many shards that table has, and which index this shard is.
///
/// Drives the ownership check behind [`Response::WrongEpoch`]: a keyed
/// request whose key does not rendezvous-route to this shard under the
/// effective table is rejected, so a client with a stale table can never
/// read or write the wrong shard.
pub struct ShardRouting {
    state: RwLock<RouteState>,
    /// How many replicas (primary included) hold every key. Fixed for the
    /// life of the tier; `1` reproduces the unreplicated behaviour.
    replication: usize,
    /// Serialises migration state changes against in-flight keyed ops:
    /// every keyed request holds a read guard across its ownership check
    /// **and** store apply, while `Migrate`/`EpochCommit` hold the write
    /// guard across freeze + export / commit + purge. Without it, a worker
    /// that passed the check before `Migrate` landed could apply a write
    /// *after* the export snapshot — an acknowledged write silently lost.
    gate: RwLock<()>,
    /// Replica-traffic host per slot (where `Replicate` frames are sent);
    /// empty on an unreplicated tier.
    peers: RwLock<Vec<HostId>>,
    /// Ordering locks for outbound replication, striped by key. A forward
    /// re-exports the key's *current* state under its stripe lock, so the
    /// last forward in lock order always carries the newest state and a
    /// backup can never end behind an acknowledged write.
    repl_stripes: Vec<Mutex<()>>,
    /// Chunked-handoff reassembly: transfer id → next expected frame seq.
    xfers: Mutex<HashMap<u64, u32>>,
    wrong_epoch: AtomicU64,
    /// Total ns keyed requests spent blocked on `gate` while a migration
    /// held the write side (the freeze cost clients actually observed).
    freeze_wait: AtomicU64,
    /// `Replicate` frames this primary has sent to backups.
    repl_forwards: AtomicU64,
    /// Total ns writes spent waiting for their backup acks (quorum wait).
    repl_lag_ns: AtomicU64,
    /// Epochs installed directly (no pending migration) that tombstoned a
    /// new slot — each one is a failover this replica lived through.
    promotions: AtomicU64,
}

impl std::fmt::Debug for ShardRouting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.read().clone();
        f.debug_struct("ShardRouting")
            .field("epoch", &s.cur.epoch)
            .field("shard_count", &s.cur.shard_count)
            .field("dead", &s.cur.dead)
            .field("index", &s.index)
            .field("replication", &self.replication)
            .field("pending", &s.pending)
            .finish()
    }
}

impl ShardRouting {
    /// A routing view serving `(epoch, shard_count)` as shard `index`,
    /// unreplicated.
    pub fn new(epoch: u64, shard_count: usize, index: usize) -> Arc<ShardRouting> {
        ShardRouting::replicated(epoch, shard_count, index, 1, Vec::new(), Vec::new())
    }

    /// A routing view over a replicated tier: `replication` replicas per
    /// key, `dead` tombstoned slots, and the replica-traffic host per slot
    /// in `peers` (indexed by slot; may be empty when `replication == 1`).
    pub fn replicated(
        epoch: u64,
        shard_count: usize,
        index: usize,
        replication: usize,
        dead: Vec<usize>,
        peers: Vec<HostId>,
    ) -> Arc<ShardRouting> {
        assert!(shard_count > 0, "a routed shard needs a non-empty table");
        assert!(replication >= 1, "replication factor must be at least 1");
        Arc::new(ShardRouting {
            state: RwLock::new(RouteState {
                cur: TableInfo {
                    epoch,
                    shard_count,
                    dead,
                },
                index,
                pending: None,
            }),
            replication,
            gate: RwLock::new(()),
            peers: RwLock::new(peers),
            repl_stripes: (0..REPL_STRIPES).map(|_| Mutex::new(())).collect(),
            xfers: Mutex::new(HashMap::new()),
            wrong_epoch: AtomicU64::new(0),
            freeze_wait: AtomicU64::new(0),
            repl_forwards: AtomicU64::new(0),
            repl_lag_ns: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        })
    }

    /// The epoch this shard currently serves.
    pub fn epoch(&self) -> u64 {
        self.state.read().cur.epoch
    }

    /// The shard count of the serving table (live and dead slots).
    pub fn shard_count(&self) -> usize {
        self.state.read().cur.shard_count
    }

    /// The tombstoned slot indices of the serving table.
    pub fn dead_slots(&self) -> Vec<usize> {
        self.state.read().cur.dead.clone()
    }

    /// This shard's index in the table.
    pub fn index(&self) -> usize {
        self.state.read().index
    }

    /// Replicas per key (primary included).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Keyed requests rejected with `WrongEpoch`/`NotPrimary` so far.
    pub fn wrong_epoch_count(&self) -> u64 {
        self.wrong_epoch.load(Ordering::Relaxed)
    }

    /// Total ns keyed requests have spent blocked on the migration freeze
    /// gate.
    pub fn freeze_wait_ns(&self) -> u64 {
        self.freeze_wait.load(Ordering::Relaxed)
    }

    /// Failover epochs this replica has installed (see `promotions` field).
    pub fn promotions_count(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Ownership check for one keyed request: `None` when this shard is
    /// the serving primary for `key`, else the redirect response the
    /// client must act on (`WrongEpoch` to refresh its table, `NotPrimary`
    /// when it reached a backup replica).
    fn check(&self, key: &str, client_epoch: u64) -> Option<Response> {
        let s = self.state.read();
        if s.pending.is_none() && client_epoch == s.cur.epoch {
            // The client routed with this exact table, so the pure routing
            // function already sent the key to its primary — skip the hash.
            return None;
        }
        let cur_set = replica_set_live(key, s.cur.shard_count, &s.cur.dead, self.replication);
        let resp = match &s.pending {
            None => {
                if cur_set.first() == Some(&s.index) {
                    return None;
                }
                if cur_set.contains(&s.index) {
                    Response::NotPrimary {
                        epoch: s.cur.epoch,
                        shard_count: s.cur.shard_count as u64,
                    }
                } else {
                    Response::WrongEpoch {
                        epoch: s.cur.epoch,
                        shard_count: s.cur.shard_count as u64,
                    }
                }
            }
            Some(new) => {
                // Migration pending: serve only keys whose replica set is
                // untouched by the move (and whose primary we are) — all
                // others are frozen until the commit.
                let new_set = replica_set_live(key, new.shard_count, &new.dead, self.replication);
                if new_set.first() == Some(&s.index) && new_set == cur_set {
                    return None;
                }
                Response::WrongEpoch {
                    epoch: new.epoch,
                    shard_count: new.shard_count as u64,
                }
            }
        };
        self.wrong_epoch.fetch_add(1, Ordering::Relaxed);
        Some(resp)
    }

    fn begin(&self, info: TableInfo) {
        self.state.write().pending = Some(info);
    }

    /// Install `info` as the serving table. Returns `true` when this was a
    /// direct install (no migration pending) that tombstoned at least one
    /// new slot — i.e. a failover promotion this replica lived through.
    fn commit(&self, info: TableInfo, peers: Option<Vec<HostId>>) -> bool {
        let mut s = self.state.write();
        let promoted = s.pending.is_none()
            && self.replication > 1
            && info.dead.iter().any(|d| !s.cur.dead.contains(d));
        if promoted {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
        s.cur = info;
        s.pending = None;
        drop(s);
        if let Some(p) = peers {
            *self.peers.write() = p;
        }
        promoted
    }
}

/// A running KVS server: worker threads draining a NIC and applying
/// commands to a shared store.
pub struct KvServer {
    store: Arc<KvStore>,
    routing: Option<Arc<ShardRouting>>,
    nic: Nic,
    /// Dedicated replica-traffic NIC (replicated tiers only). Its workers
    /// never issue outbound quorum calls, so two primaries forwarding to
    /// each other can always make progress even with every main worker
    /// blocked on a forward.
    repl_nic: Option<Nic>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

/// Per-server NIC bandwidth shaping: request and response bytes debit one
/// token bucket shared by all worker threads — the `tc` cap on the global
/// tier host's interface (the paper's testbed runs the tier on 1 Gbps
/// links, so a shard's NIC, not its CPU, is the contended resource).
pub type ServerShaping = Option<Arc<TokenBucket>>;

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("host", &self.nic.id())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl KvServer {
    /// Start a server on `nic` with `workers` threads.
    pub fn start(nic: Nic, workers: usize) -> KvServer {
        KvServer::start_with_store(nic, workers, Arc::new(KvStore::new()))
    }

    /// Start a server over an existing store (used to simulate restart with
    /// retained state, or to inspect state from tests).
    pub fn start_with_store(nic: Nic, workers: usize, store: Arc<KvStore>) -> KvServer {
        KvServer::start_shaped(nic, workers, store, None)
    }

    /// [`KvServer::start_with_store`] with optional NIC bandwidth shaping:
    /// every served request debits its request + response bytes from the
    /// bucket before the reply leaves the host.
    pub fn start_shaped(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        shaping: ServerShaping,
    ) -> KvServer {
        KvServer::start_full(nic, workers, store, shaping, None)
    }

    /// Start a shard server with an explicit routing view: keyed requests
    /// for keys this shard does not own answer [`Response::WrongEpoch`],
    /// and the server participates in the `Migrate`/`Handoff`/`EpochCommit`
    /// resharding protocol.
    pub fn start_routed(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        routing: Arc<ShardRouting>,
    ) -> KvServer {
        KvServer::start_full(nic, workers, store, None, Some(routing))
    }

    /// The fully general constructor: store, shaping and routing view.
    pub fn start_full(
        nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        shaping: ServerShaping,
        routing: Option<Arc<ShardRouting>>,
    ) -> KvServer {
        KvServer::start_replicated_full(nic, None, workers, store, shaping, routing)
    }

    /// Start a replicated shard server: `nic` serves clients (and forwards
    /// writes to backups), `repl_nic` serves only inbound replica traffic
    /// on dedicated workers so quorum forwards can never deadlock.
    pub fn start_replicated(
        nic: Nic,
        repl_nic: Nic,
        workers: usize,
        store: Arc<KvStore>,
        routing: Arc<ShardRouting>,
    ) -> KvServer {
        KvServer::start_replicated_full(nic, Some(repl_nic), workers, store, None, Some(routing))
    }

    fn start_replicated_full(
        nic: Nic,
        repl_nic: Option<Nic>,
        workers: usize,
        store: Arc<KvStore>,
        shaping: ServerShaping,
        routing: Option<Arc<ShardRouting>>,
    ) -> KvServer {
        let stop = Arc::new(AtomicBool::new(false));
        let spawn_loop = |nic: Nic, forwards: bool| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let shaping = shaping.clone();
            let routing = routing.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match nic.recv_timeout(Duration::from_millis(50)) {
                        Ok(env) => serve_one(
                            &store,
                            routing.as_deref(),
                            &nic,
                            forwards,
                            env,
                            shaping.as_deref(),
                        ),
                        Err(faasm_net::NetError::Timeout) => continue,
                        Err(_) => break,
                    }
                }
            })
        };
        let mut handles: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|_| spawn_loop(nic.clone(), true))
            .collect();
        if let Some(rn) = &repl_nic {
            // Two replica workers: one can drain a rebuild stream while the
            // other keeps acking live write forwards.
            for _ in 0..2 {
                handles.push(spawn_loop(rn.clone(), false));
            }
        }
        KvServer {
            store,
            routing,
            nic,
            repl_nic,
            stop,
            workers: handles,
        }
    }

    /// The server's host id on the fabric.
    pub fn host_id(&self) -> faasm_net::HostId {
        self.nic.id()
    }

    /// The replica-traffic host id, when this server runs one.
    pub fn repl_host_id(&self) -> Option<faasm_net::HostId> {
        self.repl_nic.as_ref().map(|n| n.id())
    }

    /// Every fabric host this server answers on (main + replica NIC).
    pub fn host_ids(&self) -> Vec<faasm_net::HostId> {
        let mut ids = vec![self.nic.id()];
        ids.extend(self.repl_nic.as_ref().map(|n| n.id()));
        ids
    }

    /// Direct access to the underlying store (test/metric inspection).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The shard's routing view, if it serves one.
    pub fn routing(&self) -> Option<&Arc<ShardRouting>> {
        self.routing.as_ref()
    }

    /// Stop the worker threads and wait for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn serve_one(
    store: &KvStore,
    routing: Option<&ShardRouting>,
    nic: &Nic,
    forwards: bool,
    env: Envelope,
    shaper: Option<&TokenBucket>,
) {
    let resp = match decode_request_traced(&env.payload) {
        Ok((req, epoch, trace)) => {
            apply_traced(store, routing, forwards.then_some(nic), req, epoch, trace)
        }
        Err(e) => Response::Err(e.to_string()),
    };
    // One-way requests (fire-and-forget writes) carry no reply tag.
    if env.reply_tag.is_some() {
        let bytes = encode_response(&resp);
        if let Some(bucket) = shaper {
            bucket.acquire(env.payload.len() + bytes.len() + 2 * MSG_HEADER_BYTES as usize);
        }
        let _ = nic.respond(&env, bytes);
    } else if let Some(bucket) = shaper {
        bucket.acquire(env.payload.len() + MSG_HEADER_BYTES as usize);
    }
}

/// The largest value a single range write may create. Range writes
/// zero-extend, so without a cap one hostile frame with an offset near
/// `u64::MAX` would panic (or OOM) the worker thread that served it —
/// the codec's count guards bound the *message*, this bounds the *store*.
pub const MAX_VALUE_BYTES: u64 = 256 * 1024 * 1024;

fn write_in_bounds(offset: u64, len: usize) -> bool {
    offset.saturating_add(len as u64) <= MAX_VALUE_BYTES
}

/// Wrap a successful keyed reply with the key's mutation-version counter.
fn versioned(version: u64, inner: Response) -> Response {
    Response::Versioned {
        version,
        inner: Box::new(inner),
    }
}

/// Apply one command to the store (exposed for deterministic unit tests).
///
/// Keyed reads and mutation acks come back as [`Response::Versioned`]: the
/// version is taken under the same stripe lock as the operation itself, so
/// it is exact — a function-side cache stamping its snapshot with it can
/// never pair old bytes with a newer version (or vice versa).
pub fn apply(store: &KvStore, req: Request) -> Response {
    match req {
        Request::Get { key } => {
            let (value, v) = store.get_versioned(&key);
            versioned(v, Response::Value(value))
        }
        Request::Set { key, value } => {
            let v = store.set(&key, value);
            versioned(v, Response::Ok)
        }
        Request::GetRange { key, offset, len } => {
            let (value, v) = store.get_range_versioned(&key, offset as usize, len as usize);
            versioned(v, Response::Value(value))
        }
        Request::SetRange { key, offset, data } => {
            if !write_in_bounds(offset, data.len()) {
                return Response::Err("set_range beyond max value size".into());
            }
            let v = store.set_range(&key, offset as usize, &data);
            versioned(v, Response::Ok)
        }
        Request::Append { key, data } => {
            let (len, v) = store.append(&key, &data);
            versioned(v, Response::Len(len as u64))
        }
        Request::Del { key } => {
            let (existed, v) = store.del(&key);
            versioned(v, Response::Bool(existed))
        }
        Request::Exists { key } => Response::Bool(store.exists(&key)),
        Request::StrLen { key } => Response::Len(store.strlen(&key) as u64),
        Request::Incr { key, delta } => {
            let (n, v) = store.incr(&key, delta);
            versioned(v, Response::Int(n))
        }
        Request::SAdd { key, member } => {
            let (added, v) = store.sadd(&key, &member);
            versioned(v, Response::Bool(added))
        }
        Request::SRem { key, member } => {
            let (removed, v) = store.srem(&key, &member);
            versioned(v, Response::Bool(removed))
        }
        Request::SMembers { key } => Response::Values(store.smembers(&key)),
        Request::SCard { key } => Response::Len(store.scard(&key) as u64),
        Request::TryLock { key, mode, owner } => Response::Bool(store.try_lock(&key, mode, owner)),
        Request::Unlock { key, mode, owner } => {
            store.unlock(&key, mode, owner);
            Response::Ok
        }
        Request::Ping => Response::Pong,
        Request::Flush => {
            store.flush();
            Response::Ok
        }
        Request::MultiGetRange { key, spans } => {
            let (runs, v) = store.multi_get_range_versioned(&key, &spans);
            versioned(v, Response::Spans(runs))
        }
        Request::MultiSetRange { key, writes } => {
            if writes
                .iter()
                .any(|(offset, data)| !write_in_bounds(*offset, data.len()))
            {
                return Response::Err("multi_set_range beyond max value size".into());
            }
            let v = store.multi_set_range(&key, &writes);
            versioned(v, Response::Ok)
        }
        Request::VersionOf { key } => Response::Len(store.version_of(&key)),
        Request::MultiGet { keys } => Response::MultiValues(store.multi_get(&keys)),
        Request::Stats => Response::Stats(store.stats()),
        Request::Handoff { entries } => {
            if entries.iter().any(|e| {
                e.value
                    .as_ref()
                    .is_some_and(|v| v.len() as u64 > MAX_VALUE_BYTES)
            }) {
                return Response::Err("handoff value beyond max value size".into());
            }
            store.import_keys(&entries);
            Response::Ok
        }
        Request::Migrate { .. } | Request::EpochCommit { .. } => {
            Response::Err("resharding requires a routed shard".into())
        }
        Request::Replicate { .. } | Request::HandoffFrame { .. } | Request::Rebuild { .. } => {
            Response::Err("replication requires a routed shard".into())
        }
    }
}

/// Apply one command through a shard's routing view: keyed requests are
/// ownership-checked (and rejected with [`Response::WrongEpoch`] when the
/// key routes elsewhere), and the resharding protocol messages mutate the
/// view. With `routing: None` this is plain [`apply`].
pub fn apply_routed(
    store: &KvStore,
    routing: Option<&ShardRouting>,
    req: Request,
    client_epoch: u64,
) -> Response {
    apply_traced(store, routing, None, req, client_epoch, TraceCtx::NONE)
}

/// How long a primary waits for one backup's `ReplAck` before declaring
/// the write quorum unavailable. Short relative to the fabric default so a
/// dead backup stalls writers for at most one forward, not 30 s.
pub const REPL_CALL_TIMEOUT: Duration = Duration::from_millis(400);

/// Chunked-handoff frame caps: a frame carries at most this many entries
/// and roughly this many payload bytes, whichever fills first.
pub const HANDOFF_FRAME_ENTRIES: usize = 512;
/// See [`HANDOFF_FRAME_ENTRIES`].
pub const HANDOFF_FRAME_BYTES: usize = 256 * 1024;

fn entry_weight(e: &KeyMigration) -> usize {
    e.key.len()
        + e.value.as_ref().map_or(0, |v| v.len())
        + e.set.iter().map(|m| m.len()).sum::<usize>()
        + 17
}

fn oversized(entries: &[KeyMigration]) -> bool {
    entries.iter().any(|e| {
        e.value
            .as_ref()
            .is_some_and(|v| v.len() as u64 > MAX_VALUE_BYTES)
    })
}

/// Does this request mutate key state (and therefore need forwarding to
/// backup replicas once applied)?
fn mutates_key(req: &Request) -> bool {
    matches!(
        req,
        Request::Set { .. }
            | Request::SetRange { .. }
            | Request::MultiSetRange { .. }
            | Request::Append { .. }
            | Request::Del { .. }
            | Request::Incr { .. }
            | Request::SAdd { .. }
            | Request::SRem { .. }
            | Request::TryLock { .. }
            | Request::Unlock { .. }
    )
}

/// Forward `key`'s post-apply state to every backup replica and gate the
/// ack on the full write quorum (all live replicas). A key with no state
/// left (a delete) ships as a tombstone entry, which `import_keys`
/// resolves to removal. Returns the original `resp` when the quorum acked,
/// else [`Response::Unavailable`] (the local apply stands; the client
/// parks for the failover epoch and retries).
fn forward_replicas(
    store: &KvStore,
    routing: &ShardRouting,
    nic: &Nic,
    key: &str,
    resp: Response,
    trace: TraceCtx,
) -> Response {
    let (epoch, count, dead, index) = {
        let s = routing.state.read();
        (s.cur.epoch, s.cur.shard_count, s.cur.dead.clone(), s.index)
    };
    let set = replica_set_live(key, count, &dead, routing.replication);
    if set.len() <= 1 || set.first() != Some(&index) {
        return resp;
    }
    let peers = routing.peers.read().clone();
    let start = faasm_telemetry::now_ns();
    // Stripe lock: orders this export+send against every other forward of
    // the same key, so the last forward always carries the newest state.
    let _ordered = routing.repl_stripes[repl_stripe(key)].lock();
    let mut entries = store.export_keys(|k| k == key);
    if entries.is_empty() {
        // The op removed the key's last state: replicate the removal.
        entries.push(KeyMigration {
            key: key.to_string(),
            value: None,
            set: Vec::new(),
            lock: None,
            version: store.version_of(key),
        });
    }
    let msg = encode_request_at(&Request::Replicate { entries }, epoch);
    let mut acked = 1usize; // the primary's own apply
    for &slot in &set[1..] {
        let fwd_start = faasm_telemetry::now_ns();
        let ok = peers.get(slot).is_some_and(|host| {
            nic.call_timeout(*host, msg.clone(), REPL_CALL_TIMEOUT)
                .ok()
                .and_then(|b| decode_response(&b).ok())
                .is_some_and(|r| matches!(r, Response::ReplAck { .. }))
        });
        routing.repl_forwards.fetch_add(1, Ordering::Relaxed);
        if !trace.is_none() {
            shard_recorder().span(SpanKind::ReplForward, trace, fwd_start, 0);
        }
        if ok {
            acked += 1;
        }
    }
    routing.repl_lag_ns.fetch_add(
        faasm_telemetry::now_ns().saturating_sub(start),
        Ordering::Relaxed,
    );
    if !trace.is_none() {
        shard_recorder().span(SpanKind::QuorumWait, trace, start, 0);
    }
    if acked < set.len() {
        return Response::Unavailable {
            epoch,
            shard_count: count as u64,
        };
    }
    resp
}

/// Re-ship replicas for keys whose replica set gained members when the
/// table moved from `prev_dead` tombstones to the current ones — how a
/// promoted replica set regains full redundancy after a failover. Returns
/// the number of `(key, new member)` pairs shipped.
fn rebuild_replicas(
    store: &KvStore,
    routing: &ShardRouting,
    nic: &Nic,
    prev_dead: &[usize],
) -> u64 {
    let (epoch, count, dead, index) = {
        let s = routing.state.read();
        (s.cur.epoch, s.cur.shard_count, s.cur.dead.clone(), s.index)
    };
    let r = routing.replication;
    let peers = routing.peers.read().clone();
    // Group this shard's primary keys by (gained member, stripe) so each
    // group re-exports and ships under one stripe lock.
    let mut groups: HashMap<(usize, usize), HashSet<String>> = HashMap::new();
    for (key, _) in store.key_sizes() {
        let cur_set = replica_set_live(&key, count, &dead, r);
        if cur_set.first() != Some(&index) {
            continue;
        }
        let prev_set = replica_set_live(&key, count, prev_dead, r);
        for &slot in &cur_set[1..] {
            if !prev_set.contains(&slot) {
                groups
                    .entry((slot, repl_stripe(&key)))
                    .or_default()
                    .insert(key.clone());
            }
        }
    }
    let mut shipped = 0u64;
    for ((slot, stripe), keys) in groups {
        let Some(&host) = peers.get(slot) else {
            continue;
        };
        // The stripe lock spans the fresh export *and* the sends: a write
        // forwarding concurrently waits here, then re-exports newer state,
        // so a rebuild frame can never regress a backup.
        let _ordered = routing.repl_stripes[stripe].lock();
        let entries = store.export_keys(|k| keys.contains(k));
        let mut batch: Vec<KeyMigration> = Vec::new();
        let mut batch_bytes = 0usize;
        let flush = |batch: &mut Vec<KeyMigration>, batch_bytes: &mut usize| {
            if batch.is_empty() {
                return;
            }
            let msg = encode_request_at(
                &Request::Replicate {
                    entries: std::mem::take(batch),
                },
                epoch,
            );
            let _ = nic.call_timeout(host, msg, REPL_CALL_TIMEOUT);
            *batch_bytes = 0;
        };
        for e in entries {
            batch_bytes += entry_weight(&e);
            batch.push(e);
            shipped += 1;
            if batch.len() >= HANDOFF_FRAME_ENTRIES || batch_bytes >= HANDOFF_FRAME_BYTES {
                flush(&mut batch, &mut batch_bytes);
            }
        }
        flush(&mut batch, &mut batch_bytes);
    }
    shipped
}

/// [`apply_routed`] with the request's decoded trace context and fabric
/// access: a traced keyed op records a [`SpanKind::ShardApply`] span
/// (parented under the client's stamp) covering freeze-gate wait +
/// ownership check + apply, so the state tier appears in the ingress
/// call's span tree. With `net: Some(..)` on a replicated tier, a
/// successful keyed write additionally forwards the key's state to its
/// backup replicas and gates the ack on the write quorum.
pub fn apply_traced(
    store: &KvStore,
    routing: Option<&ShardRouting>,
    net: Option<&Nic>,
    req: Request,
    client_epoch: u64,
    trace: TraceCtx,
) -> Response {
    let Some(routing) = routing else {
        return apply(store, req);
    };
    match req {
        Request::Stats => {
            let mut stats = store.stats();
            stats.epoch = routing.epoch();
            stats.wrong_epoch_redirects = routing.wrong_epoch_count();
            stats.freeze_wait_ns = routing.freeze_wait_ns();
            stats.replication = routing.replication as u64;
            stats.repl_forwards = routing.repl_forwards.load(Ordering::Relaxed);
            stats.repl_lag_ns = routing.repl_lag_ns.load(Ordering::Relaxed);
            stats.promotions = routing.promotions.load(Ordering::Relaxed);
            if routing.replication > 1 {
                let (count, dead, index) = {
                    let s = routing.state.read();
                    (s.cur.shard_count, s.cur.dead.clone(), s.index)
                };
                let (mut primary, mut backup) = (0u64, 0u64);
                for (key, _) in store.key_sizes() {
                    if primary_index_live(&key, count, &dead) == index {
                        primary += 1;
                    } else {
                        backup += 1;
                    }
                }
                stats.primary_keys = primary;
                stats.backup_keys = backup;
            }
            Response::Stats(stats)
        }
        Request::Migrate { epoch, shard_count } => {
            if shard_count == 0 {
                return Response::Err("migrate to an empty table".into());
            }
            // Write side of the gate: from here on no in-flight keyed op
            // can land between the freeze and the export snapshot.
            let _migrating = routing.gate.write();
            let (cur, index) = {
                let s = routing.state.read();
                (s.cur.clone(), s.index)
            };
            let new_count = shard_count as usize;
            routing.begin(TableInfo {
                epoch,
                shard_count: new_count,
                dead: cur.dead.clone(),
            });
            let r = routing.replication;
            // Export every key this shard is the serving primary for whose
            // replica set changes under the new table — the coordinator
            // routes each entry to the members the key gained.
            let moving = |key: &str| {
                index < cur.shard_count
                    && primary_index_live(key, cur.shard_count, &cur.dead) == index
                    && replica_set_live(key, new_count, &cur.dead, r)
                        != replica_set_live(key, cur.shard_count, &cur.dead, r)
            };
            Response::Handoff(store.export_keys(moving))
        }
        Request::EpochCommit {
            epoch,
            shard_count,
            dead,
            hosts,
        } => {
            if shard_count == 0 {
                return Response::Err("commit of an empty table".into());
            }
            let _migrating = routing.gate.write();
            let info = TableInfo {
                epoch,
                shard_count: shard_count as usize,
                dead: dead.iter().map(|d| *d as usize).collect(),
            };
            let peers = (!hosts.is_empty()).then(|| hosts.iter().map(|h| HostId(*h)).collect());
            let promoted = routing.commit(info, peers);
            let (count, dead, index) = {
                let s = routing.state.read();
                (s.cur.shard_count, s.cur.dead.clone(), s.index)
            };
            let r = routing.replication;
            store.purge_keys(|key| !replica_set_live(key, count, &dead, r).contains(&index));
            if promoted {
                shard_recorder().note_anomaly("replica promotion: failover epoch installed");
            }
            Response::Ok
        }
        Request::Replicate { entries } => {
            if oversized(&entries) {
                return Response::Err("replicate value beyond max value size".into());
            }
            let applied = entries.len() as u64;
            store.import_keys(&entries);
            Response::ReplAck { applied }
        }
        Request::HandoffFrame {
            xfer,
            seq,
            last,
            entries,
        } => {
            if oversized(&entries) {
                return Response::Err("handoff value beyond max value size".into());
            }
            {
                let mut xfers = routing.xfers.lock();
                let expected = xfers.get(&xfer).copied().unwrap_or(0);
                if seq != expected {
                    return Response::Err(format!(
                        "handoff frame {seq} out of order (expected {expected})"
                    ));
                }
                if last {
                    xfers.remove(&xfer);
                } else {
                    xfers.insert(xfer, seq + 1);
                }
            }
            store.import_keys(&entries);
            Response::Ok
        }
        Request::Rebuild { prev_dead } => {
            let Some(nic) = net else {
                return Response::Err("rebuild requires fabric access".into());
            };
            let prev: Vec<usize> = prev_dead.iter().map(|d| *d as usize).collect();
            Response::Len(rebuild_replicas(store, routing, nic, &prev))
        }
        req => {
            let entered_ns = faasm_telemetry::now_ns();
            // Read side of the gate: the ownership check and the store
            // apply are atomic with respect to a concurrent freeze.
            let serving = routing.gate.try_read().unwrap_or_else(|| {
                // Contended: a migration holds the write side. Account the
                // block so `figures shards` can show the freeze cost.
                let g = routing.gate.read();
                routing.freeze_wait.fetch_add(
                    faasm_telemetry::now_ns().saturating_sub(entered_ns),
                    Ordering::Relaxed,
                );
                g
            });
            if let Some(key) = req.key() {
                if let Some(redirect) = routing.check(key, client_epoch) {
                    return redirect;
                }
            }
            // MultiGet is the one multi-key request: every key must be
            // owned here, or the whole batch redirects (the sharded client
            // groups keys per shard, so a redirect means its table is
            // stale for the entire group).
            if let Request::MultiGet { keys } = &req {
                for key in keys {
                    if let Some(redirect) = routing.check(key, client_epoch) {
                        return redirect;
                    }
                }
            }
            // Snapshot what forwarding needs before the apply consumes the
            // request (the key, and whether a TryLock refusal — a no-op on
            // the store — can skip the forward).
            let repl_key = match (net, routing.replication > 1, req.key()) {
                (Some(_), true, Some(key)) if mutates_key(&req) => {
                    Some((key.to_string(), matches!(req, Request::TryLock { .. })))
                }
                _ => None,
            };
            let mut resp = apply(store, req);
            if let (Some(nic), Some((key, is_try_lock))) = (net, repl_key) {
                let skip = matches!(resp, Response::Err(_))
                    || (is_try_lock && resp == Response::Bool(false));
                if !skip {
                    resp = forward_replicas(store, routing, nic, &key, resp, trace);
                }
            }
            drop(serving);
            if !trace.is_none() {
                shard_recorder().span(SpanKind::ShardApply, trace, entered_ns, 0);
            }
            resp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LockMode;
    use faasm_net::Fabric;

    /// Expected shape of a versioned keyed reply.
    fn v(version: u64, inner: Response) -> Response {
        Response::Versioned {
            version,
            inner: Box::new(inner),
        }
    }

    #[test]
    fn apply_covers_every_command() {
        let store = KvStore::new();
        assert_eq!(
            apply(
                &store,
                Request::Set {
                    key: "k".into(),
                    value: b"v".to_vec()
                }
            ),
            v(1, Response::Ok)
        );
        assert_eq!(
            apply(&store, Request::Get { key: "k".into() }),
            v(1, Response::Value(Some(b"v".to_vec())))
        );
        assert_eq!(
            apply(
                &store,
                Request::GetRange {
                    key: "k".into(),
                    offset: 0,
                    len: 1
                }
            ),
            v(1, Response::Value(Some(b"v".to_vec())))
        );
        assert_eq!(
            apply(
                &store,
                Request::SetRange {
                    key: "k".into(),
                    offset: 1,
                    data: b"w".to_vec()
                }
            ),
            v(2, Response::Ok)
        );
        assert_eq!(
            apply(&store, Request::StrLen { key: "k".into() }),
            Response::Len(2)
        );
        assert_eq!(
            apply(
                &store,
                Request::Append {
                    key: "k".into(),
                    data: b"x".to_vec()
                }
            ),
            v(3, Response::Len(3))
        );
        assert_eq!(
            apply(&store, Request::Exists { key: "k".into() }),
            Response::Bool(true)
        );
        assert_eq!(
            apply(&store, Request::VersionOf { key: "k".into() }),
            Response::Len(3)
        );
        assert_eq!(
            apply(
                &store,
                Request::Incr {
                    key: "c".into(),
                    delta: 2
                }
            ),
            v(1, Response::Int(2))
        );
        assert_eq!(
            apply(
                &store,
                Request::SAdd {
                    key: "s".into(),
                    member: b"m".to_vec()
                }
            ),
            v(1, Response::Bool(true))
        );
        assert_eq!(
            apply(&store, Request::SCard { key: "s".into() }),
            Response::Len(1)
        );
        assert_eq!(
            apply(&store, Request::SMembers { key: "s".into() }),
            Response::Values(vec![b"m".to_vec()])
        );
        assert_eq!(
            apply(
                &store,
                Request::SRem {
                    key: "s".into(),
                    member: b"m".to_vec()
                }
            ),
            v(2, Response::Bool(true))
        );
        assert_eq!(
            apply(
                &store,
                Request::TryLock {
                    key: "k".into(),
                    mode: LockMode::Write,
                    owner: 1
                }
            ),
            Response::Bool(true)
        );
        assert_eq!(
            apply(
                &store,
                Request::Unlock {
                    key: "k".into(),
                    mode: LockMode::Write,
                    owner: 1
                }
            ),
            Response::Ok
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiSetRange {
                    key: "m".into(),
                    writes: vec![(0, b"ab".to_vec()), (4, b"cd".to_vec())]
                }
            ),
            v(1, Response::Ok)
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiGetRange {
                    key: "m".into(),
                    spans: vec![(0, 2), (4, 2)]
                }
            ),
            v(
                1,
                Response::Spans(Some(vec![b"ab".to_vec(), b"cd".to_vec()]))
            )
        );
        assert_eq!(
            apply(
                &store,
                Request::MultiGetRange {
                    key: "absent".into(),
                    spans: vec![(0, 2)]
                }
            ),
            v(0, Response::Spans(None))
        );
        assert_eq!(
            apply(&store, Request::Del { key: "m".into() }),
            v(2, Response::Bool(true))
        );
        assert_eq!(apply(&store, Request::Ping), Response::Pong);
        assert_eq!(
            apply(&store, Request::Del { key: "k".into() }),
            v(4, Response::Bool(true))
        );
        assert_eq!(apply(&store, Request::Flush), Response::Ok);
        assert_eq!(store.key_count(), 0);
    }

    #[test]
    fn server_replies_over_fabric() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let server = KvServer::start(server_nic, 2);
        let sid = server.host_id();
        let resp = client
            .call(sid, crate::codec::encode_request(&Request::Ping))
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Pong
        );
        server.shutdown();
    }

    #[test]
    fn hostile_offsets_get_errors_and_do_not_kill_workers() {
        // Offsets near u64::MAX pass the codec (the message is tiny) but
        // would panic the zero-extending store write; the apply layer must
        // reject them and the single worker must keep serving afterwards.
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let server = KvServer::start(server_nic, 1);
        let sid = server.host_id();
        for req in [
            Request::SetRange {
                key: "k".into(),
                offset: u64::MAX,
                data: vec![1],
            },
            Request::MultiSetRange {
                key: "k".into(),
                writes: vec![(0, vec![1]), (u64::MAX - 1, vec![2, 3])],
            },
        ] {
            let resp = client
                .call(sid, crate::codec::encode_request(&req))
                .unwrap();
            assert!(
                matches!(
                    crate::codec::decode_response(&resp).unwrap(),
                    Response::Err(_)
                ),
                "hostile write must be rejected: {req:?}"
            );
        }
        // Huge read lengths truncate instead of wrapping slice bounds.
        server.store().set("k", vec![7u8; 8]);
        let resp = client
            .call(
                sid,
                crate::codec::encode_request(&Request::GetRange {
                    key: "k".into(),
                    offset: 2,
                    len: u64::MAX,
                }),
            )
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Versioned {
                version: 1,
                inner: Box::new(Response::Value(Some(vec![7u8; 6]))),
            }
        );
        // The lone worker survived all of it.
        let resp = client
            .call(sid, crate::codec::encode_request(&Request::Ping))
            .unwrap();
        assert_eq!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Pong
        );
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_error_response() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client = fabric.add_host();
        let _server = KvServer::start(server_nic.clone(), 1);
        let resp = client.call(server_nic.id(), vec![255, 255]).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&resp).unwrap(),
            Response::Err(_)
        ));
    }

    #[test]
    fn restart_with_retained_store() {
        let fabric = Fabric::new();
        let nic = fabric.add_host();
        let store = Arc::new(KvStore::new());
        store.set("persist", b"yes".to_vec());
        let server = KvServer::start_with_store(nic.clone(), 1, Arc::clone(&store));
        server.shutdown();
        // "Restart" the server process on the same authoritative state.
        let server2 = KvServer::start_with_store(nic, 1, store);
        assert_eq!(server2.store().get("persist"), Some(b"yes".to_vec()));
        server2.shutdown();
    }
}
