//! The routing abstraction over the global tier.
//!
//! Everything above the KVS (state entries, warm sets, workload drivers)
//! talks to the global tier through [`KvBackend`], not a concrete client.
//! A [`KvClient`](crate::KvClient) is the single-server backend; a
//! [`ShardedKvClient`](crate::ShardedKvClient) routes every key to exactly
//! one of N shard servers. Tests inject fault- or latency-wrapped backends
//! through the same seam.

use std::sync::Arc;

use crate::client::{KvClient, KvError};
use crate::store::{LockMode, ShardStats};

/// A handle to the global tier shared across a host's runtime.
pub type SharedKv = Arc<dyn KvBackend>;

/// Result of a versioned multi-span read: the spans' bytes (None if the
/// key is absent) and the per-key version they were observed at.
pub type VersionedRunsResult = Result<(Option<Vec<Vec<u8>>>, u64), KvError>;

/// Operations the global state tier serves (Tab. 2's state tier plus the
/// scheduler's warm sets and counters). Every method routes on its key, so
/// a sharded backend places each key's value, locks, counters and sets on
/// one owning shard.
pub trait KvBackend: Send + Sync {
    /// Get a value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError>;

    /// Set a value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError>;

    /// Read a byte range (`None` if the key is missing).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError>;

    /// Write a byte range, zero-extending the value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError>;

    /// Read several byte ranges of one value in one round-trip (`None` if
    /// the key is missing).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError>;

    /// Write several byte ranges of one value in one round-trip.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError>;

    /// Append bytes; returns the new length.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError>;

    /// Delete a key; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn del(&self, key: &str) -> Result<bool, KvError>;

    /// Whether the key exists.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn exists(&self, key: &str) -> Result<bool, KvError>;

    /// Value length in bytes (0 if missing).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn strlen(&self, key: &str) -> Result<u64, KvError>;

    /// Atomically add to a counter; returns the new value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError>;

    /// Add a set member; returns true if newly added.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError>;

    /// Remove a set member; returns true if it was present.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError>;

    /// List set members.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError>;

    /// Set cardinality.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn scard(&self, key: &str) -> Result<u64, KvError>;

    /// Try to acquire a global lock once.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError>;

    /// Acquire a global lock, retrying with backoff.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError>;

    /// Release a global lock.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError>;

    /// Liveness probe (all shards for a sharded backend).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn ping(&self) -> Result<(), KvError>;

    /// Clear the store (all shards for a sharded backend).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn flush(&self) -> Result<(), KvError>;

    /// Get several whole values, in request order — the snapshot plane's
    /// chunk fetch. Sharded backends group the keys per owning shard and
    /// issue one round-trip per shard; the default is a per-key loop so
    /// wrappers and test backends stay correct without batching.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn multi_get(&self, keys: &[String]) -> Result<Vec<Option<Vec<u8>>>, KvError> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// How many shards back this handle (1 for a plain client).
    fn shard_count(&self) -> usize {
        1
    }

    /// Per-shard load reports in shard-index order (key count, value
    /// bytes, per-op counters) — the migration planner's and the tier
    /// autoscaler's skew signal. Backends with nothing to report (test
    /// wrappers) return an empty list.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn shard_stats(&self) -> Result<Vec<ShardStats>, KvError> {
        Ok(Vec::new())
    }

    /// The routing epoch this backend currently serves under
    /// ([`EPOCH_ANY`](crate::EPOCH_ANY) for backends that do not track
    /// routing tables). A function-side cache stamps its snapshots with it
    /// so a reshard or failover (which always bumps the epoch) forces
    /// revalidation.
    fn routing_epoch(&self) -> u64 {
        crate::EPOCH_ANY
    }

    /// The key's mutation-version counter (0 if never mutated, or if the
    /// backend does not track versions) — a revalidation probe carrying no
    /// value bytes.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn version_of(&self, key: &str) -> Result<u64, KvError> {
        let _ = key;
        Ok(0)
    }

    /// [`KvBackend::get`] with the version the bytes were observed at,
    /// read atomically on the shard (0 from backends that do not track
    /// versions).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
        Ok((self.get(key)?, 0))
    }

    /// [`KvBackend::set`] returning the version the write installed (0
    /// from backends that do not track versions).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
        self.set(key, value)?;
        Ok(0)
    }

    /// [`KvBackend::set_range`] returning the version the write installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn set_range_versioned(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<u64, KvError> {
        self.set_range(key, offset, data)?;
        Ok(0)
    }

    /// [`KvBackend::del`] returning the version the deletion installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
        Ok((self.del(key)?, 0))
    }

    /// [`KvBackend::multi_get_range`] with the version the runs were
    /// observed at (one version for the whole atomic read).
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn multi_get_range_versioned(&self, key: &str, spans: &[(u64, u64)]) -> VersionedRunsResult {
        Ok((self.multi_get_range(key, spans)?, 0))
    }

    /// [`KvBackend::multi_set_range`] returning the version the batch
    /// installed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError`] on network/server failure.
    fn multi_set_range_versioned(
        &self,
        key: &str,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> Result<u64, KvError> {
        self.multi_set_range(key, writes)?;
        Ok(0)
    }
}

impl KvBackend for KvClient {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
        KvClient::get(self, key)
    }

    fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
        KvClient::set(self, key, value)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Option<Vec<u8>>, KvError> {
        KvClient::get_range(self, key, offset, len)
    }

    fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
        KvClient::set_range(self, key, offset, data)
    }

    fn multi_get_range(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
        KvClient::multi_get_range(self, key, spans)
    }

    fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
        KvClient::multi_set_range(self, key, writes)
    }

    fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
        KvClient::append(self, key, data)
    }

    fn del(&self, key: &str) -> Result<bool, KvError> {
        KvClient::del(self, key)
    }

    fn exists(&self, key: &str) -> Result<bool, KvError> {
        KvClient::exists(self, key)
    }

    fn strlen(&self, key: &str) -> Result<u64, KvError> {
        KvClient::strlen(self, key)
    }

    fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
        KvClient::incr(self, key, delta)
    }

    fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        KvClient::sadd(self, key, member)
    }

    fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
        KvClient::srem(self, key, member)
    }

    fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
        KvClient::smembers(self, key)
    }

    fn scard(&self, key: &str) -> Result<u64, KvError> {
        KvClient::scard(self, key)
    }

    fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
        KvClient::try_lock(self, key, mode)
    }

    fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        KvClient::lock(self, key, mode)
    }

    fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
        KvClient::unlock(self, key, mode)
    }

    fn multi_get(&self, keys: &[String]) -> Result<Vec<Option<Vec<u8>>>, KvError> {
        KvClient::multi_get(self, keys)
    }

    fn ping(&self) -> Result<(), KvError> {
        KvClient::ping(self)
    }

    fn flush(&self) -> Result<(), KvError> {
        KvClient::flush(self)
    }

    fn shard_stats(&self) -> Result<Vec<ShardStats>, KvError> {
        Ok(vec![KvClient::stats(self)?])
    }

    fn version_of(&self, key: &str) -> Result<u64, KvError> {
        KvClient::version_of(self, key)
    }

    fn get_versioned(&self, key: &str) -> Result<(Option<Vec<u8>>, u64), KvError> {
        KvClient::get_versioned(self, key)
    }

    fn set_versioned(&self, key: &str, value: Vec<u8>) -> Result<u64, KvError> {
        KvClient::set_versioned(self, key, value)
    }

    fn set_range_versioned(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<u64, KvError> {
        KvClient::set_range_versioned(self, key, offset, data)
    }

    fn del_versioned(&self, key: &str) -> Result<(bool, u64), KvError> {
        KvClient::del_versioned(self, key)
    }

    fn multi_get_range_versioned(
        &self,
        key: &str,
        spans: &[(u64, u64)],
    ) -> Result<(Option<Vec<Vec<u8>>>, u64), KvError> {
        KvClient::multi_get_range_versioned(self, key, spans)
    }

    fn multi_set_range_versioned(
        &self,
        key: &str,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> Result<u64, KvError> {
        KvClient::multi_set_range_versioned(self, key, writes)
    }
}
