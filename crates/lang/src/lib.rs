//! FL: a small C-like language compiled to FVM modules.
//!
//! FL is the reproduction's untrusted guest toolchain — the stand-in for the
//! paper's LLVM C/C++→WebAssembly pipeline (Fig. 3, DESIGN.md substitution
//! S2). Guest workloads (Polybench kernels, SGD inner loops, example
//! functions) are written in FL, compiled to module binaries on the
//! "user side", uploaded, and then re-validated by the trusted runtime.
//!
//! # Language summary
//!
//! * Types: `int` (i32), `long` (i64), `float` (f32), `double` (f64),
//!   `ptr T` (a typed 32-bit address into linear memory), `void`.
//! * Items: `extern` declarations (imports from the Faaslet host interface,
//!   Tab. 2) and function definitions (all exported by name).
//! * Statements: declarations, assignment, pointer stores `p[i] = v`,
//!   `if`/`else`, `while`, `for`, `return`, `break`, `continue`, blocks.
//! * Expressions: arithmetic, comparisons, bitwise ops, short-circuit
//!   `&&`/`||`, pointer indexing `p[i]` and scaled pointer arithmetic,
//!   C-style casts, calls, and intrinsics (`memsize`, `memgrow`, `memcopy`,
//!   `memfill`, `sqrt`, `fabs`, `floor`, `ceil`, `fmin`, `fmax`).
//! * Strict typing: no implicit conversions; falling off a non-`void`
//!   function traps.
//!
//! # Examples
//!
//! ```
//! use faasm_fvm::prelude::*;
//!
//! let src = r#"
//!     int fib(int n) {
//!         if (n < 2) { return n; }
//!         return fib(n - 1) + fib(n - 2);
//!     }
//! "#;
//! let module = faasm_lang::compile(src).unwrap();
//! let object = ObjectModule::prepare(module).unwrap();
//! let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
//! assert_eq!(inst.invoke("fib", &[Val::I32(10)]).unwrap(), Some(Val::I32(55)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod parser;
pub mod token;

pub use codegen::{compile, compile_with, MemConfig};
pub use error::{CompileError, Phase, Pos};
pub use parser::parse;

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_fvm::prelude::*;

    /// Compile FL, prepare, instantiate, and invoke `name` with `args`.
    fn run(src: &str, name: &str, args: &[Val]) -> Result<Option<Val>, Trap> {
        let module = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        let object = ObjectModule::prepare(module).expect("FL output must validate");
        let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
        inst.invoke(name, args)
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = r#"
            int square(int x) { return x * x; }
            int f(int a, int b) { return square(a) + square(b); }
        "#;
        assert_eq!(
            run(src, "f", &[Val::I32(3), Val::I32(4)]).unwrap(),
            Some(Val::I32(25))
        );
    }

    #[test]
    fn recursion_works() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(
            run(src, "fact", &[Val::I32(6)]).unwrap(),
            Some(Val::I32(720))
        );
    }

    #[test]
    fn while_loop_and_assignment() {
        let src = r#"
            int sum_to(int n) {
                int acc = 0;
                int i = 1;
                while (i <= n) {
                    acc = acc + i;
                    i = i + 1;
                }
                return acc;
            }
        "#;
        assert_eq!(
            run(src, "sum_to", &[Val::I32(100)]).unwrap(),
            Some(Val::I32(5050))
        );
    }

    #[test]
    fn for_loop_with_break_continue() {
        let src = r#"
            int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    if (i > 10) { break; }
                    acc = acc + i;
                }
                return acc;
            }
        "#;
        // 1 + 3 + 5 + 7 + 9 = 25.
        assert_eq!(run(src, "f", &[Val::I32(100)]).unwrap(), Some(Val::I32(25)));
    }

    #[test]
    fn nested_loops_with_break() {
        let src = r#"
            int f(int n) {
                int count = 0;
                for (int i = 0; i < n; i = i + 1) {
                    for (int j = 0; j < n; j = j + 1) {
                        if (j > i) { break; }
                        count = count + 1;
                    }
                }
                return count;
            }
        "#;
        // sum over i of (i+1) = n(n+1)/2.
        assert_eq!(run(src, "f", &[Val::I32(5)]).unwrap(), Some(Val::I32(15)));
    }

    #[test]
    fn doubles_and_intrinsics() {
        let src = r#"
            double hyp(double a, double b) {
                return sqrt(a * a + b * b);
            }
        "#;
        assert_eq!(
            run(src, "hyp", &[Val::F64(3.0), Val::F64(4.0)]).unwrap(),
            Some(Val::F64(5.0))
        );
    }

    #[test]
    fn pointers_index_memory() {
        let src = r#"
            double sum(ptr double a, int n) {
                double acc = 0.0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + a[i];
                }
                return acc;
            }
            void fill(ptr double a, int n) {
                for (int i = 0; i < n; i = i + 1) {
                    a[i] = (double) i;
                }
            }
        "#;
        let module = compile(src).unwrap();
        let object = ObjectModule::prepare(module).unwrap();
        let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
        inst.invoke("fill", &[Val::I32(64), Val::I32(10)]).unwrap();
        let r = inst.invoke("sum", &[Val::I32(64), Val::I32(10)]).unwrap();
        assert_eq!(r, Some(Val::F64(45.0)));
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let src = r#"
            double second(ptr double a) {
                ptr double b = a + 1;
                return b[0];
            }
        "#;
        let module = compile(src).unwrap();
        let object = ObjectModule::prepare(module).unwrap();
        let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
        inst.memory_mut().unwrap().write_f64(8, 7.5).unwrap();
        assert_eq!(
            inst.invoke("second", &[Val::I32(0)]).unwrap(),
            Some(Val::F64(7.5))
        );
    }

    #[test]
    fn casts() {
        let src = r#"
            double mix(int a, long b, float c) {
                return (double) a + (double) b + (double) c;
            }
            int down(double x) { return (int) x; }
        "#;
        assert_eq!(
            run(src, "mix", &[Val::I32(1), Val::I64(2), Val::F32(0.5)]).unwrap(),
            Some(Val::F64(3.5))
        );
        assert_eq!(
            run(src, "down", &[Val::F64(9.99)]).unwrap(),
            Some(Val::I32(9))
        );
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero on the right of && must not execute when the left
        // is false.
        let src = r#"
            int f(int a, int b) {
                if (a != 0 && 10 / a > b) { return 1; }
                return 0;
            }
        "#;
        assert_eq!(
            run(src, "f", &[Val::I32(0), Val::I32(1)]).unwrap(),
            Some(Val::I32(0))
        );
        assert_eq!(
            run(src, "f", &[Val::I32(2), Val::I32(1)]).unwrap(),
            Some(Val::I32(1))
        );
    }

    #[test]
    fn logical_ops_normalise_to_bool() {
        let src = "int f(int a, int b) { return a && b; }";
        assert_eq!(
            run(src, "f", &[Val::I32(7), Val::I32(9)]).unwrap(),
            Some(Val::I32(1))
        );
        let src = "int f(int a, int b) { return a || b; }";
        assert_eq!(
            run(src, "f", &[Val::I32(0), Val::I32(9)]).unwrap(),
            Some(Val::I32(1))
        );
        assert_eq!(
            run(src, "f", &[Val::I32(0), Val::I32(0)]).unwrap(),
            Some(Val::I32(0))
        );
        let src = "int f(int a) { return !a; }";
        assert_eq!(run(src, "f", &[Val::I32(5)]).unwrap(), Some(Val::I32(0)));
    }

    #[test]
    fn extern_host_calls() {
        let src = r#"
            extern int get_magic(int seed);
            int f(int x) { return get_magic(x) + 1; }
        "#;
        let module = compile(src).unwrap();
        let object = ObjectModule::prepare(module).unwrap();
        let mut linker = Linker::new();
        linker.define_fn("faasm", "get_magic", |_ctx, args| {
            Ok(vec![Val::I32(args[0].as_i32().unwrap() * 10)])
        });
        let mut inst = Instance::new(object, &linker, Box::new(())).unwrap();
        assert_eq!(
            inst.invoke("f", &[Val::I32(4)]).unwrap(),
            Some(Val::I32(41))
        );
    }

    #[test]
    fn memory_intrinsics() {
        let src = r#"
            int grow_and_report(int pages) {
                int old = memgrow(pages);
                if (old < 0) { return -1; }
                return memsize();
            }
        "#;
        assert_eq!(
            run(src, "grow_and_report", &[Val::I32(2)]).unwrap(),
            Some(Val::I32(6)),
            "default initial is 4 pages"
        );
    }

    #[test]
    fn memfill_and_memcopy() {
        let src = r#"
            int f() {
                memfill(0, 65, 8);
                memcopy(16, 0, 8);
                ptr int p = (ptr int) 16;
                return p[0];
            }
        "#;
        // 0x41414141.
        assert_eq!(run(src, "f", &[]).unwrap(), Some(Val::I32(0x4141_4141)));
    }

    #[test]
    fn shadowing_in_inner_scopes() {
        let src = r#"
            int f() {
                int x = 1;
                {
                    int x = 2;
                    x = x + 1;
                }
                return x;
            }
        "#;
        assert_eq!(run(src, "f", &[]).unwrap(), Some(Val::I32(1)));
    }

    #[test]
    fn missing_return_traps() {
        let src = "int f(int x) { if (x > 0) { return 1; } }";
        assert_eq!(run(src, "f", &[Val::I32(-1)]), Err(Trap::Unreachable));
        assert_eq!(run(src, "f", &[Val::I32(5)]).unwrap(), Some(Val::I32(1)));
    }

    #[test]
    fn long_arithmetic() {
        let src = "long f(long a, long b) { return a * b + 1L; }";
        assert_eq!(
            run(src, "f", &[Val::I64(1 << 40), Val::I64(4)]).unwrap(),
            Some(Val::I64((1i64 << 42) + 1))
        );
    }

    // ── Error cases ────────────────────────────────────────────────────

    fn compile_err(src: &str) -> CompileError {
        compile(src).unwrap_err()
    }

    #[test]
    fn type_mismatch_rejected() {
        let e = compile_err("int f() { return 1.5; }");
        assert!(e.msg.contains("return type double"));
    }

    #[test]
    fn unknown_variable_rejected() {
        let e = compile_err("int f() { return y; }");
        assert!(e.msg.contains("unknown variable"));
    }

    #[test]
    fn unknown_function_rejected() {
        let e = compile_err("int f() { return g(); }");
        assert!(e.msg.contains("unknown function"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = compile_err("int g(int x) { return x; } int f() { return g(); }");
        assert!(e.msg.contains("expects 1 arguments"));
    }

    #[test]
    fn argument_type_mismatch_rejected() {
        let e = compile_err("int g(int x) { return x; } int f() { return g(1L); }");
        assert!(e.msg.contains("expected int"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = compile_err("void f() { break; }");
        assert!(e.msg.contains("break outside loop"));
    }

    #[test]
    fn continue_outside_loop_rejected() {
        let e = compile_err("void f() { continue; }");
        assert!(e.msg.contains("continue outside loop"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = compile_err("void f() { int x = 1; int x = 2; }");
        assert!(e.msg.contains("already declared"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let e = compile_err("void f() {} void f() {}");
        assert!(e.msg.contains("duplicate definition"));
    }

    #[test]
    fn void_variable_rejected() {
        let e = compile_err("void f() { void x; }");
        assert!(e.msg.contains("void variable"));
    }

    #[test]
    fn mixed_type_operands_rejected() {
        let e = compile_err("int f(int a, long b) { return a + b; }");
        assert!(e.msg.contains("different types"));
    }

    #[test]
    fn indexing_non_pointer_rejected() {
        let e = compile_err("int f(int a) { return a[0]; }");
        assert!(e.msg.contains("requires a ptr"));
    }

    #[test]
    fn condition_must_be_int() {
        let e = compile_err("void f(double x) { if (x) { } }");
        assert!(e.msg.contains("condition must be int"));
    }

    #[test]
    fn void_return_with_value_rejected() {
        let e = compile_err("void f() { return 1; }");
        assert!(e.msg.contains("void function"));
    }

    #[test]
    fn fl_output_always_validates() {
        // A torture program exercising every construct; the generated module
        // must pass the FVM validator.
        let src = r#"
            extern void noop();
            double torture(int n, ptr double data) {
                double acc = 0.0;
                long big = 1L;
                for (int i = 0; i < n; i = i + 1) {
                    int j = 0;
                    while (j < 4) {
                        if ((i & 1) == 0 && j > 0 || i == 3) {
                            acc = acc + data[i] * 2.0;
                        } else {
                            acc = acc - 0.5;
                        }
                        j = j + 1;
                        if (j == 3) { continue; }
                        if (acc > 1000.0) { break; }
                    }
                    big = big * 2L;
                    data[i] = acc + (double) big;
                    noop();
                }
                return fmax(acc, fabs(-1.0));
            }
        "#;
        let module = compile(src).unwrap();
        faasm_fvm::validate(&module).expect("FL output must pass validation");
    }
}
