//! Abstract syntax tree for FL.

use crate::error::Pos;

/// An FL type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// 32-bit float.
    Float,
    /// 64-bit float.
    Double,
    /// No value (function returns only).
    Void,
    /// A typed pointer into linear memory (represented as a 32-bit address).
    Ptr(Box<Ty>),
}

impl Ty {
    /// Size in bytes of a value of this type in linear memory.
    ///
    /// # Panics
    ///
    /// Panics on `void`, which has no size (a compiler-internal misuse, not a
    /// user error — user code can never form a `void` value).
    pub fn size(&self) -> u32 {
        match self {
            Ty::Int | Ty::Float | Ty::Ptr(_) => 4,
            Ty::Long | Ty::Double => 8,
            Ty::Void => panic!("void has no size"),
        }
    }

    /// True for `int`/`long` and pointers.
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long | Ty::Ptr(_))
    }

    /// True for `float`/`double`.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::Float | Ty::Double)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Float => write!(f, "float"),
            Ty::Double => write!(f, "double"),
            Ty::Void => write!(f, "void"),
            Ty::Ptr(t) => write!(f, "ptr {t}"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), yields `int` 0/1.
    Not,
    /// Bitwise complement (`~`).
    BitNot,
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Position for diagnostics.
    pub pos: Pos,
    /// The expression itself.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `42`
    IntLit(i32),
    /// `42L`
    LongLit(i64),
    /// `1.5f`
    FloatLit(f32),
    /// `1.5`
    DoubleLit(f64),
    /// A variable reference.
    Var(String),
    /// `f(a, b)`
    Call(String, Vec<Expr>),
    /// `p[i]` — load through a pointer.
    Index(Box<Expr>, Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// `(type) expr`
    Cast(Ty, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `type name = init;`
    Decl {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: String,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Position for diagnostics.
        pos: Pos,
    },
    /// `lhs = rhs;` where `lhs` is a variable.
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        value: Expr,
        /// Position for diagnostics.
        pos: Pos,
    },
    /// `p[i] = v;` — store through a pointer.
    Store {
        /// Pointer expression.
        ptr: Expr,
        /// Index expression.
        index: Expr,
        /// Value to store.
        value: Expr,
        /// Position for diagnostics.
        pos: Pos,
    },
    /// An expression evaluated for its side effects.
    ExprStmt(Expr),
    /// `if (cond) then else otherwise`
    If {
        /// Condition (integer).
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Optional else-branch.
        otherwise: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While {
        /// Condition (integer).
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Optional initialiser statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (defaults to true).
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>, Pos),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Ty,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Return type.
    pub ret: Ty,
    /// Function name (also its export name).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position for diagnostics.
    pub pos: Pos,
}

/// An `extern` declaration: an import from the Faaslet host interface.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    /// Return type.
    pub ret: Ty,
    /// Imported name (resolved in the `faasm` namespace).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Param>,
    /// Position for diagnostics.
    pub pos: Pos,
}

/// A parsed compilation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Host-interface imports, in declaration order.
    pub externs: Vec<ExternDecl>,
    /// Function definitions, in order.
    pub funcs: Vec<FuncDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Ty::Int.size(), 4);
        assert_eq!(Ty::Float.size(), 4);
        assert_eq!(Ty::Long.size(), 8);
        assert_eq!(Ty::Double.size(), 8);
        assert_eq!(Ty::Ptr(Box::new(Ty::Double)).size(), 4);
    }

    #[test]
    fn type_classification() {
        assert!(Ty::Int.is_integer());
        assert!(Ty::Ptr(Box::new(Ty::Int)).is_integer());
        assert!(!Ty::Double.is_integer());
        assert!(Ty::Float.is_float());
        assert!(!Ty::Long.is_float());
    }

    #[test]
    fn type_display() {
        assert_eq!(Ty::Ptr(Box::new(Ty::Double)).to_string(), "ptr double");
        assert_eq!(Ty::Void.to_string(), "void");
    }
}
