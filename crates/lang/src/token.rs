//! Lexical analysis for FL.

use crate::error::{CompileError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// 32-bit integer literal.
    IntLit(i32),
    /// 64-bit integer literal (`L` suffix).
    LongLit(i64),
    /// 32-bit float literal (`f` suffix).
    FloatLit(f32),
    /// 64-bit float literal.
    DoubleLit(f64),
    /// A keyword (`int`, `while`, ...).
    Kw(Kw),
    /// A punctuation or operator token.
    P(P),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `int` — 32-bit integer type.
    Int,
    /// `long` — 64-bit integer type.
    Long,
    /// `float` — 32-bit float type.
    Float,
    /// `double` — 64-bit float type.
    Double,
    /// `void` — no value.
    Void,
    /// `ptr` — pointer type prefix.
    Ptr,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `extern` — host-interface import declaration.
    Extern,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P {
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Not,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `~`.
    Tilde,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenise FL source.
///
/// # Errors
///
/// Returns [`CompileError`] for unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = pos!();
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::lex(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let word = &src[s..i];
                let tok = match word {
                    "int" => Tok::Kw(Kw::Int),
                    "long" => Tok::Kw(Kw::Long),
                    "float" => Tok::Kw(Kw::Float),
                    "double" => Tok::Kw(Kw::Double),
                    "void" => Tok::Kw(Kw::Void),
                    "ptr" => Tok::Kw(Kw::Ptr),
                    "if" => Tok::Kw(Kw::If),
                    "else" => Tok::Kw(Kw::Else),
                    "while" => Tok::Kw(Kw::While),
                    "for" => Tok::Kw(Kw::For),
                    "return" => Tok::Kw(Kw::Return),
                    "break" => Tok::Kw(Kw::Break),
                    "continue" => Tok::Kw(Kw::Continue),
                    "extern" => Tok::Kw(Kw::Extern),
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { tok, pos: start });
            }
            '0'..='9' => {
                let s = i;
                let mut is_float = false;
                if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                    i += 2;
                    col += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                        col += 1;
                    }
                    let hex = &src[s + 2..i];
                    let v = u64::from_str_radix(hex, 16)
                        .map_err(|_| CompileError::lex(start, "bad hex literal"))?;
                    // An `L` suffix makes it a long.
                    if i < bytes.len() && bytes[i] == b'L' {
                        i += 1;
                        col += 1;
                        out.push(Token {
                            tok: Tok::LongLit(v as i64),
                            pos: start,
                        });
                    } else {
                        let v32 = u32::try_from(v)
                            .map_err(|_| CompileError::lex(start, "hex literal overflows int"))?;
                        out.push(Token {
                            tok: Tok::IntLit(v32 as i32),
                            pos: start,
                        });
                    }
                    continue;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    col += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] | 0x20) == b'e' && is_float {
                    i += 1;
                    col += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                        col += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                let text = &src[s..i];
                if is_float {
                    if i < bytes.len() && bytes[i] == b'f' {
                        i += 1;
                        col += 1;
                        let v: f32 = text
                            .parse()
                            .map_err(|_| CompileError::lex(start, "bad float literal"))?;
                        out.push(Token {
                            tok: Tok::FloatLit(v),
                            pos: start,
                        });
                    } else {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| CompileError::lex(start, "bad double literal"))?;
                        out.push(Token {
                            tok: Tok::DoubleLit(v),
                            pos: start,
                        });
                    }
                } else if i < bytes.len() && bytes[i] == b'L' {
                    i += 1;
                    col += 1;
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CompileError::lex(start, "bad long literal"))?;
                    out.push(Token {
                        tok: Tok::LongLit(v),
                        pos: start,
                    });
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CompileError::lex(start, "bad int literal"))?;
                    let v32 = i32::try_from(v)
                        .map_err(|_| CompileError::lex(start, "int literal overflows; use L"))?;
                    out.push(Token {
                        tok: Tok::IntLit(v32),
                        pos: start,
                    });
                }
            }
            _ => {
                let (p, width) = match (c, bytes.get(i + 1).map(|b| *b as char)) {
                    ('=', Some('=')) => (P::EqEq, 2),
                    ('!', Some('=')) => (P::NotEq, 2),
                    ('<', Some('=')) => (P::Le, 2),
                    ('>', Some('=')) => (P::Ge, 2),
                    ('<', Some('<')) => (P::Shl, 2),
                    ('>', Some('>')) => (P::Shr, 2),
                    ('&', Some('&')) => (P::AndAnd, 2),
                    ('|', Some('|')) => (P::OrOr, 2),
                    ('(', _) => (P::LParen, 1),
                    (')', _) => (P::RParen, 1),
                    ('{', _) => (P::LBrace, 1),
                    ('}', _) => (P::RBrace, 1),
                    ('[', _) => (P::LBracket, 1),
                    (']', _) => (P::RBracket, 1),
                    (',', _) => (P::Comma, 1),
                    (';', _) => (P::Semi, 1),
                    ('=', _) => (P::Assign, 1),
                    ('+', _) => (P::Plus, 1),
                    ('-', _) => (P::Minus, 1),
                    ('*', _) => (P::Star, 1),
                    ('/', _) => (P::Slash, 1),
                    ('%', _) => (P::Percent, 1),
                    ('<', _) => (P::Lt, 1),
                    ('>', _) => (P::Gt, 1),
                    ('!', _) => (P::Not, 1),
                    ('&', _) => (P::Amp, 1),
                    ('|', _) => (P::Pipe, 1),
                    ('^', _) => (P::Caret, 1),
                    ('~', _) => (P::Tilde, 1),
                    _ => {
                        return Err(CompileError::lex(
                            start,
                            format!("unexpected character {c:?}"),
                        ))
                    }
                };
                out.push(Token {
                    tok: Tok::P(p),
                    pos: start,
                });
                i += width;
                col += width as u32;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo extern"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("foo".into()),
                Tok::Kw(Kw::Extern),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            toks("42 42L 1.5 1.5f 0x10 0xffL 1.0e3"),
            vec![
                Tok::IntLit(42),
                Tok::LongLit(42),
                Tok::DoubleLit(1.5),
                Tok::FloatLit(1.5),
                Tok::IntLit(16),
                Tok::LongLit(255),
                Tok::DoubleLit(1000.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn int_overflow_needs_suffix() {
        assert!(lex("3000000000").is_err());
        assert_eq!(
            toks("3000000000L"),
            vec![Tok::LongLit(3_000_000_000), Tok::Eof]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("<= << < == = && & || |"),
            vec![
                Tok::P(P::Le),
                Tok::P(P::Shl),
                Tok::P(P::Lt),
                Tok::P(P::EqEq),
                Tok::P(P::Assign),
                Tok::P(P::AndAnd),
                Tok::P(P::Amp),
                Tok::P(P::OrOr),
                Tok::P(P::Pipe),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n b /* block\n comment */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unknown_char_rejected() {
        assert!(lex("a @ b").is_err());
    }
}
