//! Type-checked code generation from the FL AST to FVM modules.
//!
//! FL is deliberately strict: no implicit conversions (use casts), exact
//! argument types at calls, and `break`/`continue` only inside loops. Falling
//! off the end of a non-`void` function traps at runtime (`unreachable`) —
//! the safe analogue of C's undefined behaviour.

use std::collections::HashMap;

use faasm_fvm::instr::MemArg;
use faasm_fvm::module::{Module, ModuleBuilder};
use faasm_fvm::types::{BlockType, FuncType, ValType};
use faasm_fvm::Instr;

use crate::ast::*;
use crate::error::{CompileError, Pos};

/// Memory configuration for compiled modules.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Pages mapped at instantiation.
    pub initial_pages: u32,
    /// The per-function memory limit (§3.2).
    pub max_pages: u32,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            initial_pages: 4,
            max_pages: 256,
        }
    }
}

/// Compile FL source into an FVM module with default memory.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered.
///
/// # Examples
///
/// ```
/// let module = faasm_lang::compile("int add(int a, int b) { return a + b; }").unwrap();
/// assert_eq!(module.funcs.len(), 1);
/// ```
pub fn compile(src: &str) -> Result<Module, CompileError> {
    compile_with(src, MemConfig::default())
}

/// Compile FL source with an explicit memory configuration.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered.
pub fn compile_with(src: &str, mem: MemConfig) -> Result<Module, CompileError> {
    let prog = crate::parser::parse(src)?;
    gen_program(&prog, mem)
}

fn val_type(ty: &Ty) -> ValType {
    match ty {
        Ty::Int | Ty::Ptr(_) => ValType::I32,
        Ty::Long => ValType::I64,
        Ty::Float => ValType::F32,
        Ty::Double => ValType::F64,
        Ty::Void => unreachable!("void has no value type"),
    }
}

#[derive(Clone)]
struct FuncSig {
    index: u32,
    params: Vec<Ty>,
    ret: Ty,
}

struct LoopCtx {
    exit_depth: u32,
    cont_depth: u32,
}

fn gen_program(prog: &Program, mem: MemConfig) -> Result<Module, CompileError> {
    let mut b = ModuleBuilder::new();
    b.memory(mem.initial_pages, mem.max_pages);

    let mut sigs: HashMap<String, FuncSig> = HashMap::new();
    let mut next_index = 0u32;

    for ext in &prog.externs {
        if sigs.contains_key(&ext.name) {
            return Err(CompileError::check(
                ext.pos,
                format!("duplicate declaration of {:?}", ext.name),
            ));
        }
        let ft = FuncType::new(
            ext.params.iter().map(|p| val_type(&p.ty)).collect(),
            if ext.ret == Ty::Void {
                vec![]
            } else {
                vec![val_type(&ext.ret)]
            },
        );
        let type_idx = b.sig(ft);
        let idx = b.import_func("faasm", &ext.name, type_idx);
        debug_assert_eq!(idx, next_index);
        sigs.insert(
            ext.name.clone(),
            FuncSig {
                index: next_index,
                params: ext.params.iter().map(|p| p.ty.clone()).collect(),
                ret: ext.ret.clone(),
            },
        );
        next_index += 1;
    }

    for f in &prog.funcs {
        if sigs.contains_key(&f.name) {
            return Err(CompileError::check(
                f.pos,
                format!("duplicate definition of {:?}", f.name),
            ));
        }
        sigs.insert(
            f.name.clone(),
            FuncSig {
                index: next_index,
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                ret: f.ret.clone(),
            },
        );
        next_index += 1;
    }

    for f in &prog.funcs {
        let ft = FuncType::new(
            f.params.iter().map(|p| val_type(&p.ty)).collect(),
            if f.ret == Ty::Void {
                vec![]
            } else {
                vec![val_type(&f.ret)]
            },
        );
        let type_idx = b.sig(ft);
        let mut g = Gen {
            sigs: &sigs,
            ret: f.ret.clone(),
            scopes: vec![HashMap::new()],
            local_types: Vec::new(),
            code: Vec::new(),
            depth: 0,
            loops: Vec::new(),
        };
        for p in &f.params {
            g.declare(p.name.clone(), p.ty.clone(), f.pos)?;
        }
        let n_params = f.params.len();
        for s in &f.body {
            g.stmt(s)?;
        }
        if f.ret != Ty::Void {
            // Falling off the end of a value-returning function traps.
            g.code.push(Instr::Unreachable);
        }
        g.code.push(Instr::End);
        let locals: Vec<ValType> = g.local_types[n_params..].to_vec();
        let idx = b.func(type_idx, locals, g.code);
        b.export_func(&f.name, idx);
    }

    Ok(b.build())
}

struct Gen<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    ret: Ty,
    scopes: Vec<HashMap<String, (u32, Ty)>>,
    local_types: Vec<ValType>,
    code: Vec<Instr>,
    depth: u32,
    loops: Vec<LoopCtx>,
}

impl<'a> Gen<'a> {
    fn declare(&mut self, name: String, ty: Ty, pos: Pos) -> Result<u32, CompileError> {
        if ty == Ty::Void {
            return Err(CompileError::check(pos, "cannot declare a void variable"));
        }
        let scope = self.scopes.last_mut().expect("scope invariant");
        if scope.contains_key(&name) {
            return Err(CompileError::check(
                pos,
                format!("{name:?} already declared in this scope"),
            ));
        }
        let idx = self.local_types.len() as u32;
        self.local_types.push(val_type(&ty));
        scope.insert(name, (idx, ty));
        Ok(idx)
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<(u32, Ty), CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some((idx, ty)) = scope.get(name) {
                return Ok((*idx, ty.clone()));
            }
        }
        Err(CompileError::check(
            pos,
            format!("unknown variable {name:?}"),
        ))
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl {
                ty,
                name,
                init,
                pos,
            } => {
                if let Some(init) = init {
                    let got = self.expr(init)?;
                    if got != *ty {
                        return Err(CompileError::check(
                            *pos,
                            format!("initialiser has type {got}, expected {ty}"),
                        ));
                    }
                    let idx = self.declare(name.clone(), ty.clone(), *pos)?;
                    self.code.push(Instr::LocalSet(idx));
                } else {
                    // Locals start zeroed; nothing to emit.
                    self.declare(name.clone(), ty.clone(), *pos)?;
                }
                Ok(())
            }
            Stmt::Assign { name, value, pos } => {
                let (idx, ty) = self.lookup(name, *pos)?;
                let got = self.expr(value)?;
                if got != ty {
                    return Err(CompileError::check(
                        *pos,
                        format!("cannot assign {got} to {name:?} of type {ty}"),
                    ));
                }
                self.code.push(Instr::LocalSet(idx));
                Ok(())
            }
            Stmt::Store {
                ptr,
                index,
                value,
                pos,
            } => {
                let inner = self.gen_element_addr(ptr, index, *pos)?;
                let got = self.expr(value)?;
                if got != inner {
                    return Err(CompileError::check(
                        *pos,
                        format!("cannot store {got} through ptr {inner}"),
                    ));
                }
                self.code.push(store_instr(&inner));
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                let ty = self.expr(e)?;
                if ty != Ty::Void {
                    self.code.push(Instr::Drop);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                self.int_cond(cond)?;
                self.code.push(Instr::If(BlockType::Empty));
                self.depth += 1;
                self.stmt(then)?;
                if let Some(e) = otherwise {
                    self.code.push(Instr::Else);
                    self.stmt(e)?;
                }
                self.code.push(Instr::End);
                self.depth -= 1;
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.code.push(Instr::Block(BlockType::Empty));
                self.depth += 1;
                let exit_depth = self.depth;
                self.code.push(Instr::Loop(BlockType::Empty));
                self.depth += 1;
                let head_depth = self.depth;
                self.int_cond(cond)?;
                self.code.push(Instr::I32Eqz);
                self.code.push(Instr::BrIf(self.depth - exit_depth));
                self.loops.push(LoopCtx {
                    exit_depth,
                    cont_depth: head_depth,
                });
                self.stmt(body)?;
                self.loops.pop();
                self.code.push(Instr::Br(self.depth - head_depth));
                self.code.push(Instr::End);
                self.depth -= 1;
                self.code.push(Instr::End);
                self.depth -= 1;
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                self.code.push(Instr::Block(BlockType::Empty));
                self.depth += 1;
                let exit_depth = self.depth;
                self.code.push(Instr::Loop(BlockType::Empty));
                self.depth += 1;
                let head_depth = self.depth;
                if let Some(cond) = cond {
                    self.int_cond(cond)?;
                    self.code.push(Instr::I32Eqz);
                    self.code.push(Instr::BrIf(self.depth - exit_depth));
                }
                self.code.push(Instr::Block(BlockType::Empty));
                self.depth += 1;
                let cont_depth = self.depth;
                self.loops.push(LoopCtx {
                    exit_depth,
                    cont_depth,
                });
                self.stmt(body)?;
                self.loops.pop();
                self.code.push(Instr::End);
                self.depth -= 1;
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.code.push(Instr::Br(self.depth - head_depth));
                self.code.push(Instr::End);
                self.depth -= 1;
                self.code.push(Instr::End);
                self.depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(expr, pos) => {
                match (expr, self.ret.clone()) {
                    (None, Ty::Void) => {}
                    (Some(e), ret) if ret != Ty::Void => {
                        let got = self.expr(e)?;
                        if got != ret {
                            return Err(CompileError::check(
                                *pos,
                                format!("return type {got}, function returns {ret}"),
                            ));
                        }
                    }
                    (None, ret) => {
                        return Err(CompileError::check(
                            *pos,
                            format!("missing return value of type {ret}"),
                        ));
                    }
                    (Some(_), _) => {
                        return Err(CompileError::check(
                            *pos,
                            "void function cannot return a value",
                        ));
                    }
                }
                self.code.push(Instr::Return);
                Ok(())
            }
            Stmt::Break(pos) => {
                let ctx = self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::check(*pos, "break outside loop"))?;
                self.code.push(Instr::Br(self.depth - ctx.exit_depth));
                Ok(())
            }
            Stmt::Continue(pos) => {
                let ctx = self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::check(*pos, "continue outside loop"))?;
                self.code.push(Instr::Br(self.depth - ctx.cont_depth));
                Ok(())
            }
        }
    }

    /// Generate a condition expression, requiring type `int`.
    fn int_cond(&mut self, e: &Expr) -> Result<(), CompileError> {
        let ty = self.expr(e)?;
        if ty != Ty::Int {
            return Err(CompileError::check(
                e.pos,
                format!("condition must be int, found {ty}"),
            ));
        }
        Ok(())
    }

    /// Generate the address of `ptr[index]`, returning the element type.
    fn gen_element_addr(&mut self, ptr: &Expr, index: &Expr, pos: Pos) -> Result<Ty, CompileError> {
        let pty = self.expr(ptr)?;
        let Ty::Ptr(inner) = pty else {
            return Err(CompileError::check(
                pos,
                format!("indexing requires a ptr type, found {pty}"),
            ));
        };
        let ity = self.expr(index)?;
        if ity != Ty::Int {
            return Err(CompileError::check(
                pos,
                format!("index must be int, found {ity}"),
            ));
        }
        let size = inner.size();
        if size > 1 {
            self.code.push(Instr::I32Const(size as i32));
            self.code.push(Instr::I32Mul);
        }
        self.code.push(Instr::I32Add);
        Ok(*inner)
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &Expr) -> Result<Ty, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.code.push(Instr::I32Const(*v));
                Ok(Ty::Int)
            }
            ExprKind::LongLit(v) => {
                self.code.push(Instr::I64Const(*v));
                Ok(Ty::Long)
            }
            ExprKind::FloatLit(v) => {
                self.code.push(Instr::F32Const(*v));
                Ok(Ty::Float)
            }
            ExprKind::DoubleLit(v) => {
                self.code.push(Instr::F64Const(*v));
                Ok(Ty::Double)
            }
            ExprKind::Var(name) => {
                let (idx, ty) = self.lookup(name, e.pos)?;
                self.code.push(Instr::LocalGet(idx));
                Ok(ty)
            }
            ExprKind::Index(p, i) => {
                let inner = self.gen_element_addr(p, i, e.pos)?;
                self.code.push(load_instr(&inner));
                Ok(inner)
            }
            ExprKind::Call(name, args) => self.gen_call(name, args, e.pos),
            ExprKind::Un(op, x) => self.gen_unary(*op, x, e.pos),
            ExprKind::Bin(BinOp::And, a, b) => {
                self.int_cond(a)?;
                self.code.push(Instr::If(BlockType::Value(ValType::I32)));
                self.depth += 1;
                self.int_cond(b)?;
                self.code.push(Instr::I32Const(0));
                self.code.push(Instr::I32Ne);
                self.code.push(Instr::Else);
                self.code.push(Instr::I32Const(0));
                self.code.push(Instr::End);
                self.depth -= 1;
                Ok(Ty::Int)
            }
            ExprKind::Bin(BinOp::Or, a, b) => {
                self.int_cond(a)?;
                self.code.push(Instr::If(BlockType::Value(ValType::I32)));
                self.depth += 1;
                self.code.push(Instr::I32Const(1));
                self.code.push(Instr::Else);
                self.int_cond(b)?;
                self.code.push(Instr::I32Const(0));
                self.code.push(Instr::I32Ne);
                self.code.push(Instr::End);
                self.depth -= 1;
                Ok(Ty::Int)
            }
            ExprKind::Bin(op, a, b) => self.gen_binary(*op, a, b, e.pos),
            ExprKind::Cast(to, x) => self.gen_cast(to, x, e.pos),
        }
    }

    fn gen_call(&mut self, name: &str, args: &[Expr], pos: Pos) -> Result<Ty, CompileError> {
        // Built-in intrinsics map straight to instructions.
        if let Some(ty) = self.try_builtin(name, args, pos)? {
            return Ok(ty);
        }
        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| CompileError::check(pos, format!("unknown function {name:?}")))?
            .clone();
        if args.len() != sig.params.len() {
            return Err(CompileError::check(
                pos,
                format!(
                    "{name:?} expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        for (arg, want) in args.iter().zip(&sig.params) {
            let got = self.expr(arg)?;
            if got != *want {
                return Err(CompileError::check(
                    arg.pos,
                    format!("argument has type {got}, expected {want}"),
                ));
            }
        }
        self.code.push(Instr::Call(sig.index));
        Ok(sig.ret)
    }

    /// Recognise intrinsic calls; returns `Ok(None)` if `name` is not a
    /// builtin.
    fn try_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
    ) -> Result<Option<Ty>, CompileError> {
        macro_rules! expect_args {
            ($n:expr) => {
                if args.len() != $n {
                    return Err(CompileError::check(
                        pos,
                        format!("{name} expects {} argument(s)", $n),
                    ));
                }
            };
        }
        macro_rules! arg_ty {
            ($i:expr, $ty:expr) => {{
                let got = self.expr(&args[$i])?;
                if got != $ty {
                    return Err(CompileError::check(
                        args[$i].pos,
                        format!("{name} argument {} must be {}, found {got}", $i + 1, $ty),
                    ));
                }
            }};
        }
        let ty = match name {
            "memsize" => {
                expect_args!(0);
                self.code.push(Instr::MemorySize);
                Ty::Int
            }
            "memgrow" => {
                expect_args!(1);
                arg_ty!(0, Ty::Int);
                self.code.push(Instr::MemoryGrow);
                Ty::Int
            }
            "memcopy" => {
                expect_args!(3);
                arg_ty!(0, Ty::Int);
                arg_ty!(1, Ty::Int);
                arg_ty!(2, Ty::Int);
                self.code.push(Instr::MemoryCopy);
                Ty::Void
            }
            "memfill" => {
                expect_args!(3);
                arg_ty!(0, Ty::Int);
                arg_ty!(1, Ty::Int);
                arg_ty!(2, Ty::Int);
                self.code.push(Instr::MemoryFill);
                Ty::Void
            }
            "sqrt" => {
                expect_args!(1);
                arg_ty!(0, Ty::Double);
                self.code.push(Instr::F64Sqrt);
                Ty::Double
            }
            "fabs" => {
                expect_args!(1);
                arg_ty!(0, Ty::Double);
                self.code.push(Instr::F64Abs);
                Ty::Double
            }
            "floor" => {
                expect_args!(1);
                arg_ty!(0, Ty::Double);
                self.code.push(Instr::F64Floor);
                Ty::Double
            }
            "ceil" => {
                expect_args!(1);
                arg_ty!(0, Ty::Double);
                self.code.push(Instr::F64Ceil);
                Ty::Double
            }
            "fmin" => {
                expect_args!(2);
                arg_ty!(0, Ty::Double);
                arg_ty!(1, Ty::Double);
                self.code.push(Instr::F64Min);
                Ty::Double
            }
            "fmax" => {
                expect_args!(2);
                arg_ty!(0, Ty::Double);
                arg_ty!(1, Ty::Double);
                self.code.push(Instr::F64Max);
                Ty::Double
            }
            _ => return Ok(None),
        };
        Ok(Some(ty))
    }

    fn gen_unary(&mut self, op: UnOp, x: &Expr, pos: Pos) -> Result<Ty, CompileError> {
        match op {
            UnOp::Neg => {
                // Integers: 0 - x; floats: dedicated negate.
                // Peek the type by generating into a scratch buffer is
                // wasteful; instead emit the zero lazily for integers by
                // generating x first and subtracting from zero via
                // (0 - x) == -x using mul by -1 for ints.
                let ty = self.expr(x)?;
                match ty {
                    Ty::Int => {
                        self.code.push(Instr::I32Const(-1));
                        self.code.push(Instr::I32Mul);
                    }
                    Ty::Long => {
                        self.code.push(Instr::I64Const(-1));
                        self.code.push(Instr::I64Mul);
                    }
                    Ty::Float => self.code.push(Instr::F32Neg),
                    Ty::Double => self.code.push(Instr::F64Neg),
                    other => {
                        return Err(CompileError::check(pos, format!("cannot negate {other}")))
                    }
                }
                Ok(ty)
            }
            UnOp::Not => {
                let ty = self.expr(x)?;
                if ty != Ty::Int {
                    return Err(CompileError::check(
                        pos,
                        format!("! requires int, found {ty}"),
                    ));
                }
                self.code.push(Instr::I32Eqz);
                Ok(Ty::Int)
            }
            UnOp::BitNot => {
                let ty = self.expr(x)?;
                match ty {
                    Ty::Int => {
                        self.code.push(Instr::I32Const(-1));
                        self.code.push(Instr::I32Xor);
                    }
                    Ty::Long => {
                        self.code.push(Instr::I64Const(-1));
                        self.code.push(Instr::I64Xor);
                    }
                    other => {
                        return Err(CompileError::check(
                            pos,
                            format!("~ requires an integer, found {other}"),
                        ))
                    }
                }
                Ok(ty)
            }
        }
    }

    fn gen_binary(&mut self, op: BinOp, a: &Expr, b: &Expr, pos: Pos) -> Result<Ty, CompileError> {
        let lt = self.expr(a)?;

        // Pointer arithmetic: `p + n` / `p - n` scale by the element size.
        if let Ty::Ptr(inner) = &lt {
            if matches!(op, BinOp::Add | BinOp::Sub) {
                let rt = self.expr(b)?;
                if rt != Ty::Int {
                    return Err(CompileError::check(
                        pos,
                        format!("pointer offset must be int, found {rt}"),
                    ));
                }
                let size = inner.size();
                if size > 1 {
                    self.code.push(Instr::I32Const(size as i32));
                    self.code.push(Instr::I32Mul);
                }
                self.code.push(if op == BinOp::Add {
                    Instr::I32Add
                } else {
                    Instr::I32Sub
                });
                return Ok(lt);
            }
        }

        let rt = self.expr(b)?;
        if lt != rt {
            return Err(CompileError::check(
                pos,
                format!("operands have different types: {lt} and {rt}"),
            ));
        }

        use BinOp::*;
        use Instr::*;
        let is_cmp = matches!(op, Eq | Ne | Lt | Le | Gt | Ge);
        let instr = match (&lt, op) {
            (Ty::Int, Add) => I32Add,
            (Ty::Int, Sub) => I32Sub,
            (Ty::Int, Mul) => I32Mul,
            (Ty::Int, Div) => I32DivS,
            (Ty::Int, Rem) => I32RemS,
            (Ty::Int, BitAnd) => I32And,
            (Ty::Int, BitOr) => I32Or,
            (Ty::Int, BitXor) => I32Xor,
            (Ty::Int, Shl) => I32Shl,
            (Ty::Int, Shr) => I32ShrS,
            (Ty::Int, Eq) => I32Eq,
            (Ty::Int, Ne) => I32Ne,
            (Ty::Int, Lt) => I32LtS,
            (Ty::Int, Le) => I32LeS,
            (Ty::Int, Gt) => I32GtS,
            (Ty::Int, Ge) => I32GeS,
            (Ty::Ptr(_), Eq) => I32Eq,
            (Ty::Ptr(_), Ne) => I32Ne,
            (Ty::Ptr(_), Lt) => I32LtU,
            (Ty::Ptr(_), Le) => I32LeU,
            (Ty::Ptr(_), Gt) => I32GtU,
            (Ty::Ptr(_), Ge) => I32GeU,
            (Ty::Long, Add) => I64Add,
            (Ty::Long, Sub) => I64Sub,
            (Ty::Long, Mul) => I64Mul,
            (Ty::Long, Div) => I64DivS,
            (Ty::Long, Rem) => I64RemS,
            (Ty::Long, BitAnd) => I64And,
            (Ty::Long, BitOr) => I64Or,
            (Ty::Long, BitXor) => I64Xor,
            (Ty::Long, Shl) => I64Shl,
            (Ty::Long, Shr) => I64ShrS,
            (Ty::Long, Eq) => I64Eq,
            (Ty::Long, Ne) => I64Ne,
            (Ty::Long, Lt) => I64LtS,
            (Ty::Long, Le) => I64LeS,
            (Ty::Long, Gt) => I64GtS,
            (Ty::Long, Ge) => I64GeS,
            (Ty::Float, Add) => F32Add,
            (Ty::Float, Sub) => F32Sub,
            (Ty::Float, Mul) => F32Mul,
            (Ty::Float, Div) => F32Div,
            (Ty::Float, Eq) => F32Eq,
            (Ty::Float, Ne) => F32Ne,
            (Ty::Float, Lt) => F32Lt,
            (Ty::Float, Le) => F32Le,
            (Ty::Float, Gt) => F32Gt,
            (Ty::Float, Ge) => F32Ge,
            (Ty::Double, Add) => F64Add,
            (Ty::Double, Sub) => F64Sub,
            (Ty::Double, Mul) => F64Mul,
            (Ty::Double, Div) => F64Div,
            (Ty::Double, Eq) => F64Eq,
            (Ty::Double, Ne) => F64Ne,
            (Ty::Double, Lt) => F64Lt,
            (Ty::Double, Le) => F64Le,
            (Ty::Double, Gt) => F64Gt,
            (Ty::Double, Ge) => F64Ge,
            (ty, op) => {
                return Err(CompileError::check(
                    pos,
                    format!("operator {op:?} not defined for {ty}"),
                ))
            }
        };
        self.code.push(instr);
        Ok(if is_cmp { Ty::Int } else { lt })
    }

    fn gen_cast(&mut self, to: &Ty, x: &Expr, pos: Pos) -> Result<Ty, CompileError> {
        let from = self.expr(x)?;
        if from == *to {
            return Ok(to.clone());
        }
        use Instr::*;
        // Pointers behave like `int` addresses for conversion purposes.
        let norm = |t: &Ty| match t {
            Ty::Ptr(_) => Ty::Int,
            other => other.clone(),
        };
        let instrs: &[Instr] = match (norm(&from), norm(to)) {
            (Ty::Int, Ty::Int) => &[],
            (Ty::Int, Ty::Long) => &[I64ExtendI32S],
            (Ty::Int, Ty::Float) => &[F32ConvertI32S],
            (Ty::Int, Ty::Double) => &[F64ConvertI32S],
            (Ty::Long, Ty::Int) => &[I32WrapI64],
            (Ty::Long, Ty::Float) => &[F32ConvertI64S],
            (Ty::Long, Ty::Double) => &[F64ConvertI64S],
            (Ty::Float, Ty::Int) => &[I32TruncF32S],
            (Ty::Float, Ty::Long) => &[I64TruncF32S],
            (Ty::Float, Ty::Double) => &[F64PromoteF32],
            (Ty::Double, Ty::Int) => &[I32TruncF64S],
            (Ty::Double, Ty::Long) => &[I64TruncF64S],
            (Ty::Double, Ty::Float) => &[F32DemoteF64],
            (f, t) => return Err(CompileError::check(pos, format!("cannot cast {f} to {t}"))),
        };
        self.code.extend_from_slice(instrs);
        Ok(to.clone())
    }
}

fn load_instr(ty: &Ty) -> Instr {
    match ty {
        Ty::Int | Ty::Ptr(_) => Instr::I32Load(MemArg::zero()),
        Ty::Long => Instr::I64Load(MemArg::zero()),
        Ty::Float => Instr::F32Load(MemArg::zero()),
        Ty::Double => Instr::F64Load(MemArg::zero()),
        Ty::Void => unreachable!("void cannot be loaded"),
    }
}

fn store_instr(ty: &Ty) -> Instr {
    match ty {
        Ty::Int | Ty::Ptr(_) => Instr::I32Store(MemArg::zero()),
        Ty::Long => Instr::I64Store(MemArg::zero()),
        Ty::Float => Instr::F32Store(MemArg::zero()),
        Ty::Double => Instr::F64Store(MemArg::zero()),
        Ty::Void => unreachable!("void cannot be stored"),
    }
}
