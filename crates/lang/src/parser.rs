//! Recursive-descent parser for FL.

use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::token::{lex, Kw, Tok, Token, P};

/// Parse FL source into a [`Program`].
///
/// # Errors
///
/// Returns the first lex or parse error with its position.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_p(&mut self, p: P) -> Result<(), CompileError> {
        if *self.peek() == Tok::P(p) {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::parse(
                self.here(),
                format!("expected {p:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn try_p(&mut self, p: P) -> bool {
        if *self.peek() == Tok::P(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError::parse(
                self.here(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int)
                | Tok::Kw(Kw::Long)
                | Tok::Kw(Kw::Float)
                | Tok::Kw(Kw::Double)
                | Tok::Kw(Kw::Void)
                | Tok::Kw(Kw::Ptr)
        )
    }

    fn ty(&mut self) -> Result<Ty, CompileError> {
        match self.bump() {
            Tok::Kw(Kw::Int) => Ok(Ty::Int),
            Tok::Kw(Kw::Long) => Ok(Ty::Long),
            Tok::Kw(Kw::Float) => Ok(Ty::Float),
            Tok::Kw(Kw::Double) => Ok(Ty::Double),
            Tok::Kw(Kw::Void) => Ok(Ty::Void),
            Tok::Kw(Kw::Ptr) => Ok(Ty::Ptr(Box::new(self.ty()?))),
            other => Err(CompileError::parse(
                self.here(),
                format!("expected type, found {other:?}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while *self.peek() != Tok::Eof {
            if *self.peek() == Tok::Kw(Kw::Extern) {
                self.bump();
                let pos = self.here();
                let ret = self.ty()?;
                let name = self.ident()?;
                let params = self.params()?;
                self.eat_p(P::Semi)?;
                prog.externs.push(ExternDecl {
                    ret,
                    name,
                    params,
                    pos,
                });
            } else {
                let pos = self.here();
                let ret = self.ty()?;
                let name = self.ident()?;
                let params = self.params()?;
                let body = self.block()?;
                prog.funcs.push(FuncDef {
                    ret,
                    name,
                    params,
                    body,
                    pos,
                });
            }
        }
        Ok(prog)
    }

    fn params(&mut self) -> Result<Vec<Param>, CompileError> {
        self.eat_p(P::LParen)?;
        let mut params = Vec::new();
        if !self.try_p(P::RParen) {
            loop {
                let ty = self.ty()?;
                let name = self.ident()?;
                params.push(Param { ty, name });
                if self.try_p(P::RParen) {
                    break;
                }
                self.eat_p(P::Comma)?;
            }
        }
        Ok(params)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat_p(P::LBrace)?;
        let mut stmts = Vec::new();
        while !self.try_p(P::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(CompileError::parse(self.here(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        match self.peek() {
            Tok::P(P::LBrace) => Ok(Stmt::Block(self.block()?)),
            Tok::Kw(Kw::If) => {
                self.bump();
                self.eat_p(P::LParen)?;
                let cond = self.expr()?;
                self.eat_p(P::RParen)?;
                let then = Box::new(self.stmt()?);
                let otherwise = if *self.peek() == Tok::Kw(Kw::Else) {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    otherwise,
                })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.eat_p(P::LParen)?;
                let cond = self.expr()?;
                self.eat_p(P::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.eat_p(P::LParen)?;
                let init = if *self.peek() == Tok::P(P::Semi) {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.eat_p(P::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::P(P::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_p(P::Semi)?;
                let step = if *self.peek() == Tok::P(P::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat_p(P::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                if self.try_p(P::Semi) {
                    Ok(Stmt::Return(None, pos))
                } else {
                    let e = self.expr()?;
                    self.eat_p(P::Semi)?;
                    Ok(Stmt::Return(Some(e), pos))
                }
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.eat_p(P::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.eat_p(P::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.eat_p(P::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration, assignment, store or expression statement — the forms
    /// allowed in `for` headers.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        if self.is_type_start() {
            let ty = self.ty()?;
            let name = self.ident()?;
            let init = if self.try_p(P::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                pos,
            });
        }
        // Lookahead for `ident =` and `ident[...] =`.
        if let Tok::Ident(name) = self.peek().clone() {
            if *self.peek2() == Tok::P(P::Assign) {
                self.bump();
                self.bump();
                let value = self.expr()?;
                return Ok(Stmt::Assign { name, value, pos });
            }
            if *self.peek2() == Tok::P(P::LBracket) {
                // Could be a store `p[i] = v` or an index expression used as
                // a statement; parse the postfix chain and decide.
                let save = self.pos;
                self.bump(); // ident
                self.bump(); // [
                let index = self.expr()?;
                self.eat_p(P::RBracket)?;
                if self.try_p(P::Assign) {
                    let value = self.expr()?;
                    return Ok(Stmt::Store {
                        ptr: Expr {
                            pos,
                            kind: ExprKind::Var(name),
                        },
                        index,
                        value,
                        pos,
                    });
                }
                // Not a store: rewind and parse as an expression statement.
                self.pos = save;
            }
        }
        let e = self.expr()?;
        Ok(Stmt::ExprStmt(e))
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::P(P::OrOr) {
            let pos = self.here();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitor_expr()?;
        while *self.peek() == Tok::P(P::AndAnd) {
            let pos = self.here();
            self.bump();
            let rhs = self.bitor_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Bin(BinOp::And, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(P::Pipe, BinOp::BitOr)], Self::bitxor_expr)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(P::Caret, BinOp::BitXor)], Self::bitand_expr)
    }

    fn bitand_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(P::Amp, BinOp::BitAnd)], Self::eq_expr)
    }

    fn eq_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(P::EqEq, BinOp::Eq), (P::NotEq, BinOp::Ne)],
            Self::rel_expr,
        )
    }

    fn rel_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (P::Lt, BinOp::Lt),
                (P::Le, BinOp::Le),
                (P::Gt, BinOp::Gt),
                (P::Ge, BinOp::Ge),
            ],
            Self::shift_expr,
        )
    }

    fn shift_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(P::Shl, BinOp::Shl), (P::Shr, BinOp::Shr)],
            Self::add_expr,
        )
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(P::Plus, BinOp::Add), (P::Minus, BinOp::Sub)],
            Self::mul_expr,
        )
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (P::Star, BinOp::Mul),
                (P::Slash, BinOp::Div),
                (P::Percent, BinOp::Rem),
            ],
            Self::unary_expr,
        )
    }

    fn binary_level(
        &mut self,
        ops: &[(P, BinOp)],
        next: fn(&mut Self) -> Result<Expr, CompileError>,
    ) -> Result<Expr, CompileError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (p, op) in ops {
                if *self.peek() == Tok::P(*p) {
                    let pos = self.here();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr {
                        pos,
                        kind: ExprKind::Bin(*op, Box::new(lhs), Box::new(rhs)),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.peek() {
            Tok::P(P::Minus) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    pos,
                    kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
                })
            }
            Tok::P(P::Not) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    pos,
                    kind: ExprKind::Un(UnOp::Not, Box::new(e)),
                })
            }
            Tok::P(P::Tilde) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    pos,
                    kind: ExprKind::Un(UnOp::BitNot, Box::new(e)),
                })
            }
            // A cast: `(type) unary`.
            Tok::P(P::LParen)
                if matches!(
                    self.peek2(),
                    Tok::Kw(Kw::Int)
                        | Tok::Kw(Kw::Long)
                        | Tok::Kw(Kw::Float)
                        | Tok::Kw(Kw::Double)
                        | Tok::Kw(Kw::Ptr)
                ) =>
            {
                self.bump();
                let ty = self.ty()?;
                self.eat_p(P::RParen)?;
                let e = self.unary_expr()?;
                Ok(Expr {
                    pos,
                    kind: ExprKind::Cast(ty, Box::new(e)),
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.here();
            if self.try_p(P::LBracket) {
                let idx = self.expr()?;
                self.eat_p(P::RBracket)?;
                e = Expr {
                    pos,
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr {
                pos,
                kind: ExprKind::IntLit(v),
            }),
            Tok::LongLit(v) => Ok(Expr {
                pos,
                kind: ExprKind::LongLit(v),
            }),
            Tok::FloatLit(v) => Ok(Expr {
                pos,
                kind: ExprKind::FloatLit(v),
            }),
            Tok::DoubleLit(v) => Ok(Expr {
                pos,
                kind: ExprKind::DoubleLit(v),
            }),
            Tok::Ident(name) => {
                if *self.peek() == Tok::P(P::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.try_p(P::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.try_p(P::RParen) {
                                break;
                            }
                            self.eat_p(P::Comma)?;
                        }
                    }
                    Ok(Expr {
                        pos,
                        kind: ExprKind::Call(name, args),
                    })
                } else {
                    Ok(Expr {
                        pos,
                        kind: ExprKind::Var(name),
                    })
                }
            }
            Tok::P(P::LParen) => {
                let e = self.expr()?;
                self.eat_p(P::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::parse(
                pos,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let p = parse("int add(int a, int b) { return a + b; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Ty::Int);
    }

    #[test]
    fn parses_externs() {
        let p = parse("extern int read_call_input(ptr int buf, int len);\nvoid main() {}").unwrap();
        assert_eq!(p.externs.len(), 1);
        assert_eq!(p.externs[0].name, "read_call_input");
        assert_eq!(p.externs[0].params[0].ty, Ty::Ptr(Box::new(Ty::Int)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!("expected return");
        };
        let ExprKind::Bin(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected add at top: {e:?}");
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    acc = acc + i;
                    while (acc > 100) { break; }
                }
                return acc;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.funcs[0].body.len(), 3);
    }

    #[test]
    fn parses_pointer_index_load_and_store() {
        let src = "void f(ptr double a) { a[0] = a[1] + 2.0; }";
        let p = parse(src).unwrap();
        assert!(matches!(p.funcs[0].body[0], Stmt::Store { .. }));
    }

    #[test]
    fn parses_cast() {
        let p = parse("double f(int x) { return (double) x; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Cast(Ty::Double, _)));
    }

    #[test]
    fn cast_vs_paren_disambiguation() {
        let p = parse("int f(int x) { return (x) + 1; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("int f() { return 1 + ; }").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.msg.contains("expected expression"));
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(parse("int f() { return 1;").is_err());
    }

    #[test]
    fn for_with_empty_slots() {
        let p = parse("void f() { for (;;) { break; } }").unwrap();
        let Stmt::For {
            init, cond, step, ..
        } = &p.funcs[0].body[0]
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn short_circuit_ops_parse() {
        let p = parse("int f(int a, int b) { return a && b || !a; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Bin(BinOp::Or, _, _)));
    }

    #[test]
    fn index_expr_as_rvalue_statement_falls_back() {
        // `p[0];` is a (useless but legal) expression statement, must not be
        // misparsed as a store.
        let p = parse("void f(ptr int p) { p[0]; }").unwrap();
        assert!(matches!(p.funcs[0].body[0], Stmt::ExprStmt(_)));
    }
}
