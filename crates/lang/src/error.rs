//! Compiler diagnostics with source positions.

use std::fmt;

/// A line/column source position (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which compiler phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking / code generation.
    Check,
}

/// A compile error: phase, position, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The phase that failed.
    pub phase: Phase,
    /// Source position of the error.
    pub pos: Pos,
    /// Human-readable description.
    pub msg: String,
}

impl CompileError {
    /// A lexing error.
    pub fn lex(pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Lex,
            pos,
            msg: msg.into(),
        }
    }

    /// A parse error.
    pub fn parse(pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Parse,
            pos,
            msg: msg.into(),
        }
    }

    /// A type/codegen error.
    pub fn check(pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Check,
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "type",
        };
        write!(f, "{} error at {}: {}", phase, self.pos, self.msg)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_phase() {
        let e = CompileError::parse(Pos { line: 3, col: 7 }, "expected ';'");
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("parse"));
        assert!(s.contains("';'"));
    }
}
