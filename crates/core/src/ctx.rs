//! The per-Faaslet execution context behind the host interface.
//!
//! A [`FaasletCtx`] is the `data` payload of a Faaslet's guest instance: the
//! host-interface implementation keeps everything it needs here — call
//! input/output, the state manager, the descriptor table, the virtual
//! network interface, chain bookkeeping, the per-user clock and RNG. FVM
//! guests reach it through host functions (`hostfuncs.rs`); native guests
//! through [`NativeApi`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use faasm_net::{HostId, NetError, VirtualInterface};
use faasm_sched::{CallId, CallResult};
use faasm_state::{StateEntry, StateError, StateManager};
use faasm_vfs::FdTable;

use crate::cgroup::CgroupShare;
use crate::rng::SplitMix64;

/// Routes chained calls into the scheduler and awaits their results; the
/// runtime instance implements this (§3.2's `chain_call`/`await_call`).
pub trait ChainRouter: Send + Sync {
    /// Dispatch a chained call; returns its id immediately.
    fn chain_call(&self, user: &str, function: &str, input: Vec<u8>) -> CallId;

    /// Block until the call completes. Implementations should execute other
    /// pending work while waiting so chains deeper than the worker pool
    /// cannot deadlock.
    fn await_call(&self, id: CallId) -> CallResult;
}

/// A null router for Faaslets created outside a runtime instance (unit
/// tests, benchmarks of isolated Faaslets).
#[derive(Debug, Default)]
pub struct NoChain;

impl ChainRouter for NoChain {
    fn chain_call(&self, _user: &str, _function: &str, _input: Vec<u8>) -> CallId {
        CallId(0)
    }

    fn await_call(&self, id: CallId) -> CallResult {
        CallResult::error(id, "chaining not available in this context")
    }
}

/// A simple client-side socket over the Faaslet's virtual interface:
/// request/response flows to a remote host (the paper supports "simple
/// client-side send/receive operations ... such as connecting to an external
/// data store or a remote HTTP endpoint", §3.2).
#[derive(Debug, Default)]
pub struct Socket {
    /// Connected peer, if any.
    pub remote: Option<HostId>,
    /// Bytes received and not yet read.
    pub recv_buf: Vec<u8>,
}

/// A state value mapped into the Faaslet (guest address for FVM guests).
#[derive(Debug)]
pub struct MappedState {
    /// Guest base address of the mapping (0 for native guests).
    pub guest_addr: u32,
    /// The underlying entry.
    pub entry: Arc<StateEntry>,
}

/// Everything a Faaslet's host interface needs, bundled as instance data.
pub struct FaasletCtx {
    /// The Faaslet's id (also the RNG seed).
    pub faaslet_id: u64,
    /// Owning tenant.
    pub user: String,
    /// Function name.
    pub function: String,
    /// The call currently executing.
    pub call_id: CallId,
    /// Input bytes for the current call.
    pub input: Vec<u8>,
    /// Output bytes accumulated by `write_call_output`.
    pub output: Vec<u8>,
    /// The host's local state tier.
    pub state: Arc<StateManager>,
    /// Open file descriptors (WASI capability table).
    pub fdtable: FdTable,
    /// The Faaslet's shaped virtual NIC.
    pub vif: Arc<VirtualInterface>,
    /// Chained-call dispatch.
    pub router: Arc<dyn ChainRouter>,
    /// CPU-share handle, parked during blocking awaits.
    pub cgroup: Option<Arc<CgroupShare>>,
    /// State keys mapped into this Faaslet.
    pub mapped_state: HashMap<String, MappedState>,
    /// Open sockets.
    pub sockets: HashMap<u32, Socket>,
    /// Next socket descriptor.
    pub next_socket: u32,
    /// Start of the per-user monotonic clock (Tab. 2 `gettime`).
    pub started: Instant,
    /// Deterministic RNG backing `getrandom`.
    pub rng: SplitMix64,
    /// Calls chained by the current invocation.
    pub chained: Vec<CallId>,
    /// Completed chained-call results (for `get_call_output`).
    pub results: HashMap<CallId, CallResult>,
    /// Dynamically loaded modules (`dlopen`); slots are `None` after
    /// `dlclose`.
    pub dl_modules: Vec<Option<faasm_fvm::Instance>>,
}

impl std::fmt::Debug for FaasletCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasletCtx")
            .field("faaslet_id", &self.faaslet_id)
            .field("user", &self.user)
            .field("function", &self.function)
            .field("call_id", &self.call_id)
            .finish()
    }
}

impl FaasletCtx {
    /// Map a state key (creating/fetching the local entry of `size` bytes).
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn state_entry(&mut self, key: &str, size: usize) -> Result<Arc<StateEntry>, StateError> {
        if let Some(m) = self.mapped_state.get(key) {
            return Ok(Arc::clone(&m.entry));
        }
        let entry = self.state.get(key, size)?;
        self.mapped_state.insert(
            key.to_string(),
            MappedState {
                guest_addr: 0,
                entry: Arc::clone(&entry),
            },
        );
        Ok(entry)
    }

    /// Open a socket; returns its descriptor.
    pub fn socket(&mut self) -> u32 {
        let fd = self.next_socket;
        self.next_socket += 1;
        self.sockets.insert(fd, Socket::default());
        fd
    }

    /// Connect a socket to a remote host.
    ///
    /// Returns `false` for unknown descriptors.
    pub fn connect(&mut self, sock: u32, remote: HostId) -> bool {
        match self.sockets.get_mut(&sock) {
            Some(s) => {
                s.remote = Some(remote);
                true
            }
            None => false,
        }
    }

    /// Send on a connected socket; the response (request/response protocol)
    /// is buffered for [`FaasletCtx::sock_recv`]. Shaped and counted by the
    /// virtual interface.
    ///
    /// # Errors
    ///
    /// Network errors, or a `Disconnected` error for unconnected sockets.
    pub fn sock_send(&mut self, sock: u32, data: &[u8]) -> Result<usize, NetError> {
        let remote = self
            .sockets
            .get(&sock)
            .and_then(|s| s.remote)
            .ok_or(NetError::Disconnected)?;
        let sent = data.len();
        let resp = self.vif.call(remote, data.to_vec())?;
        if let Some(s) = self.sockets.get_mut(&sock) {
            s.recv_buf.extend_from_slice(&resp);
        }
        Ok(sent)
    }

    /// Read buffered response bytes from a socket.
    pub fn sock_recv(&mut self, sock: u32, buf: &mut [u8]) -> usize {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return 0;
        };
        let n = buf.len().min(s.recv_buf.len());
        buf[..n].copy_from_slice(&s.recv_buf[..n]);
        s.recv_buf.drain(..n);
        n
    }

    /// Close a socket; returns whether it existed.
    pub fn sock_close(&mut self, sock: u32) -> bool {
        self.sockets.remove(&sock).is_some()
    }

    /// Nanoseconds of the per-user monotonic clock.
    pub fn gettime_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Prepare the context for a new call (same Faaslet, next invocation).
    pub fn begin_call(&mut self, call_id: CallId, input: Vec<u8>) {
        self.call_id = call_id;
        self.input = input;
        self.output.clear();
        self.chained.clear();
        self.results.clear();
    }

    /// Chain a call through the router, recording it.
    pub fn chain(&mut self, function: &str, input: Vec<u8>) -> CallId {
        let id = self.router.chain_call(&self.user, function, input);
        self.chained.push(id);
        id
    }

    /// Await a chained call, parking the CPU share while blocked so the
    /// cgroup does not stall siblings (§3.1).
    pub fn await_chained(&mut self, id: CallId) -> i32 {
        if let Some(r) = self.results.get(&id) {
            return r.return_code();
        }
        if let Some(cg) = &self.cgroup {
            cg.park();
        }
        let result = self.router.await_call(id);
        if let Some(cg) = &self.cgroup {
            cg.unpark();
        }
        let code = result.return_code();
        self.results.insert(id, result);
        code
    }
}

/// The host interface as seen by trusted **native guests** (DESIGN.md S4:
/// workloads the paper compiled to WebAssembly from large C++ codebases run
/// here as native Rust against the same host objects).
pub struct NativeApi<'a> {
    ctx: &'a mut FaasletCtx,
}

impl<'a> NativeApi<'a> {
    /// Wrap a context for a native guest invocation.
    pub fn new(ctx: &'a mut FaasletCtx) -> NativeApi<'a> {
        NativeApi { ctx }
    }

    /// The call's input bytes (`read_call_input`).
    pub fn input(&self) -> &[u8] {
        &self.ctx.input
    }

    /// Set the call's output (`write_call_output`).
    pub fn write_output(&mut self, data: &[u8]) {
        self.ctx.output.extend_from_slice(data);
    }

    /// Get (or create) a state entry of `size` bytes.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn state(&mut self, key: &str, size: usize) -> Result<Arc<StateEntry>, StateError> {
        self.ctx.state_entry(key, size)
    }

    /// The host's state manager (for DDO construction).
    pub fn state_manager(&self) -> &Arc<StateManager> {
        &self.ctx.state
    }

    /// Chain a call (`chain_call`).
    pub fn chain(&mut self, function: &str, input: Vec<u8>) -> CallId {
        self.ctx.chain(function, input)
    }

    /// Await a chained call (`await_call`); returns its return code.
    pub fn await_call(&mut self, id: CallId) -> i32 {
        self.ctx.await_chained(id)
    }

    /// Output of a completed chained call (`get_call_output`).
    pub fn call_output(&self, id: CallId) -> Option<&[u8]> {
        self.ctx.results.get(&id).map(|r| r.output.as_slice())
    }

    /// The Faaslet's descriptor table (file I/O).
    pub fn fs(&mut self) -> &mut FdTable {
        &mut self.ctx.fdtable
    }

    /// Per-user monotonic clock, nanoseconds.
    pub fn gettime_ns(&self) -> u64 {
        self.ctx.gettime_ns()
    }

    /// Fill a buffer with random bytes (`getrandom`).
    pub fn getrandom(&mut self, buf: &mut [u8]) {
        self.ctx.rng.fill(buf);
    }

    /// Open a socket.
    pub fn socket(&mut self) -> u32 {
        self.ctx.socket()
    }

    /// Connect a socket.
    pub fn connect(&mut self, sock: u32, remote: HostId) -> bool {
        self.ctx.connect(sock, remote)
    }

    /// Send on a socket.
    ///
    /// # Errors
    ///
    /// Network errors.
    pub fn send(&mut self, sock: u32, data: &[u8]) -> Result<usize, NetError> {
        self.ctx.sock_send(sock, data)
    }

    /// Receive buffered bytes from a socket.
    pub fn recv(&mut self, sock: u32, buf: &mut [u8]) -> usize {
        self.ctx.sock_recv(sock, buf)
    }

    /// The executing user.
    pub fn user(&self) -> &str {
        &self.ctx.user
    }

    /// The current call id.
    pub fn call_id(&self) -> CallId {
        self.ctx.call_id
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use faasm_kvs::{KvClient, KvStore};
    use faasm_net::{Fabric, TokenBucket};
    use faasm_vfs::{HostFs, ObjectStore};

    pub(crate) fn test_ctx() -> FaasletCtx {
        let store = Arc::new(KvStore::new());
        let state = Arc::new(StateManager::new(Arc::new(KvClient::local(store))));
        let objects = Arc::new(ObjectStore::new());
        let hostfs = HostFs::new(objects);
        let fabric = Fabric::new();
        let nic = fabric.add_host();
        let vif = Arc::new(nic.virtual_interface(TokenBucket::unlimited()));
        FaasletCtx {
            faaslet_id: 1,
            user: "tester".into(),
            function: "f".into(),
            call_id: CallId(0),
            input: Vec::new(),
            output: Vec::new(),
            state,
            fdtable: FdTable::new(hostfs, "tester"),
            vif,
            router: Arc::new(NoChain),
            cgroup: None,
            mapped_state: HashMap::new(),
            sockets: HashMap::new(),
            next_socket: 1,
            started: Instant::now(),
            rng: SplitMix64::new(1),
            chained: Vec::new(),
            results: HashMap::new(),
            dl_modules: Vec::new(),
        }
    }

    #[test]
    fn state_entry_is_cached() {
        let mut ctx = test_ctx();
        let a = ctx.state_entry("k", 100).unwrap();
        let b = ctx.state_entry("k", 100).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.mapped_state.len(), 1);
    }

    #[test]
    fn sockets_lifecycle() {
        let mut ctx = test_ctx();
        let s = ctx.socket();
        assert!(!ctx.connect(99, HostId(0)), "unknown socket");
        assert!(ctx.connect(s, HostId(0)));
        // Unconnected socket errors on send.
        let s2 = ctx.socket();
        assert!(matches!(
            ctx.sock_send(s2, b"x"),
            Err(NetError::Disconnected)
        ));
        assert!(ctx.sock_close(s));
        assert!(!ctx.sock_close(s));
    }

    #[test]
    fn socket_request_response_with_echo_server() {
        let fabric = Fabric::new();
        let server_nic = fabric.add_host();
        let client_nic = fabric.add_host();
        let server_id = server_nic.id();
        let t = std::thread::spawn(move || {
            let env = server_nic.recv().unwrap();
            let mut out = env.payload.clone();
            out.reverse();
            server_nic.respond(&env, out).unwrap();
        });

        let mut ctx = test_ctx();
        ctx.vif = Arc::new(client_nic.virtual_interface(TokenBucket::unlimited()));
        let s = ctx.socket();
        ctx.connect(s, server_id);
        assert_eq!(ctx.sock_send(s, b"abc").unwrap(), 3);
        let mut buf = [0u8; 2];
        assert_eq!(ctx.sock_recv(s, &mut buf), 2);
        assert_eq!(&buf, b"cb");
        let mut rest = [0u8; 8];
        assert_eq!(ctx.sock_recv(s, &mut rest), 1);
        assert_eq!(rest[0], b'a');
        t.join().unwrap();
    }

    #[test]
    fn begin_call_resets_call_scope() {
        let mut ctx = test_ctx();
        ctx.output.extend_from_slice(b"old");
        ctx.results
            .insert(CallId(9), CallResult::success(CallId(9), vec![]));
        ctx.begin_call(CallId(5), b"new input".to_vec());
        assert_eq!(ctx.call_id, CallId(5));
        assert_eq!(ctx.input, b"new input");
        assert!(ctx.output.is_empty());
        assert!(ctx.results.is_empty());
    }

    #[test]
    fn gettime_is_monotonic() {
        let ctx = test_ctx();
        let a = ctx.gettime_ns();
        let b = ctx.gettime_ns();
        assert!(b >= a);
    }

    #[test]
    fn native_api_io() {
        let mut ctx = test_ctx();
        ctx.begin_call(CallId(1), b"payload".to_vec());
        let mut api = NativeApi::new(&mut ctx);
        assert_eq!(api.input(), b"payload");
        api.write_output(b"result");
        api.write_output(b"+more");
        assert_eq!(api.user(), "tester");
        assert_eq!(api.call_id(), CallId(1));
        let mut rnd = [0u8; 4];
        api.getrandom(&mut rnd);
        // End the borrow before inspecting the context.
        let _ = api;
        assert_eq!(ctx.output, b"result+more");
    }

    #[test]
    fn nochain_router_errors_awaits() {
        let router = NoChain;
        let id = router.chain_call("u", "f", vec![]);
        let r = router.await_call(id);
        assert_eq!(r.return_code(), -1);
    }
}
