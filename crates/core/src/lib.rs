//! FAASM-core: Faaslets and the FAASM runtime — the paper's contribution.
//!
//! This crate assembles the substrates (`faasm-mem`, `faasm-fvm`,
//! `faasm-net`, `faasm-kvs`, `faasm-vfs`, `faasm-state`, `faasm-sched`) into
//! the system of the paper:
//!
//! * [`Faaslet`] — the isolation abstraction (§3): an FVM guest with
//!   bounds-checked linear memory, a shaped virtual NIC, a WASI-style
//!   descriptor table, a CPU cgroup share, and the Tab. 2 host interface.
//! * [`hostfuncs`] — every host-interface function as a trusted thunk.
//! * [`ProtoFaaslet`] — ahead-of-time snapshots restored copy-on-write in
//!   microseconds, serialisable for cross-host restores (§5.2).
//! * [`FaasmInstance`] — one host's runtime: warm pools, workers, the
//!   message bus and the Omega-style local scheduler (§5.1).
//! * [`Cluster`] — instances + global KVS tier + object store + upload
//!   service + ingress.
//!
//! # Examples
//!
//! ```
//! use faasm_core::Cluster;
//!
//! let cluster = Cluster::new(2);
//! cluster
//!     .upload_fl(
//!         "alice",
//!         "double",
//!         r#"
//!         extern int input_size();
//!         extern int read_call_input(ptr int buf, int len);
//!         extern void write_call_output(ptr int buf, int len);
//!         int main() {
//!             int n = input_size();
//!             read_call_input((ptr int) 1024, n);
//!             ptr int p = (ptr int) 1024;
//!             p[0] = p[0] * 2;
//!             write_call_output((ptr int) 1024, 4);
//!             return 0;
//!         }
//!         "#,
//!         Default::default(),
//!     )
//!     .unwrap();
//! let result = cluster.invoke("alice", "double", 21i32.to_le_bytes().to_vec());
//! assert_eq!(result.return_code(), 0);
//! assert_eq!(i32::from_le_bytes(result.output[..4].try_into().unwrap()), 42);
//! ```

#![warn(missing_docs)]

pub mod cgroup;
pub mod cluster;
pub mod ctx;
pub mod error;
pub mod faaslet;
pub mod guest;
pub mod hostfuncs;
pub mod instance;
pub mod metrics;
pub mod msg;
pub mod pending;
pub mod proto;
pub mod rng;
pub mod snapdist;

pub use cgroup::{CgroupCpu, CgroupShare};
pub use cluster::{Cluster, ClusterConfig, UploadOptions};
pub use ctx::{ChainRouter, FaasletCtx, NativeApi, NoChain};
pub use error::CoreError;
pub use faaslet::{EgressLimit, Faaslet, FaasletEnv, NATIVE_BASE_BYTES};
pub use guest::{FunctionDef, FunctionRegistry, GuestCode, NativeGuest};
pub use hostfuncs::faaslet_linker;
pub use instance::{FaasmInstance, InstanceConfig, PlacedCall};
pub use metrics::{percentile, GatewayMetrics, Metrics, MetricsSnapshot, StartKind};
pub use pending::{Pending, PendingCallback, PendingMap};
pub use proto::{ProtoEncodeError, ProtoFaaslet, ProtoRef};
pub use snapdist::{
    assemble_proto, chunk_proto, ChunkedProto, ProtoManifest, SnapStats, SnapStatsSnapshot,
    SnapshotCache, DEFAULT_SNAPSHOT_CACHE_BYTES,
};

// Re-export the call types every embedder needs.
pub use faasm_sched::{CallId, CallResult, CallSpec, CallStatus, TraceCtx};
