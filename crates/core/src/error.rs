//! Runtime-level errors.

use std::fmt;

/// Errors from runtime operations (upload, Faaslet lifecycle, invocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The function is not registered for this user.
    UnknownFunction {
        /// Owning user.
        user: String,
        /// Function name.
        function: String,
    },
    /// Guest code failed compilation or validation at upload.
    Compile(String),
    /// The declared entry export is missing or has the wrong signature.
    BadEntry(String),
    /// Instantiation failed (link error, memory limit, trapping start).
    Instantiate(String),
    /// A Proto-Faaslet could not be decoded or did not match its module.
    BadProto(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownFunction { user, function } => {
                write!(f, "unknown function {user}/{function}")
            }
            CoreError::Compile(m) => write!(f, "compile error: {m}"),
            CoreError::BadEntry(m) => write!(f, "bad entry point: {m}"),
            CoreError::Instantiate(m) => write!(f, "instantiation error: {m}"),
            CoreError::BadProto(m) => write!(f, "bad proto-faaslet: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = CoreError::UnknownFunction {
            user: "u".into(),
            function: "f".into(),
        };
        assert!(e.to_string().contains("u/f"));
        assert!(CoreError::Compile("x".into()).to_string().contains('x'));
    }
}
