//! The message bus protocol between runtime instances (Fig. 1: "the message
//! bus is used by Faaslets to communicate with their parent process and each
//! other, receive function calls, share work, invoke and await other
//! functions").

use bytes::{Buf, BufMut};
use faasm_net::HostId;
use faasm_sched::{decode_call, decode_result, encode_call, encode_result, CallResult, CallSpec};

/// A message between runtime instances (and the cluster gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceMsg {
    /// Execute a call; send its result to `reply_to`. `forwarded` marks
    /// calls already shared once — they must execute locally to prevent
    /// forwarding loops (§5.1 shares at most one hop).
    Invoke {
        /// The call to execute.
        call: CallSpec,
        /// Where the result goes.
        reply_to: HostId,
        /// Set after one share hop.
        forwarded: bool,
    },
    /// A completed call's result, delivered to the awaiting host.
    Result {
        /// The result.
        result: CallResult,
    },
    /// N already-placed calls in one bus message (batch-aware dispatch:
    /// the coordination cost the paper's scheduler counts is per-message,
    /// not per-call). Batched calls skip the local scheduling decision and
    /// execute on the receiving host, like forwarded calls.
    InvokeBatch {
        /// The calls to execute, in order.
        calls: Vec<CallSpec>,
        /// Where every result goes.
        reply_to: HostId,
        /// Telemetry-clock send timestamp ([`faasm_telemetry::now_ns`]):
        /// the receiving bus loop records the batch's bus-transit span as
        /// `recv - sent_at_ns` per call. 0 = unstamped.
        sent_at_ns: u64,
    },
    /// Pre-stage a function's proto snapshot: the autoscaler pushes the
    /// proto's chunk manifest to an instance it is about to pre-warm, so
    /// the instance pulls the chunks into its snapshot cache *before* the
    /// first call lands — the prewarmed Faaslet restores from warm bytes
    /// instead of paying a cold start. Best-effort: a dropped or stale
    /// pre-stage only costs the peer-fetch it would have saved.
    PreStage {
        /// Owning user.
        user: String,
        /// Function name.
        function: String,
        /// The serialised [`crate::ProtoManifest`](crate::snapdist::ProtoManifest)
        /// to fetch against (decoded and digest-verified by the receiver).
        manifest: Vec<u8>,
    },
}

/// Encode a message for the fabric.
pub fn encode_msg(msg: &InstanceMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        InstanceMsg::Invoke {
            call,
            reply_to,
            forwarded,
        } => {
            out.put_u8(0);
            out.put_u32_le(reply_to.0);
            out.put_u8(*forwarded as u8);
            out.extend_from_slice(&encode_call(call));
        }
        InstanceMsg::Result { result } => {
            out.put_u8(1);
            out.extend_from_slice(&encode_result(result));
        }
        InstanceMsg::InvokeBatch {
            calls,
            reply_to,
            sent_at_ns,
        } => {
            out.put_u8(2);
            out.put_u32_le(reply_to.0);
            out.put_u64_le(*sent_at_ns);
            out.put_u32_le(calls.len() as u32);
            for call in calls {
                // Each call is length-prefixed: `decode_call` consumes an
                // exact buffer, so the decoder needs the boundaries. A
                // wrapped prefix would make the receiver drop the whole
                // batch; senders must bound call sizes (the runtime's
                // batch submit rejects oversized calls before encoding).
                let bytes = encode_call(call);
                debug_assert!(
                    u32::try_from(bytes.len()).is_ok(),
                    "batched call length {} wraps the u32 prefix",
                    bytes.len()
                );
                out.put_u32_le(bytes.len() as u32);
                out.extend_from_slice(&bytes);
            }
        }
        InstanceMsg::PreStage {
            user,
            function,
            manifest,
        } => {
            out.put_u8(3);
            out.put_u32_le(user.len() as u32);
            out.put_slice(user.as_bytes());
            out.put_u32_le(function.len() as u32);
            out.put_slice(function.as_bytes());
            out.put_u32_le(manifest.len() as u32);
            out.put_slice(manifest);
        }
    }
    out
}

/// Decode a fabric message; `None` on malformed input.
pub fn decode_msg(mut buf: &[u8]) -> Option<InstanceMsg> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 5 {
                return None;
            }
            let reply_to = HostId(buf.get_u32_le());
            let forwarded = buf.get_u8() != 0;
            let call = decode_call(buf)?;
            Some(InstanceMsg::Invoke {
                call,
                reply_to,
                forwarded,
            })
        }
        1 => Some(InstanceMsg::Result {
            result: decode_result(buf)?,
        }),
        2 => {
            if buf.remaining() < 16 {
                return None;
            }
            let reply_to = HostId(buf.get_u32_le());
            let sent_at_ns = buf.get_u64_le();
            let count = buf.get_u32_le() as usize;
            // Cap the preallocation by what the buffer could possibly hold
            // (a hostile count must not drive a huge allocation).
            let mut calls = Vec::with_capacity(count.min(buf.remaining() / 4 + 1));
            for _ in 0..count {
                if buf.remaining() < 4 {
                    return None;
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return None;
                }
                calls.push(decode_call(&buf[..len])?);
                buf.advance(len);
            }
            if buf.has_remaining() {
                return None;
            }
            Some(InstanceMsg::InvokeBatch {
                calls,
                reply_to,
                sent_at_ns,
            })
        }
        3 => {
            fn get_block(buf: &mut &[u8]) -> Option<Vec<u8>> {
                if buf.remaining() < 4 {
                    return None;
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return None;
                }
                let mut v = vec![0u8; len];
                buf.copy_to_slice(&mut v);
                Some(v)
            }
            let user = String::from_utf8(get_block(&mut buf)?).ok()?;
            let function = String::from_utf8(get_block(&mut buf)?).ok()?;
            let manifest = get_block(&mut buf)?;
            if buf.has_remaining() {
                return None;
            }
            Some(InstanceMsg::PreStage {
                user,
                function,
                manifest,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_sched::{CallId, CallStatus};

    #[test]
    fn invoke_roundtrip() {
        let msg = InstanceMsg::Invoke {
            call: CallSpec {
                id: CallId(9),
                user: "u".into(),
                function: "f".into(),
                input: vec![1, 2],
                trace: faasm_sched::TraceCtx {
                    trace_id: 5,
                    span_id: 6,
                },
            },
            reply_to: HostId(3),
            forwarded: true,
        };
        assert_eq!(decode_msg(&encode_msg(&msg)), Some(msg));
    }

    #[test]
    fn result_roundtrip() {
        let msg = InstanceMsg::Result {
            result: CallResult {
                id: CallId(4),
                status: CallStatus::Failed(2),
                output: b"data".to_vec(),
            },
        };
        assert_eq!(decode_msg(&encode_msg(&msg)), Some(msg));
    }

    #[test]
    fn invoke_batch_roundtrip() {
        let calls: Vec<CallSpec> = (0..3)
            .map(|i| CallSpec {
                id: CallId(100 + i),
                user: "tenant".into(),
                function: format!("f{i}"),
                input: vec![i as u8; i as usize],
                trace: faasm_sched::TraceCtx::NONE,
            })
            .collect();
        let msg = InstanceMsg::InvokeBatch {
            calls,
            reply_to: HostId(9),
            sent_at_ns: 12_345,
        };
        assert_eq!(decode_msg(&encode_msg(&msg)), Some(msg));
        // Empty batches are legal on the wire.
        let empty = InstanceMsg::InvokeBatch {
            calls: Vec::new(),
            reply_to: HostId(0),
            sent_at_ns: 0,
        };
        assert_eq!(decode_msg(&encode_msg(&empty)), Some(empty));
    }

    #[test]
    fn prestage_roundtrip() {
        let msg = InstanceMsg::PreStage {
            user: "tenant".into(),
            function: "hot".into(),
            manifest: vec![7u8; 100],
        };
        let bytes = encode_msg(&msg);
        assert_eq!(decode_msg(&bytes), Some(msg));
        for cut in 1..bytes.len() {
            assert_eq!(decode_msg(&bytes[..cut]), None, "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_msg(&trailing), None);
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(decode_msg(&[]), None);
        assert_eq!(decode_msg(&[7]), None);
        assert_eq!(decode_msg(&[0, 1, 2]), None);
        // Batch with a hostile count and no payload.
        let mut bad = vec![2u8];
        bad.extend_from_slice(&0u32.to_le_bytes());
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_msg(&bad), None);
        // Truncated batch: cut anywhere must reject, trailing bytes too.
        let msg = InstanceMsg::InvokeBatch {
            calls: vec![CallSpec {
                id: CallId(1),
                user: "u".into(),
                function: "f".into(),
                input: vec![1, 2, 3],
                trace: faasm_sched::TraceCtx::NONE,
            }],
            reply_to: HostId(2),
            sent_at_ns: 7,
        };
        let good = encode_msg(&msg);
        for cut in 1..good.len() {
            assert_eq!(decode_msg(&good[..cut]), None, "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_msg(&trailing), None);
    }
}
