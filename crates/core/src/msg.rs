//! The message bus protocol between runtime instances (Fig. 1: "the message
//! bus is used by Faaslets to communicate with their parent process and each
//! other, receive function calls, share work, invoke and await other
//! functions").

use bytes::{Buf, BufMut};
use faasm_net::HostId;
use faasm_sched::{decode_call, decode_result, encode_call, encode_result, CallResult, CallSpec};

/// A message between runtime instances (and the cluster gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceMsg {
    /// Execute a call; send its result to `reply_to`. `forwarded` marks
    /// calls already shared once — they must execute locally to prevent
    /// forwarding loops (§5.1 shares at most one hop).
    Invoke {
        /// The call to execute.
        call: CallSpec,
        /// Where the result goes.
        reply_to: HostId,
        /// Set after one share hop.
        forwarded: bool,
    },
    /// A completed call's result, delivered to the awaiting host.
    Result {
        /// The result.
        result: CallResult,
    },
}

/// Encode a message for the fabric.
pub fn encode_msg(msg: &InstanceMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        InstanceMsg::Invoke {
            call,
            reply_to,
            forwarded,
        } => {
            out.put_u8(0);
            out.put_u32_le(reply_to.0);
            out.put_u8(*forwarded as u8);
            out.extend_from_slice(&encode_call(call));
        }
        InstanceMsg::Result { result } => {
            out.put_u8(1);
            out.extend_from_slice(&encode_result(result));
        }
    }
    out
}

/// Decode a fabric message; `None` on malformed input.
pub fn decode_msg(mut buf: &[u8]) -> Option<InstanceMsg> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 5 {
                return None;
            }
            let reply_to = HostId(buf.get_u32_le());
            let forwarded = buf.get_u8() != 0;
            let call = decode_call(buf)?;
            Some(InstanceMsg::Invoke {
                call,
                reply_to,
                forwarded,
            })
        }
        1 => Some(InstanceMsg::Result {
            result: decode_result(buf)?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_sched::{CallId, CallStatus};

    #[test]
    fn invoke_roundtrip() {
        let msg = InstanceMsg::Invoke {
            call: CallSpec {
                id: CallId(9),
                user: "u".into(),
                function: "f".into(),
                input: vec![1, 2],
            },
            reply_to: HostId(3),
            forwarded: true,
        };
        assert_eq!(decode_msg(&encode_msg(&msg)), Some(msg));
    }

    #[test]
    fn result_roundtrip() {
        let msg = InstanceMsg::Result {
            result: CallResult {
                id: CallId(4),
                status: CallStatus::Failed(2),
                output: b"data".to_vec(),
            },
        };
        assert_eq!(decode_msg(&encode_msg(&msg)), Some(msg));
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(decode_msg(&[]), None);
        assert_eq!(decode_msg(&[7]), None);
        assert_eq!(decode_msg(&[0, 1, 2]), None);
    }
}
