//! Guest code and the cluster-wide function registry.

use std::collections::HashMap;
use std::sync::Arc;

use faasm_fvm::{ObjectModule, Trap};
use parking_lot::RwLock;

use crate::ctx::NativeApi;

/// A trusted native guest: workloads the paper compiled from large C/C++
/// codebases to WebAssembly (e.g. TensorFlow Lite) run in this reproduction
/// as native Rust against the same host interface (DESIGN.md S4). Native
/// guests receive no linear memory; all interaction goes through
/// [`NativeApi`].
pub trait NativeGuest: Send + Sync {
    /// Run one invocation; the return value is the call's return code.
    ///
    /// # Errors
    ///
    /// A trap fails the call like an FVM trap would.
    fn invoke(&self, api: &mut NativeApi<'_>) -> Result<i32, Trap>;
}

impl<F> NativeGuest for F
where
    F: Fn(&mut NativeApi<'_>) -> Result<i32, Trap> + Send + Sync,
{
    fn invoke(&self, api: &mut NativeApi<'_>) -> Result<i32, Trap> {
        self(api)
    }
}

/// The executable form of a function.
#[derive(Clone)]
pub enum GuestCode {
    /// A validated FVM object module (the normal path).
    Fvm(Arc<ObjectModule>),
    /// A trusted native guest.
    Native(Arc<dyn NativeGuest>),
}

impl std::fmt::Debug for GuestCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestCode::Fvm(o) => write!(f, "Fvm({} funcs)", o.module.func_count()),
            GuestCode::Native(_) => write!(f, "Native"),
        }
    }
}

/// A registered function.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Executable code.
    pub code: GuestCode,
    /// Entry export invoked per call (FVM guests; default `"main"`). Its
    /// signature must be `[] -> []` or `[] -> [i32]`.
    pub entry: String,
    /// Optional initialisation export run once before the Proto-Faaslet
    /// snapshot is taken (§5.2 "user-defined initialisation code").
    pub init: Option<String>,
    /// Restore the Faaslet from its Proto-Faaslet after every call,
    /// guaranteeing no cross-call data leakage (§5.2).
    pub reset_after_call: bool,
}

/// Cluster-wide function registry, shared by every runtime instance.
#[derive(Debug, Default)]
pub struct FunctionRegistry {
    funcs: RwLock<HashMap<(String, String), Arc<FunctionDef>>>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Register (or replace) a function.
    pub fn insert(&self, user: &str, function: &str, def: FunctionDef) {
        self.funcs
            .write()
            .insert((user.to_string(), function.to_string()), Arc::new(def));
    }

    /// Look up a function.
    pub fn get(&self, user: &str, function: &str) -> Option<Arc<FunctionDef>> {
        self.funcs
            .read()
            .get(&(user.to_string(), function.to_string()))
            .cloned()
    }

    /// Remove a function; returns whether it existed.
    pub fn remove(&self, user: &str, function: &str) -> bool {
        self.funcs
            .write()
            .remove(&(user.to_string(), function.to_string()))
            .is_some()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.read().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_fvm::ModuleBuilder;

    #[test]
    fn registry_crud() {
        let r = FunctionRegistry::new();
        assert!(r.is_empty());
        let object = ObjectModule::prepare(ModuleBuilder::new().build()).unwrap();
        r.insert(
            "u",
            "f",
            FunctionDef {
                code: GuestCode::Fvm(object),
                entry: "main".into(),
                init: None,
                reset_after_call: true,
            },
        );
        assert_eq!(r.len(), 1);
        assert!(r.get("u", "f").is_some());
        assert!(r.get("u", "g").is_none());
        assert!(r.get("other", "f").is_none(), "functions are per-user");
        assert!(r.remove("u", "f"));
        assert!(!r.remove("u", "f"));
    }

    #[test]
    fn native_guests_from_closures() {
        let guest: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
            api.write_output(b"native");
            Ok(0)
        });
        let r = FunctionRegistry::new();
        r.insert(
            "u",
            "n",
            FunctionDef {
                code: GuestCode::Native(guest),
                entry: "main".into(),
                init: None,
                reset_after_call: false,
            },
        );
        let def = r.get("u", "n").unwrap();
        assert!(matches!(def.code, GuestCode::Native(_)));
        let dbg = format!("{:?}", def.code);
        assert!(dbg.contains("Native"));
    }
}
