//! The Faaslet: the paper's isolation abstraction (§3, Fig. 1).
//!
//! A Faaslet bundles: a guest execution unit (FVM instance or trusted native
//! guest) with bounds-checked private memory; a shaped virtual network
//! interface in its own "namespace"; a WASI-style descriptor table; a CPU
//! cgroup share; and the host-interface context. Faaslets are created cold,
//! restored from Proto-Faaslets in microseconds, reset between calls so no
//! tenant data survives, and kept warm in per-function pools.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use faasm_fvm::{FuelMeter, Instance, Linker, Val};
use faasm_net::{Nic, TokenBucket};
use faasm_sched::{CallResult, CallSpec, CallStatus};
use faasm_state::StateManager;
use faasm_vfs::{FdTable, HostFs};

use crate::cgroup::{CgroupCpu, CgroupShare};
use crate::ctx::{ChainRouter, FaasletCtx, NativeApi};
use crate::error::CoreError;
use crate::guest::{FunctionDef, GuestCode};
use crate::proto::ProtoFaaslet;
use crate::rng::SplitMix64;

/// Baseline footprint charged to a native-guest Faaslet (its Rust-side
/// structures are not measurable the way linear memory is); documented
/// approximation.
pub const NATIVE_BASE_BYTES: f64 = 64.0 * 1024.0;

/// Egress traffic-shaping configuration for a Faaslet's virtual interface.
#[derive(Debug, Clone, Copy)]
pub struct EgressLimit {
    /// Rate in bytes/second.
    pub rate: u64,
    /// Burst capacity in bytes.
    pub burst: u64,
}

/// Everything needed to build (or rebuild) a Faaslet on a host; cheap to
/// clone — all fields are shared handles.
#[derive(Clone)]
pub struct FaasletEnv {
    /// Host state tier.
    pub state: Arc<StateManager>,
    /// Host filesystem.
    pub hostfs: Arc<HostFs>,
    /// Host NIC (virtual interfaces are derived from it).
    pub nic: Nic,
    /// Chained-call router (the runtime instance).
    pub router: Arc<dyn ChainRouter>,
    /// CPU control group for this host's Faaslets.
    pub cgroup: Arc<CgroupCpu>,
    /// The host-interface linker.
    pub linker: Arc<Linker>,
    /// Optional per-Faaslet egress shaping.
    pub egress: Option<EgressLimit>,
}

impl std::fmt::Debug for FaasletEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasletEnv")
            .field("host", &self.nic.id())
            .finish()
    }
}

enum GuestInstance {
    Fvm(Instance),
    Native {
        guest: Arc<dyn crate::guest::NativeGuest>,
        ctx: Box<FaasletCtx>,
    },
}

/// One Faaslet.
pub struct Faaslet {
    /// Unique id on this host.
    pub id: u64,
    /// Owning user.
    pub user: String,
    /// Function name.
    pub function: String,
    def: Arc<FunctionDef>,
    env: FaasletEnv,
    guest: GuestInstance,
    created: Instant,
}

impl std::fmt::Debug for Faaslet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Faaslet")
            .field("id", &self.id)
            .field("user", &self.user)
            .field("function", &self.function)
            .finish()
    }
}

fn build_ctx(
    id: u64,
    user: &str,
    function: &str,
    env: &FaasletEnv,
    share: Option<Arc<CgroupShare>>,
) -> FaasletCtx {
    let bucket = match env.egress {
        Some(e) => TokenBucket::new(e.rate, e.burst),
        None => TokenBucket::unlimited(),
    };
    FaasletCtx {
        faaslet_id: id,
        user: user.to_string(),
        function: function.to_string(),
        call_id: faasm_sched::CallId(0),
        input: Vec::new(),
        output: Vec::new(),
        state: Arc::clone(&env.state),
        fdtable: FdTable::new(Arc::clone(&env.hostfs), user),
        vif: Arc::new(env.nic.virtual_interface(bucket)),
        router: Arc::clone(&env.router),
        cgroup: share,
        mapped_state: HashMap::new(),
        sockets: HashMap::new(),
        next_socket: 1,
        started: Instant::now(),
        rng: SplitMix64::new(id),
        chained: Vec::new(),
        results: HashMap::new(),
        dl_modules: Vec::new(),
    }
}

impl Faaslet {
    /// Create a Faaslet cold: full instantiation (and the `init` export, if
    /// declared — the state captured by a later snapshot).
    ///
    /// # Errors
    ///
    /// [`CoreError`] on link/instantiation/init failure.
    pub fn create_cold(
        id: u64,
        user: &str,
        function: &str,
        def: Arc<FunctionDef>,
        env: &FaasletEnv,
    ) -> Result<Faaslet, CoreError> {
        let guest = match &def.code {
            GuestCode::Fvm(object) => {
                let share = Arc::new(env.cgroup.join());
                let ctx = build_ctx(id, user, function, env, Some(Arc::clone(&share)));
                let fuel = FuelMeter::with_controller(share, faasm_fvm::fuel::DEFAULT_SLICE);
                let mut instance =
                    Instance::with_fuel(Arc::clone(object), &env.linker, Box::new(ctx), fuel)
                        .map_err(|e| CoreError::Instantiate(e.to_string()))?;
                if let Some(init) = &def.init {
                    instance
                        .invoke(init, &[])
                        .map_err(|t| CoreError::Instantiate(format!("init trapped: {t}")))?;
                }
                GuestInstance::Fvm(instance)
            }
            GuestCode::Native(g) => {
                let share = Arc::new(env.cgroup.join());
                let ctx = build_ctx(id, user, function, env, Some(share));
                GuestInstance::Native {
                    guest: Arc::clone(g),
                    ctx: Box::new(ctx),
                }
            }
        };
        Ok(Faaslet {
            id,
            user: user.to_string(),
            function: function.to_string(),
            def,
            env: env.clone(),
            guest,
            created: Instant::now(),
        })
    }

    /// Restore a Faaslet from a Proto-Faaslet snapshot — the fast path
    /// (§5.2): copy-on-write memory mapping, no data segments, no init code.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadProto`] if the snapshot does not match the module;
    /// native-guest functions have no snapshots and fail with
    /// [`CoreError::BadProto`].
    pub fn restore(
        id: u64,
        proto: &ProtoFaaslet,
        def: Arc<FunctionDef>,
        env: &FaasletEnv,
    ) -> Result<Faaslet, CoreError> {
        let GuestCode::Fvm(object) = &def.code else {
            return Err(CoreError::BadProto(
                "native guests have no proto-faaslets".into(),
            ));
        };
        let share = Arc::new(env.cgroup.join());
        let ctx = build_ctx(
            id,
            &proto.user,
            &proto.function,
            env,
            Some(Arc::clone(&share)),
        );
        let fuel = FuelMeter::with_controller(share, faasm_fvm::fuel::DEFAULT_SLICE);
        let instance = Instance::restore(
            Arc::clone(object),
            &proto.snapshot,
            &env.linker,
            Box::new(ctx),
            fuel,
        )
        .map_err(|e| CoreError::BadProto(e.to_string()))?;
        Ok(Faaslet {
            id,
            user: proto.user.clone(),
            function: proto.function.clone(),
            def,
            env: env.clone(),
            guest: GuestInstance::Fvm(instance),
            created: Instant::now(),
        })
    }

    /// Capture a Proto-Faaslet from this Faaslet's current state (FVM
    /// guests only).
    pub fn capture_proto(&mut self) -> Option<ProtoFaaslet> {
        match &mut self.guest {
            GuestInstance::Fvm(inst) => Some(ProtoFaaslet {
                user: self.user.clone(),
                function: self.function.clone(),
                snapshot: inst.snapshot(),
            }),
            GuestInstance::Native { .. } => None,
        }
    }

    /// Run one call to completion.
    pub fn run(&mut self, call: &CallSpec) -> CallResult {
        match &mut self.guest {
            GuestInstance::Fvm(inst) => {
                let entry = self.def.entry.clone();
                {
                    let ctx = inst
                        .data_as::<FaasletCtx>()
                        .expect("faaslet instances carry FaasletCtx");
                    ctx.begin_call(call.id, call.input.clone());
                }
                inst.fuel.reset_consumed();
                inst.reset_instrs();
                let status = match inst.invoke(&entry, &[]) {
                    Ok(Some(Val::I32(code))) if code != 0 => CallStatus::Failed(code),
                    Ok(_) => CallStatus::Success,
                    Err(trap) => CallStatus::Error(trap.to_string()),
                };
                let ctx = inst
                    .data_as::<FaasletCtx>()
                    .expect("faaslet instances carry FaasletCtx");
                CallResult {
                    id: call.id,
                    status,
                    output: std::mem::take(&mut ctx.output),
                }
            }
            GuestInstance::Native { guest, ctx } => {
                ctx.begin_call(call.id, call.input.clone());
                let guest = Arc::clone(guest);
                let mut api = NativeApi::new(ctx);
                let status = match guest.invoke(&mut api) {
                    Ok(0) => CallStatus::Success,
                    Ok(code) => CallStatus::Failed(code),
                    Err(trap) => CallStatus::Error(trap.to_string()),
                };
                CallResult {
                    id: call.id,
                    status,
                    output: std::mem::take(&mut ctx.output),
                }
            }
        }
    }

    /// Reset after a call: restore the Proto-Faaslet state and drop every
    /// capability of the previous call, so "no information from the previous
    /// call is disclosed" (§5.2). Native guests get a fresh context.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadProto`] on snapshot/module mismatch.
    pub fn reset(&mut self, proto: Option<&ProtoFaaslet>) -> Result<(), CoreError> {
        match &mut self.guest {
            GuestInstance::Fvm(inst) => {
                let proto = proto.ok_or_else(|| {
                    CoreError::BadProto("reset of an FVM faaslet requires its proto".into())
                })?;
                let share = Arc::new(self.env.cgroup.join());
                let ctx = build_ctx(
                    self.id,
                    &self.user,
                    &self.function,
                    &self.env,
                    Some(Arc::clone(&share)),
                );
                let fuel = FuelMeter::with_controller(share, faasm_fvm::fuel::DEFAULT_SLICE);
                let object = match &self.def.code {
                    GuestCode::Fvm(o) => Arc::clone(o),
                    GuestCode::Native(_) => unreachable!("FVM guest has FVM code"),
                };
                *inst = Instance::restore(
                    object,
                    &proto.snapshot,
                    &self.env.linker,
                    Box::new(ctx),
                    fuel,
                )
                .map_err(|e| CoreError::BadProto(e.to_string()))?;
                Ok(())
            }
            GuestInstance::Native { ctx, .. } => {
                let share = Arc::new(self.env.cgroup.join());
                **ctx = build_ctx(self.id, &self.user, &self.function, &self.env, Some(share));
                Ok(())
            }
        }
    }

    /// The Faaslet's context (for inspection by the runtime).
    pub fn ctx_mut(&mut self) -> &mut FaasletCtx {
        match &mut self.guest {
            GuestInstance::Fvm(inst) => inst
                .data_as::<FaasletCtx>()
                .expect("faaslet instances carry FaasletCtx"),
            GuestInstance::Native { ctx, .. } => ctx,
        }
    }

    /// Fuel consumed by the last call (FVM guests; 0 for native guests,
    /// documented in DESIGN.md).
    pub fn fuel_consumed(&self) -> u64 {
        match &self.guest {
            GuestInstance::Fvm(inst) => inst.fuel.consumed(),
            GuestInstance::Native { .. } => 0,
        }
    }

    /// VM operations dispatched by the last call (FVM guests; 0 for native
    /// guests). Tier-dependent: the lowered tier retires one op per
    /// superinstruction, so this is ≤ [`Faaslet::fuel_consumed`].
    pub fn instrs_retired(&self) -> u64 {
        match &self.guest {
            GuestInstance::Fvm(inst) => inst.instrs_retired(),
            GuestInstance::Native { .. } => 0,
        }
    }

    /// Proportional-set-size footprint in bytes: linear memory PSS for FVM
    /// guests (shared regions divided among their sharers); a base constant
    /// plus attributed state shares for native guests.
    pub fn pss_bytes(&self) -> f64 {
        match &self.guest {
            GuestInstance::Fvm(inst) => inst.memory().map_or(0.0, |m| m.stats().pss_bytes),
            GuestInstance::Native { ctx, .. } => {
                let mut total = NATIVE_BASE_BYTES;
                for m in ctx.mapped_state.values() {
                    let sharers = Arc::strong_count(&m.entry).saturating_sub(1).max(1);
                    total += m.entry.region().capacity() as f64 / sharers as f64;
                }
                total
            }
        }
    }

    /// Resident-set-size footprint in bytes (all pages counted in full).
    pub fn rss_bytes(&self) -> usize {
        match &self.guest {
            GuestInstance::Fvm(inst) => inst.memory().map_or(0, |m| m.stats().rss_bytes),
            GuestInstance::Native { ctx, .. } => {
                NATIVE_BASE_BYTES as usize
                    + ctx
                        .mapped_state
                        .values()
                        .map(|m| m.entry.region().capacity())
                        .sum::<usize>()
            }
        }
    }

    /// Age of the Faaslet.
    pub fn age(&self) -> std::time::Duration {
        self.created.elapsed()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ctx::NoChain;
    use crate::guest::FunctionRegistry;
    use crate::hostfuncs::faaslet_linker;
    use faasm_kvs::{KvClient, KvStore};
    use faasm_net::Fabric;
    use faasm_sched::CallId;
    use faasm_vfs::ObjectStore;

    pub(crate) fn test_env() -> FaasletEnv {
        let fabric = Fabric::new();
        let nic = fabric.add_host();
        let kv = Arc::new(KvClient::local(Arc::new(KvStore::new())));
        FaasletEnv {
            state: Arc::new(StateManager::new(kv)),
            hostfs: HostFs::new(Arc::new(ObjectStore::new())),
            nic,
            router: Arc::new(NoChain),
            cgroup: CgroupCpu::new(1 << 20),
            linker: Arc::new(faaslet_linker()),
            egress: None,
        }
    }

    fn fl_def(src: &str, init: Option<&str>) -> Arc<FunctionDef> {
        let module = faasm_lang::compile(src).unwrap();
        let object = faasm_fvm::ObjectModule::prepare(module).unwrap();
        Arc::new(FunctionDef {
            code: GuestCode::Fvm(object),
            entry: "main".into(),
            init: init.map(String::from),
            reset_after_call: true,
        })
    }

    fn call(n: u64, input: &[u8]) -> CallSpec {
        CallSpec {
            id: CallId(n),
            user: "u".into(),
            function: "f".into(),
            input: input.to_vec(),
            trace: faasm_sched::TraceCtx::NONE,
        }
    }

    const ECHO: &str = r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);
        int main() {
            int n = input_size();
            int got = read_call_input((ptr int) 1024, n);
            write_call_output((ptr int) 1024, got);
            return 0;
        }
    "#;

    #[test]
    fn cold_create_and_run() {
        let env = test_env();
        let def = fl_def(ECHO, None);
        let mut f = Faaslet::create_cold(1, "u", "f", def, &env).unwrap();
        let r = f.run(&call(1, b"hello"));
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, b"hello");
        assert!(f.fuel_consumed() > 0);
        assert!(f.pss_bytes() > 0.0);
        assert!(f.rss_bytes() > 0);
    }

    #[test]
    fn init_runs_before_snapshot_and_restores() {
        // init writes a marker into memory; main reads it back.
        let src = r#"
            extern void write_call_output(ptr int buf, int len);
            void init() {
                ptr int m = (ptr int) 2048;
                m[0] = 424242;
            }
            int main() {
                write_call_output((ptr int) 2048, 4);
                return 0;
            }
        "#;
        let env = test_env();
        let def = fl_def(src, Some("init"));
        let mut cold = Faaslet::create_cold(1, "u", "f", Arc::clone(&def), &env).unwrap();
        let proto = cold.capture_proto().unwrap();
        // A restored Faaslet sees the initialised state without running init.
        let mut restored = Faaslet::restore(2, &proto, def, &env).unwrap();
        let r = restored.run(&call(1, b""));
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(
            i32::from_le_bytes(r.output[..4].try_into().unwrap()),
            424242
        );
    }

    #[test]
    fn reset_clears_private_data() {
        // The guest stores its input into private memory; after reset, the
        // memory must be back to the proto state (no cross-call leakage).
        let src = r#"
            extern int input_size();
            extern int read_call_input(ptr int buf, int len);
            extern void write_call_output(ptr int buf, int len);
            int main() {
                // Echo whatever is at the stash location, then overwrite it
                // with this call's input.
                write_call_output((ptr int) 4096, 8);
                int n = input_size();
                read_call_input((ptr int) 4096, n);
                return 0;
            }
        "#;
        let env = test_env();
        let def = fl_def(src, None);
        let mut f = Faaslet::create_cold(1, "u", "f", Arc::clone(&def), &env).unwrap();
        let proto = f.capture_proto().unwrap();

        let r1 = f.run(&call(1, b"SECRET12"));
        assert_eq!(r1.output, vec![0u8; 8], "fresh memory leaks nothing");
        // Without reset the second call would see SECRET12.
        f.reset(Some(&proto)).unwrap();
        let r2 = f.run(&call(2, b"other"));
        assert_eq!(r2.output, vec![0u8; 8], "reset cleared the stash");
    }

    #[test]
    fn without_reset_data_leaks_across_calls() {
        // The control experiment for the test above: this is the unsafe
        // behaviour reset-after-call prevents.
        let src = r#"
            extern int input_size();
            extern int read_call_input(ptr int buf, int len);
            extern void write_call_output(ptr int buf, int len);
            int main() {
                write_call_output((ptr int) 4096, 8);
                int n = input_size();
                read_call_input((ptr int) 4096, n);
                return 0;
            }
        "#;
        let env = test_env();
        let def = fl_def(src, None);
        let mut f = Faaslet::create_cold(1, "u", "f", def, &env).unwrap();
        f.run(&call(1, b"SECRET12"));
        let r2 = f.run(&call(2, b"x"));
        assert_eq!(&r2.output, b"SECRET12", "no reset → leak (by design here)");
    }

    #[test]
    fn trapping_guest_reports_error() {
        let src = "int main() { int x = 1; int y = 0; return x / y; }";
        let env = test_env();
        let def = fl_def(src, None);
        let mut f = Faaslet::create_cold(1, "u", "f", def, &env).unwrap();
        let r = f.run(&call(1, b""));
        assert!(matches!(r.status, CallStatus::Error(_)));
    }

    #[test]
    fn native_guest_runs_and_resets() {
        let env = test_env();
        let guest: Arc<dyn crate::guest::NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
            let doubled: Vec<u8> = api.input().iter().map(|b| b * 2).collect();
            api.write_output(&doubled);
            Ok(0)
        });
        let def = Arc::new(FunctionDef {
            code: GuestCode::Native(guest),
            entry: "main".into(),
            init: None,
            reset_after_call: true,
        });
        let mut f = Faaslet::create_cold(5, "u", "n", def, &env).unwrap();
        let r = f.run(&call(1, &[1, 2, 3]));
        assert_eq!(r.output, vec![2, 4, 6]);
        assert!(f.capture_proto().is_none());
        f.reset(None).unwrap();
        let r = f.run(&call(2, &[5]));
        assert_eq!(r.output, vec![10]);
        assert!(f.pss_bytes() >= NATIVE_BASE_BYTES);
    }

    #[test]
    fn restore_is_much_faster_than_cold_start() {
        // The headline Proto-Faaslet property (§5.2, Tab. 3): restores are
        // over an order of magnitude faster than full cold starts for a
        // function with meaningful init work.
        let src = r#"
            void init() {
                // Touch 32 pages so the snapshot has real content.
                int base = mmap(2097152);
                ptr int p = (ptr int) base;
                int i = 0;
                while (i < 524288) {
                    p[i] = i;
                    i = i + 4096;
                }
            }
            int main() { return 0; }
        "#;
        let src = format!("extern int mmap(int len);\n{src}");
        let env = test_env();
        let def = fl_def(&src, Some("init"));

        let t0 = Instant::now();
        let mut cold = Faaslet::create_cold(1, "u", "f", Arc::clone(&def), &env).unwrap();
        let cold_time = t0.elapsed();
        let proto = cold.capture_proto().unwrap();

        let t1 = Instant::now();
        let iterations = 20;
        for i in 0..iterations {
            let f = Faaslet::restore(10 + i, &proto, Arc::clone(&def), &env).unwrap();
            drop(f);
        }
        let restore_time = t1.elapsed() / iterations as u32;
        assert!(
            restore_time < cold_time,
            "restore ({restore_time:?}) should beat cold start ({cold_time:?})"
        );
    }

    #[test]
    fn unused_registry_helper_lint() {
        // Keep FunctionRegistry referenced from this module's tests.
        let r = FunctionRegistry::new();
        assert!(r.is_empty());
    }
}
