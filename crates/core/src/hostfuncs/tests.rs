//! Host-interface tests: FL guests exercising every class of Tab. 2.

use std::sync::Arc;

use faasm_fvm::{Instance, ObjectModule, Trap, Val};

use super::faaslet_linker;
use crate::ctx::tests::test_ctx;
use crate::ctx::FaasletCtx;

/// Compile an FL guest, link the host interface, and return the instance.
fn guest(src: &str, ctx: FaasletCtx) -> Instance {
    let module = faasm_lang::compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
    let object = ObjectModule::prepare(module).expect("validates");
    Instance::new(object, &faaslet_linker(), Box::new(ctx)).expect("links")
}

fn guest_ctx(src: &str) -> Instance {
    guest(src, test_ctx())
}

#[test]
fn input_and_output_roundtrip() {
    let src = r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);
        extern int mmap(int len);
        int main() {
            int n = input_size();
            int buf = mmap(n);
            int got = read_call_input((ptr int) buf, n);
            write_call_output((ptr int) buf, got);
            return 0;
        }
    "#;
    let mut ctx = test_ctx();
    ctx.input = b"echo me".to_vec();
    let mut inst = guest(src, ctx);
    let r = inst.invoke("main", &[]).unwrap();
    assert_eq!(r, Some(Val::I32(0)));
    let fctx = inst.data_as::<FaasletCtx>().unwrap();
    assert_eq!(fctx.output, b"echo me");
}

#[test]
fn state_via_mapped_pointer() {
    // get_state maps a shared region into guest memory; writing through the
    // pointer and pushing makes it globally visible.
    let src = r#"
        extern int get_state(ptr int key, int key_len, int size);
        extern void push_state(ptr int key, int key_len);
        int main() {
            // Write the key name "vec" into guest memory at 64.
            ptr int k = (ptr int) 64;
            k[0] = 0x636576; // "v","e","c",0 little-endian
            ptr double s = (ptr double) get_state((ptr int) 64, 3, 32);
            s[0] = 1.5;
            s[1] = 2.5;
            push_state((ptr int) 64, 3);
            return 0;
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0)));
    let fctx = inst.data_as::<FaasletCtx>().unwrap();
    let global = fctx.state.kv().get("vec").unwrap().expect("pushed");
    assert_eq!(global.len(), 32);
    assert_eq!(f64::from_le_bytes(global[0..8].try_into().unwrap()), 1.5);
    assert_eq!(f64::from_le_bytes(global[8..16].try_into().unwrap()), 2.5);
}

#[test]
fn state_set_get_api() {
    let src = r#"
        extern void set_state(ptr int key, int key_len, ptr int val, int val_len);
        extern void push_state(ptr int key, int key_len);
        extern int get_state(ptr int key, int key_len, int size);
        int main() {
            ptr int k = (ptr int) 64;
            k[0] = 0x00796b; // "ky"
            ptr int v = (ptr int) 128;
            v[0] = 12345;
            set_state((ptr int) 64, 2, (ptr int) 128, 4);
            ptr int back = (ptr int) get_state((ptr int) 64, 2, 4);
            return back[0];
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(12345)));
}

#[test]
fn state_offset_and_append() {
    let src = r#"
        extern void set_state_offset(ptr int key, int key_len, int size, int off, ptr int val, int val_len);
        extern void push_state_offset(ptr int key, int key_len, int off, int len);
        extern void append_state(ptr int key, int key_len, ptr int val, int val_len);
        int main() {
            ptr int k = (ptr int) 64;
            k[0] = 0x6b; // "k"
            ptr int v = (ptr int) 128;
            v[0] = -1;
            set_state_offset((ptr int) 64, 1, 16, 4, (ptr int) 128, 4);
            push_state_offset((ptr int) 64, 1, 4, 4);
            ptr int a = (ptr int) 192;
            a[0] = 0x61; // appended byte "a"
            append_state((ptr int) 64, 1, (ptr int) 192, 1);
            return 0;
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0)));
    let fctx = inst.data_as::<FaasletCtx>().unwrap();
    let global = fctx.state.kv().get("k").unwrap().unwrap();
    // push_state_offset wrote bytes 4..8 = -1; append added one byte.
    assert_eq!(global.len(), 9);
    assert_eq!(&global[4..8], &[0xff, 0xff, 0xff, 0xff]);
    assert_eq!(global[8], 0x61);
}

#[test]
fn state_locks_do_not_deadlock_single_faaslet() {
    let src = r#"
        extern void lock_state_write(ptr int key, int key_len);
        extern void unlock_state_write(ptr int key, int key_len);
        extern void lock_state_read(ptr int key, int key_len);
        extern void unlock_state_read(ptr int key, int key_len);
        extern void lock_state_global_write(ptr int key, int key_len);
        extern void unlock_state_global_write(ptr int key, int key_len);
        int main() {
            ptr int k = (ptr int) 64;
            k[0] = 0x6c; // "l"
            lock_state_write((ptr int) 64, 1);
            unlock_state_write((ptr int) 64, 1);
            lock_state_read((ptr int) 64, 1);
            unlock_state_read((ptr int) 64, 1);
            lock_state_global_write((ptr int) 64, 1);
            unlock_state_global_write((ptr int) 64, 1);
            return 0;
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0)));
}

#[test]
fn memory_host_calls() {
    let src = r#"
        int main() {
            int before = memsize();
            int addr = mmap(65536);
            if (addr < 0) { return -1; }
            int after = memsize();
            if (after != before + 1) { return -2; }
            int old = sbrk(100);
            if (old < 0) { return -3; }
            if (brk((after + 2) * 65536) != 0) { return -4; }
            if (munmap(addr, 65536) != 0) { return -5; }
            return memsize();
        }
    "#;
    // mmap/brk/sbrk are host imports; declare them via externs.
    let src = format!(
        r#"
        extern int mmap(int len);
        extern int munmap(int addr, int len);
        extern int brk(int addr);
        extern int sbrk(int delta);
        {src}
    "#
    );
    let mut inst = guest_ctx(&src);
    let r = inst.invoke("main", &[]).unwrap().unwrap().as_i32().unwrap();
    // 4 initial + 1 mmap + 1 sbrk + brk to (after+2)=8 → expect >= 7 pages.
    assert!(r >= 7, "final page count {r}");
}

#[test]
fn mmap_fails_cleanly_at_limit() {
    let src = r#"
        extern int mmap(int len);
        int main() {
            // Default FL memory limit is 256 pages; ask for far more.
            return mmap(1073741824);
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(-1)));
}

#[test]
fn file_io_host_calls() {
    let src = r#"
        extern int open(ptr int path, int len, int flags);
        extern int close(int fd);
        extern int dup(int fd);
        extern int read(int fd, ptr int buf, int len);
        extern int write(int fd, ptr int buf, int len);
        extern long seek(int fd, long off, int whence);
        extern long stat_size(ptr int path, int len);
        int main() {
            ptr int p = (ptr int) 64;
            p[0] = 0x676f6c; // "log"
            // flags: read|write|create|trunc = 0xF
            int fd = open((ptr int) 64, 3, 15);
            if (fd < 0) { return -1; }
            ptr int data = (ptr int) 128;
            data[0] = 0x64636261; // "abcd"
            if (write(fd, (ptr int) 128, 4) != 4) { return -2; }
            if (seek(fd, 0L, 0) != 0L) { return -3; }
            int fd2 = dup(fd);
            ptr int buf = (ptr int) 256;
            if (read(fd2, (ptr int) 256, 4) != 4) { return -4; }
            if (buf[0] != 0x64636261) { return -5; }
            if (stat_size((ptr int) 64, 3) != 4L) { return -6; }
            close(fd);
            close(fd2);
            return 0;
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0)));
}

#[test]
fn misc_time_and_random() {
    let src = r#"
        extern long gettime();
        extern int getrandom(ptr int buf, int len);
        int main() {
            long t1 = gettime();
            getrandom((ptr int) 64, 8);
            long t2 = gettime();
            if (t2 < t1) { return -1; }
            ptr int r = (ptr int) 64;
            if (r[0] == 0 && r[1] == 0) { return -2; }
            return 0;
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0)));
}

#[test]
fn sockets_from_guest() {
    use faasm_net::{Fabric, TokenBucket};
    // Stand up an echo service and point the guest at it.
    let fabric = Fabric::new();
    let server_nic = fabric.add_host();
    let client_nic = fabric.add_host();
    let server_id = server_nic.id();
    let t = std::thread::spawn(move || {
        let env = server_nic.recv().unwrap();
        server_nic.respond(&env, env.payload.clone()).unwrap();
    });

    let src = format!(
        r#"
        extern int socket();
        extern int connect(int sock, int host);
        extern int send(int sock, ptr int buf, int len);
        extern int recv(int sock, ptr int buf, int len);
        extern int sock_close(int sock);
        int main() {{
            int s = socket();
            if (connect(s, {server}) != 0) {{ return -1; }}
            ptr int out = (ptr int) 64;
            out[0] = 0x2a;
            if (send(s, (ptr int) 64, 4) != 4) {{ return -2; }}
            ptr int in = (ptr int) 128;
            if (recv(s, (ptr int) 128, 4) != 4) {{ return -3; }}
            if (in[0] != 0x2a) {{ return -4; }}
            sock_close(s);
            return 0;
        }}
    "#,
        server = server_id.0
    );
    let mut ctx = test_ctx();
    ctx.vif = Arc::new(client_nic.virtual_interface(TokenBucket::unlimited()));
    let mut inst = guest(&src, ctx);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0)));
    t.join().unwrap();
}

#[test]
fn dynlink_load_and_call() {
    // Build a plugin exporting `dl_entry(ptr, len) -> len` that doubles each
    // byte, upload it to the Faaslet's filesystem, then dlopen/dlsym/dlcall.
    let plugin_src = r#"
        int dl_entry(ptr int buf, int len) {
            int i = 0;
            while (i < len) {
                ptr int b = buf;
                i = i + 4;
            }
            // Double the first i32.
            buf[0] = buf[0] * 2;
            return 4;
        }
    "#;
    let plugin = faasm_lang::compile(plugin_src).unwrap();
    let plugin_bytes = faasm_fvm::encode_module(&plugin);

    let ctx = test_ctx();
    // Place the plugin in the user's filesystem.
    ctx.fdtable
        .host()
        .store()
        .put("user:tester/plugin.fvm", plugin_bytes);

    let src = r#"
        extern int dlopen(ptr int path, int len);
        extern int dlsym(int handle, ptr int name, int len);
        extern int dlcall(int sym, ptr int arg, int arg_len, ptr int out, int out_cap);
        extern int dlclose(int handle);
        int main() {
            // path "plugin.fvm" at 64.
            ptr int p = (ptr int) 64;
            p[0] = 0x67756c70; // "plug"
            p[1] = 0x662e6e69; // "in.f"
            p[2] = 0x6d76;     // "vm"
            int h = dlopen((ptr int) 64, 10);
            if (h < 0) { return -1; }
            // symbol "dl_entry" at 128.
            ptr int n = (ptr int) 128;
            n[0] = 0x655f6c64; // "dl_e"
            n[1] = 0x7972746e; // "ntry"
            int sym = dlsym(h, (ptr int) 128, 8);
            if (sym < 0) { return -2; }
            ptr int arg = (ptr int) 192;
            arg[0] = 21;
            int got = dlcall(sym, (ptr int) 192, 4, (ptr int) 256, 4);
            if (got != 4) { return -3; }
            ptr int out = (ptr int) 256;
            if (dlclose(h) != 0) { return -4; }
            if (dlclose(h) != -1) { return -5; }
            return out[0];
        }
    "#;
    let mut inst = guest(src, ctx);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(42)));
}

#[test]
fn dlopen_rejects_garbage_module() {
    let ctx = test_ctx();
    ctx.fdtable
        .host()
        .store()
        .put("user:tester/bad.fvm", b"not a module".to_vec());
    let src = r#"
        extern int dlopen(ptr int path, int len);
        int main() {
            ptr int p = (ptr int) 64;
            p[0] = 0x2e646162; // "bad."
            p[1] = 0x6d7666;   // "fvm"
            return dlopen((ptr int) 64, 7);
        }
    "#;
    let mut inst = guest(src, ctx);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(-1)));
}

#[test]
fn host_calls_with_bad_pointers_trap() {
    let src = r#"
        extern void write_call_output(ptr int buf, int len);
        int main() {
            write_call_output((ptr int) 99999999, 16);
            return 0;
        }
    "#;
    let mut inst = guest_ctx(src);
    assert!(matches!(
        inst.invoke("main", &[]),
        Err(Trap::OutOfBoundsMemory { .. })
    ));
}

#[test]
fn missing_file_open_returns_errno() {
    let src = r#"
        extern int open(ptr int path, int len, int flags);
        int main() {
            ptr int p = (ptr int) 64;
            p[0] = 0x656e6f6e; // "none"
            return open((ptr int) 64, 4, 1);
        }
    "#;
    let mut inst = guest_ctx(src);
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(-1)));
}
