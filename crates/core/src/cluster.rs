//! The FAASM cluster: runtime instances + global tier + upload service.
//!
//! Mirrors the deployment of §5/§6.1: N runtime instances (one per host),
//! a distributed KVS for the global state tier, a shared object store for
//! uploaded code and Proto-Faaslets, and a front door that round-robins
//! incoming calls to local schedulers (the unmodified-platform ingress).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faasm_fvm::{ExecTier, ExportKind, ObjectModule};
use faasm_kvs::{
    reshard, KvError, KvServer, KvStore, RoutingCell, RoutingTable, ShardRouting, ShardStats,
    ShardedKvClient, SharedKv,
};
use faasm_net::Fabric;
use faasm_sched::{CallId, CallResult, CallSpec, RoundRobin};
use faasm_vfs::ObjectStore;
use parking_lot::Mutex;

use crate::error::CoreError;
use crate::guest::{FunctionDef, FunctionRegistry, GuestCode, NativeGuest};
use crate::instance::{FaasmInstance, InstanceConfig};
use crate::msg::{decode_msg, encode_msg, InstanceMsg};
use crate::pending::Pending;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of runtime instances (hosts).
    pub hosts: usize,
    /// KVS server worker threads (per shard).
    pub kvs_workers: usize,
    /// Global-tier shard servers: each state key (value, counters, locks,
    /// warm sets) lives on exactly one shard, chosen by rendezvous hashing.
    /// 1 reproduces the paper's single-server tier.
    pub state_shards: usize,
    /// Replicas per state key (primary included): the key's top-R
    /// rendezvous-ranked shards. Writes ack only after every backup
    /// replica applied them, so a dead shard's keys promote onto their
    /// first backup with no acknowledged write lost (a liveness monitor
    /// drives the failover epoch automatically). 1 — the default —
    /// reproduces the unreplicated tier exactly.
    pub replication_factor: usize,
    /// Per-instance configuration.
    pub instance: InstanceConfig,
    /// Default timeout for synchronous invocations.
    pub invoke_timeout: Duration,
    /// Per-instance function-side state cache budget in bytes; 0 disables
    /// caching entirely (every read rides the wire — the pre-cache
    /// behaviour, and the default).
    pub cache_bytes: usize,
    /// Consistency mode for cached keys without a per-key override (only
    /// meaningful when `cache_bytes > 0`).
    pub default_consistency: faasm_kvs::Consistency,
    /// FVM execution tier for uploaded modules. [`ExecTier::Lowered`] (the
    /// default) runs the direct-threaded compiled tier;
    /// [`ExecTier::Interpreter`] keeps the reference tree-walking
    /// interpreter. Both are observationally identical (results, traps,
    /// fuel) — see `crates/fvm/tests/lowered_diff.rs`.
    pub exec_tier: ExecTier,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            hosts: 2,
            kvs_workers: 2,
            state_shards: 1,
            replication_factor: 1,
            instance: InstanceConfig::default(),
            invoke_timeout: Duration::from_secs(60),
            cache_bytes: 0,
            default_consistency: faasm_kvs::Consistency::ReadYourWrites,
            exec_tier: ExecTier::default(),
        }
    }
}

/// Options for uploading a function.
#[derive(Debug, Clone)]
pub struct UploadOptions {
    /// Entry export (default `main`).
    pub entry: String,
    /// Initialisation export run before the Proto-Faaslet snapshot.
    pub init: Option<String>,
    /// Reset from the proto after every call.
    pub reset_after_call: bool,
}

impl Default for UploadOptions {
    fn default() -> UploadOptions {
        UploadOptions {
            entry: "main".into(),
            init: None,
            reset_after_call: true,
        }
    }
}

/// A running FAASM cluster.
pub struct Cluster {
    fabric: Fabric,
    kvs: Mutex<Vec<KvServer>>,
    /// The global tier's live routing table, shared with every instance's
    /// and driver's sharded client — publishing here redirects the whole
    /// cluster after a reshard.
    routing: Arc<RoutingCell>,
    /// Serialises reshard operations (one epoch change at a time); shared
    /// with the liveness monitor so an automatic failover and a manual
    /// reshard cannot race.
    reshard_lock: Arc<Mutex<()>>,
    monitor_stop: Arc<AtomicBool>,
    monitor_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    coord_nic: faasm_net::Nic,
    kvs_workers: usize,
    object_store: Arc<ObjectStore>,
    registry: Arc<FunctionRegistry>,
    instances: Vec<Arc<FaasmInstance>>,
    /// Shared scheduling boards (peer load + state affinity), published to
    /// every instance and read by the ingress tier's placement.
    boards: Arc<faasm_sched::SchedBoards>,
    rr: RoundRobin,
    gateway_nic: faasm_net::Nic,
    gateway_pending: Arc<Pending>,
    gateway_stop: Arc<AtomicBool>,
    gateway_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    driver_kv: SharedKv,
    call_seq: Arc<AtomicU64>,
    invoke_timeout: Duration,
    exec_tier: ExecTier,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("hosts", &self.instances.len())
            .finish()
    }
}

impl Cluster {
    /// Start a cluster with `hosts` instances and default settings.
    pub fn new(hosts: usize) -> Cluster {
        Cluster::with_config(ClusterConfig {
            hosts,
            ..ClusterConfig::default()
        })
    }

    /// Start a cluster from explicit configuration.
    pub fn with_config(config: ClusterConfig) -> Cluster {
        let fabric = Fabric::new();
        // The global tier: one fabric host per shard server, each routed
        // (it checks key ownership and speaks the resharding protocol). A
        // replicated tier gives every shard a second host for inbound
        // replica traffic, served by workers that never issue outbound
        // quorum calls.
        let shards = config.state_shards.max(1);
        let replication = config.replication_factor.clamp(1, shards);
        let kvs: Vec<KvServer>;
        let table;
        if replication > 1 {
            let main_nics: Vec<faasm_net::Nic> = (0..shards).map(|_| fabric.add_host()).collect();
            let repl_nics: Vec<faasm_net::Nic> = (0..shards).map(|_| fabric.add_host()).collect();
            let repl_hosts: Vec<faasm_net::HostId> =
                repl_nics.iter().map(faasm_net::Nic::id).collect();
            kvs = main_nics
                .into_iter()
                .zip(repl_nics)
                .enumerate()
                .map(|(i, (nic, repl_nic))| {
                    KvServer::start_replicated(
                        nic,
                        repl_nic,
                        config.kvs_workers.max(1),
                        Arc::new(KvStore::new()),
                        ShardRouting::replicated(
                            1,
                            shards,
                            i,
                            replication,
                            Vec::new(),
                            repl_hosts.clone(),
                        ),
                    )
                })
                .collect();
            table = RoutingTable::replicated(
                1,
                kvs.iter().map(KvServer::host_id).collect(),
                replication,
                Vec::new(),
                repl_hosts,
            );
        } else {
            kvs = (0..shards)
                .map(|i| {
                    KvServer::start_routed(
                        fabric.add_host(),
                        config.kvs_workers.max(1),
                        Arc::new(KvStore::new()),
                        ShardRouting::new(1, shards, i),
                    )
                })
                .collect();
            table = RoutingTable::new(1, kvs.iter().map(KvServer::host_id).collect());
        }
        let routing = RoutingCell::new(table);
        let object_store = Arc::new(ObjectStore::new());
        let registry = Arc::new(FunctionRegistry::new());
        let call_seq = Arc::new(AtomicU64::new(1));

        let boards = Arc::new(faasm_sched::SchedBoards::new());
        // `cache_bytes` turns the function-side state cache on for every
        // instance, unless the per-instance config already chose one.
        let mut instance_config = config.instance.clone();
        if instance_config.cache.is_none() && config.cache_bytes > 0 {
            instance_config.cache = Some(faasm_kvs::CacheConfig {
                max_bytes: config.cache_bytes,
                default_consistency: config.default_consistency,
                ..faasm_kvs::CacheConfig::default()
            });
        }
        let instances: Vec<Arc<FaasmInstance>> = (0..config.hosts.max(1))
            .map(|_| {
                FaasmInstance::start(
                    &fabric,
                    &routing,
                    Arc::clone(&object_store),
                    Arc::clone(&registry),
                    Arc::clone(&call_seq),
                    Arc::clone(&boards),
                    instance_config.clone(),
                )
            })
            .collect();
        let rr = RoundRobin::with_hosts(instances.iter().map(|i| i.host_id()).collect());

        // The gateway: receives results for synchronous invocations.
        let gateway_nic = fabric.add_host();
        let gateway_pending = Arc::new(Pending::default());
        let gateway_stop = Arc::new(AtomicBool::new(false));
        let gateway_thread = {
            let nic = gateway_nic.clone();
            let pending = Arc::clone(&gateway_pending);
            let stop = Arc::clone(&gateway_stop);
            std::thread::Builder::new()
                .name("gateway-bus".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match nic.recv_timeout(Duration::from_millis(20)) {
                            Ok(env) => {
                                if let Some(InstanceMsg::Result { result }) =
                                    decode_msg(&env.payload)
                                {
                                    pending.fulfill(result);
                                }
                            }
                            Err(faasm_net::NetError::Timeout) => {}
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn gateway thread")
        };

        let driver_nic = fabric.add_host();
        let driver_kv: SharedKv = Arc::new(ShardedKvClient::connect(
            driver_nic.clone(),
            Arc::clone(&routing),
        ));

        let reshard_lock = Arc::new(Mutex::new(()));
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor_thread = (replication > 1).then(|| {
            let nic = fabric.add_host();
            let cell = Arc::clone(&routing);
            let lock = Arc::clone(&reshard_lock);
            let stop = Arc::clone(&monitor_stop);
            std::thread::Builder::new()
                .name("state-liveness".into())
                .spawn(move || liveness_monitor(&nic, &cell, &lock, &stop))
                .expect("spawn liveness monitor")
        });

        Cluster {
            fabric,
            kvs: Mutex::new(kvs),
            routing,
            reshard_lock,
            monitor_stop,
            monitor_thread: Mutex::new(monitor_thread),
            coord_nic: driver_nic,
            kvs_workers: config.kvs_workers.max(1),
            object_store,
            registry,
            instances,
            boards,
            rr,
            gateway_nic,
            gateway_pending,
            gateway_stop,
            gateway_thread: Mutex::new(Some(gateway_thread)),
            driver_kv,
            call_seq,
            invoke_timeout: config.invoke_timeout,
            exec_tier: config.exec_tier,
        }
    }

    /// Upload an FL source function: the untrusted compile on "the user's
    /// machine", then the trusted decode + validate + codegen of §3.4.
    ///
    /// # Errors
    ///
    /// [`CoreError::Compile`] / [`CoreError::BadEntry`].
    pub fn upload_fl(
        &self,
        user: &str,
        function: &str,
        source: &str,
        options: UploadOptions,
    ) -> Result<(), CoreError> {
        let module = faasm_lang::compile(source).map_err(|e| CoreError::Compile(e.to_string()))?;
        let bytes = faasm_fvm::encode_module(&module);
        self.upload_module(user, function, &bytes, options)
    }

    /// Upload an encoded module binary (the paper's upload service: validate,
    /// generate object code, write to the shared object store).
    ///
    /// # Errors
    ///
    /// [`CoreError::Compile`] on validation failure, [`CoreError::BadEntry`]
    /// if the entry/init exports are missing or ill-typed.
    pub fn upload_module(
        &self,
        user: &str,
        function: &str,
        bytes: &[u8],
        options: UploadOptions,
    ) -> Result<(), CoreError> {
        let object = ObjectModule::compile_tier(bytes, self.exec_tier)
            .map_err(|e| CoreError::Compile(e.to_string()))?;
        check_entry(&object, &options.entry)?;
        if let Some(init) = &options.init {
            check_entry(&object, init)?;
        }
        // Object file artefact in the shared store (what hosts would fetch
        // in a multi-process deployment).
        self.object_store
            .put(&format!("shared/obj/{user}/{function}"), object.to_bytes());
        self.registry.insert(
            user,
            function,
            FunctionDef {
                code: GuestCode::Fvm(object),
                entry: options.entry,
                init: options.init,
                reset_after_call: options.reset_after_call,
            },
        );
        Ok(())
    }

    /// Register a trusted native guest (DESIGN.md S4 path).
    pub fn register_native(
        &self,
        user: &str,
        function: &str,
        guest: Arc<dyn NativeGuest>,
        reset_after_call: bool,
    ) {
        self.registry.insert(
            user,
            function,
            FunctionDef {
                code: GuestCode::Native(guest),
                entry: "main".into(),
                init: None,
                reset_after_call,
            },
        );
    }

    /// Invoke a function and wait for its result.
    pub fn invoke(&self, user: &str, function: &str, input: Vec<u8>) -> CallResult {
        let id = self.invoke_async(user, function, input);
        self.await_result(id)
    }

    /// Invoke asynchronously; returns the call id.
    ///
    /// Unreachable hosts are retried on the next rotation slot (re-dispatch
    /// after host failure) before the call is failed.
    pub fn invoke_async(&self, user: &str, function: &str, input: Vec<u8>) -> CallId {
        let id = CallId(self.call_seq.fetch_add(1, Ordering::Relaxed));
        self.gateway_pending.register(id.0);
        let call = CallSpec {
            id,
            user: user.to_string(),
            function: function.to_string(),
            input,
            // Driver-ingress calls root a fresh trace (unless the caller is
            // itself traced, e.g. a test following one call end to end).
            trace: match faasm_telemetry::current() {
                ctx if ctx.is_none() => faasm_telemetry::TraceCtx::new_root(),
                ctx => ctx,
            },
        };
        let msg = encode_msg(&InstanceMsg::Invoke {
            call,
            reply_to: self.gateway_nic.id(),
            forwarded: false,
        });
        let attempts = self.rr.len().max(1);
        for _ in 0..attempts {
            let Some(target) = self.rr.next() else { break };
            if self.gateway_nic.send(target, msg.clone()).is_ok() {
                return id;
            }
            // The host is gone: drop it from rotation and retry elsewhere.
            self.rr.remove(target);
        }
        self.gateway_pending
            .fulfill(CallResult::error(id, "no reachable instances"));
        id
    }

    /// Simulate the failure of instance `idx`: its fabric host disappears,
    /// its threads stop and it leaves the ingress rotation. In-flight calls
    /// that awaited results from it time out; new calls are re-dispatched
    /// to the survivors (the failure-injection path of DESIGN.md §6).
    pub fn kill_instance(&self, idx: usize) {
        let Some(instance) = self.instances.get(idx) else {
            return;
        };
        self.rr.remove(instance.host_id());
        self.fabric.remove_host(instance.host_id());
        instance.shutdown();
    }

    /// Wait for an asynchronous invocation.
    pub fn await_result(&self, id: CallId) -> CallResult {
        self.gateway_pending
            .wait(id.0, self.invoke_timeout)
            .unwrap_or_else(|| CallResult::error(id, "invocation timed out"))
    }

    /// The cluster fabric (byte accounting lives here).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Register a fresh host on the cluster fabric and return its NIC —
    /// how out-of-process tiers join the cluster network: a gateway
    /// server binds its service loop to one of these, and remote ingress
    /// clients connect from their own.
    pub fn add_fabric_host(&self) -> faasm_net::Nic {
        self.fabric.add_host()
    }

    /// The shared object store.
    pub fn object_store(&self) -> &Arc<ObjectStore> {
        &self.object_store
    }

    /// A driver-side KVS client (dataset upload, DDO initialisation),
    /// routing over every state shard and following routing epochs.
    pub fn kv(&self) -> &SharedKv {
        &self.driver_kv
    }

    /// The global tier's shard servers (test/metric inspection). Holds the
    /// tier lock while the guard lives — don't hold it across a reshard.
    pub fn state_shards(&self) -> parking_lot::MutexGuard<'_, Vec<KvServer>> {
        self.kvs.lock()
    }

    /// How many shards currently serve the global tier (live slots only).
    pub fn state_shard_count(&self) -> usize {
        self.routing.load().live_count()
    }

    /// The tier's routing cell (shared with every consumer; out-of-process
    /// tools connect their own `ShardedKvClient` through it).
    pub fn state_routing(&self) -> &Arc<RoutingCell> {
        &self.routing
    }

    /// Per-shard load reports (key count, value bytes, per-op counters) in
    /// shard-index order — the migration planner's skew signal.
    ///
    /// # Errors
    ///
    /// [`KvError`] when a shard cannot be reached.
    pub fn state_shard_stats(&self) -> Result<Vec<ShardStats>, KvError> {
        self.driver_kv.shard_stats()
    }

    /// Grow the global tier by one shard, live: boots a new `KvServer`
    /// fabric host routed at the next epoch, drives the epoch-bumped
    /// migration (freeze → handoff → commit) and publishes the new routing
    /// table. Requests in flight during the migration are redirected via
    /// `WrongEpoch`, never lost. Returns the new shard count.
    ///
    /// # Errors
    ///
    /// [`KvError`] when migration fails; the tier is rolled back to the old
    /// table and the new server is torn down.
    pub fn add_state_shard(&self) -> Result<usize, KvError> {
        let _one_at_a_time = self.reshard_lock.lock();
        let table = self.routing.load();
        let new_index = table.hosts.len();
        let server = if table.replication > 1 {
            let repl_nic = self.fabric.add_host();
            let mut repl_hosts = table.repl_hosts.clone();
            repl_hosts.push(repl_nic.id());
            KvServer::start_replicated(
                self.fabric.add_host(),
                repl_nic,
                self.kvs_workers,
                Arc::new(KvStore::new()),
                ShardRouting::replicated(
                    table.epoch + 1,
                    new_index + 1,
                    new_index,
                    table.replication,
                    table.dead.clone(),
                    repl_hosts,
                ),
            )
        } else {
            KvServer::start_routed(
                self.fabric.add_host(),
                self.kvs_workers,
                Arc::new(KvStore::new()),
                ShardRouting::new(table.epoch + 1, new_index + 1, new_index),
            )
        };
        match reshard::grow_replicated(
            &self.coord_nic,
            &self.routing,
            server.host_id(),
            server.repl_host_id(),
        ) {
            Ok(new_table) => {
                let count = new_table.live_count();
                self.kvs.lock().push(server);
                Ok(count)
            }
            Err(e) => {
                for host in server.host_ids() {
                    self.fabric.remove_host(host);
                }
                server.shutdown();
                Err(e)
            }
        }
    }

    /// Simulate the failure of the state shard at `slot`: its fabric hosts
    /// (serving and replica NIC) disappear and its threads stop. Nothing
    /// in the routing table is touched — on a replicated tier the liveness
    /// monitor detects the dead slot and drives the failover epoch, after
    /// which the shard's keys are served by their promoted backups.
    pub fn kill_state_shard(&self, slot: usize) {
        let table = self.routing.load();
        let Some(&host) = table.hosts.get(slot) else {
            return;
        };
        let mut kvs = self.kvs.lock();
        if let Some(idx) = kvs.iter().position(|s| s.host_id() == host) {
            let server = kvs.remove(idx);
            drop(kvs);
            faasm_kvs::testutil::crash_server(&self.fabric, server);
        }
    }

    /// Manually drive the failover of `slot` (what the liveness monitor
    /// does on detection): tombstone the slot at the next epoch, promote
    /// its keys' backups and restore replication. Returns the new table.
    ///
    /// # Errors
    ///
    /// [`KvError`] when the slot is not live or is the last live slot.
    pub fn fail_over_state_shard(&self, slot: usize) -> Result<Arc<RoutingTable>, KvError> {
        let _one_at_a_time = self.reshard_lock.lock();
        reshard::failover(&self.coord_nic, &self.routing, slot)
    }

    /// Retire the tier's last shard, live: its keys migrate to their new
    /// owners under the shrunk table, the epoch commits, the table
    /// publishes, and the retired server leaves the fabric. Returns the
    /// new shard count.
    ///
    /// # Errors
    ///
    /// [`KvError`] when only one shard remains or migration fails.
    pub fn remove_state_shard(&self) -> Result<usize, KvError> {
        let _one_at_a_time = self.reshard_lock.lock();
        let table = self.routing.load();
        let (new_table, retired) = if table.replication > 1 || !table.dead.is_empty() {
            // Replicated (or tombstoned) tier: no migration needed — retire
            // the last live slot; its keys' backups already hold everything.
            let slot = *table
                .live_slots()
                .last()
                .ok_or_else(|| KvError::Server("no live state shards".into()))?;
            reshard::retire(&self.coord_nic, &self.routing, slot)?
        } else {
            reshard::shrink(&self.coord_nic, &self.routing)?
        };
        let mut kvs = self.kvs.lock();
        if let Some(idx) = kvs.iter().position(|s| s.host_id() == retired) {
            let server = kvs.remove(idx);
            drop(kvs);
            for host in server.host_ids() {
                self.fabric.remove_host(host);
            }
            server.shutdown();
        }
        Ok(new_table.live_count())
    }

    /// The runtime instances.
    pub fn instances(&self) -> &[Arc<FaasmInstance>] {
        &self.instances
    }

    /// The shared scheduling boards (peer load + state affinity).
    pub fn boards(&self) -> &Arc<faasm_sched::SchedBoards> {
        &self.boards
    }

    /// Sum of a metric across instances.
    pub fn total_calls(&self) -> u64 {
        self.instances.iter().map(|i| i.metrics().calls()).sum()
    }

    /// Total billable memory across instances (Fig. 6c).
    pub fn billable_gb_seconds(&self) -> f64 {
        self.instances
            .iter()
            .map(|i| i.metrics().billable_gb_seconds())
            .sum()
    }

    /// Aggregate host memory bytes (Faaslets + state + file caches).
    pub fn host_memory_bytes(&self) -> usize {
        self.instances.iter().map(|i| i.host_memory_bytes()).sum()
    }

    /// Stop every component. Called automatically on drop.
    pub fn shutdown(&self) {
        self.monitor_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.monitor_thread.lock().take() {
            let _ = t.join();
        }
        for i in &self.instances {
            i.shutdown();
        }
        self.gateway_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.gateway_thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// How often the liveness monitor sweeps the tier, how long it waits for
/// one shard's pong, and how many consecutive failures condemn a slot.
/// A removed fabric host (a crash, not a partition) errors instantly and
/// skips the strike count, so crash detection is one sweep, not three.
const MONITOR_INTERVAL: Duration = Duration::from_millis(20);
const MONITOR_PING_TIMEOUT: Duration = Duration::from_millis(250);
const MONITOR_STRIKES: u32 = 3;

fn liveness_monitor(
    nic: &faasm_net::Nic,
    cell: &RoutingCell,
    reshard_lock: &Mutex<()>,
    stop: &AtomicBool,
) {
    let ping = faasm_kvs::codec::encode_request(&faasm_kvs::Request::Ping);
    let mut strikes: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    let mut last_epoch = 0u64;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(MONITOR_INTERVAL);
        let table = cell.load();
        if table.epoch != last_epoch {
            // Any epoch change re-arms detection from scratch.
            strikes.clear();
            last_epoch = table.epoch;
        }
        for slot in table.live_slots() {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let verdict = nic.call_timeout(table.hosts[slot], ping.clone(), MONITOR_PING_TIMEOUT);
            let condemned = match verdict {
                Ok(_) => {
                    strikes.remove(&slot);
                    false
                }
                // The host is gone from the fabric: a crash, not a slow
                // network — condemn immediately.
                Err(faasm_net::NetError::UnknownHost(_)) => true,
                Err(_) => {
                    let s = strikes.entry(slot).or_insert(0);
                    *s += 1;
                    *s >= MONITOR_STRIKES
                }
            };
            if condemned {
                let _one_at_a_time = reshard_lock.lock();
                // Re-check under the lock: a manual reshard or an earlier
                // failover may already have handled this slot.
                let cur = cell.load();
                if cur.epoch == table.epoch && cur.is_live(slot) && cur.live_count() > 1 {
                    let _ = reshard::failover(nic, cell, slot);
                }
                strikes.remove(&slot);
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
        for kvs in self.kvs.lock().drain(..) {
            kvs.shutdown();
        }
    }
}

fn check_entry(object: &ObjectModule, name: &str) -> Result<(), CoreError> {
    let Some(idx) = object.module.find_export(name, ExportKind::Func) else {
        return Err(CoreError::BadEntry(format!("missing export {name:?}")));
    };
    let ty = object
        .module
        .func_type(idx)
        .ok_or_else(|| CoreError::BadEntry(format!("export {name:?} has no type")))?;
    if !ty.params.is_empty() {
        return Err(CoreError::BadEntry(format!(
            "entry {name:?} must take no parameters, has {}",
            ty.params.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{ChainRouter, NativeApi};
    use faasm_sched::CallStatus;

    const ECHO: &str = r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);
        int main() {
            int n = input_size();
            read_call_input((ptr int) 1024, n);
            write_call_output((ptr int) 1024, n);
            return 0;
        }
    "#;

    #[test]
    fn end_to_end_invoke() {
        let cluster = Cluster::new(2);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let r = cluster.invoke("u", "echo", b"round trip".to_vec());
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, b"round trip");
        assert_eq!(cluster.total_calls(), 1);
    }

    #[test]
    fn unknown_function_errors() {
        let cluster = Cluster::new(1);
        let r = cluster.invoke("u", "ghost", vec![]);
        assert!(matches!(r.status, CallStatus::Error(_)));
    }

    #[test]
    fn upload_rejects_bad_module_and_bad_entry() {
        let cluster = Cluster::new(1);
        assert!(matches!(
            cluster.upload_module("u", "junk", b"garbage", UploadOptions::default()),
            Err(CoreError::Compile(_))
        ));
        // Valid module but entry takes parameters.
        let src = "int main(int x) { return x; }";
        assert!(matches!(
            cluster.upload_fl("u", "badentry", src, UploadOptions::default()),
            Err(CoreError::BadEntry(_))
        ));
        // Missing entry.
        let src = "int other() { return 1; }";
        assert!(matches!(
            cluster.upload_fl("u", "noentry", src, UploadOptions::default()),
            Err(CoreError::BadEntry(_))
        ));
    }

    #[test]
    fn guest_return_code_propagates() {
        let cluster = Cluster::new(1);
        cluster
            .upload_fl(
                "u",
                "fail",
                "int main() { return 7; }",
                UploadOptions::default(),
            )
            .unwrap();
        let r = cluster.invoke("u", "fail", vec![]);
        assert_eq!(r.status, CallStatus::Failed(7));
        assert_eq!(r.return_code(), 7);
    }

    #[test]
    fn warm_faaslets_are_reused() {
        let cluster = Cluster::new(1);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        for i in 0..5 {
            let r = cluster.invoke("u", "echo", vec![i]);
            assert_eq!(r.status, CallStatus::Success);
        }
        let m = cluster.instances()[0].metrics();
        assert_eq!(m.calls(), 5);
        assert!(
            m.warm_starts() >= 3,
            "expected warm reuse, got {} warm / {} cold / {} restore",
            m.warm_starts(),
            m.cold_starts(),
            m.proto_restores()
        );
    }

    #[test]
    fn chained_calls_across_functions() {
        let cluster = Cluster::new(2);
        cluster
            .upload_fl(
                "u",
                "child",
                r#"
                extern int input_size();
                extern int read_call_input(ptr int buf, int len);
                extern void write_call_output(ptr int buf, int len);
                int main() {
                    read_call_input((ptr int) 1024, 4);
                    ptr int p = (ptr int) 1024;
                    p[0] = p[0] * 2;
                    write_call_output((ptr int) 1024, 4);
                    return 0;
                }
                "#,
                UploadOptions::default(),
            )
            .unwrap();
        cluster
            .upload_fl(
                "u",
                "parent",
                r#"
                extern int input_size();
                extern int read_call_input(ptr int buf, int len);
                extern void write_call_output(ptr int buf, int len);
                extern long chain_call(ptr int name, int name_len, ptr int in, int in_len);
                extern int await_call(long id);
                extern int get_call_output(long id, ptr int buf, int len);
                int main() {
                    read_call_input((ptr int) 1024, 4);
                    // name "child" at 2048.
                    ptr int nm = (ptr int) 2048;
                    nm[0] = 0x6c696863; // "chil"
                    nm[1] = 0x64;       // "d"
                    long id = chain_call((ptr int) 2048, 5, (ptr int) 1024, 4);
                    if (await_call(id) != 0) { return -1; }
                    if (get_call_output(id, (ptr int) 3072, 4) != 4) { return -2; }
                    ptr int out = (ptr int) 3072;
                    out[0] = out[0] + 1;
                    write_call_output((ptr int) 3072, 4);
                    return 0;
                }
                "#,
                UploadOptions::default(),
            )
            .unwrap();
        let r = cluster.invoke("u", "parent", 20i32.to_le_bytes().to_vec());
        assert_eq!(r.status, CallStatus::Success, "status: {:?}", r.status);
        assert_eq!(i32::from_le_bytes(r.output[..4].try_into().unwrap()), 41);
    }

    #[test]
    fn native_guests_share_state_across_calls() {
        let cluster = Cluster::new(2);
        let adder: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
            let entry = api.state("counter", 8).map_err(faasm_fvm::Trap::host)?;
            let mut buf = [0u8; 8];
            entry.read(0, &mut buf).map_err(faasm_fvm::Trap::host)?;
            let v = u64::from_le_bytes(buf) + 1;
            entry
                .write(0, &v.to_le_bytes())
                .map_err(faasm_fvm::Trap::host)?;
            entry.push_full().map_err(faasm_fvm::Trap::host)?;
            api.write_output(&v.to_le_bytes());
            Ok(0)
        });
        cluster.register_native("u", "add", adder, false);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let r = cluster.invoke("u", "add", vec![]);
            assert_eq!(r.status, CallStatus::Success);
            seen.push(u64::from_le_bytes(r.output[..8].try_into().unwrap()));
        }
        // Counts may interleave across hosts (each host has its own local
        // replica pulled at first access), but the global value must reach
        // at least the per-host maximum and the last pushes must be
        // monotonic per host. The strongest portable assertion: the global
        // counter is positive and ≤ 6.
        let global = cluster.kv().get("counter").unwrap().unwrap();
        let v = u64::from_le_bytes(global[..8].try_into().unwrap());
        assert!((1..=6).contains(&v), "global counter {v}, seen {seen:?}");
    }

    #[test]
    fn concurrent_invocations_complete() {
        let cluster = Arc::new(Cluster::new(2));
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let ids: Vec<_> = (0..32u8)
            .map(|i| cluster.invoke_async("u", "echo", vec![i]))
            .collect();
        for (i, id) in ids.into_iter().enumerate() {
            let r = cluster.await_result(id);
            assert_eq!(r.status, CallStatus::Success);
            assert_eq!(r.output, vec![i as u8]);
        }
        assert_eq!(cluster.total_calls(), 32);
    }

    #[test]
    fn batch_submit_matches_per_call_submit() {
        use crate::ctx::ChainRouter;
        use crate::instance::PlacedCall;
        use std::sync::mpsc;

        let cluster = Cluster::new(1);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let inst = &cluster.instances()[0];

        // Per-call path: one submit_placed + await_call each.
        let per_call: Vec<Vec<u8>> = (0..8u8)
            .map(|i| {
                let id = inst.submit_placed("u", "echo", vec![i, i + 1]);
                inst.await_call(id)
            })
            .map(|r| {
                assert_eq!(r.status, CallStatus::Success);
                r.output
            })
            .collect();

        // Batch path: one bus message for all eight, completion callbacks.
        let (tx, rx) = mpsc::channel();
        let calls: Vec<PlacedCall> = (0..8u8)
            .map(|i| {
                let tx = tx.clone();
                PlacedCall {
                    user: "u".into(),
                    function: "echo".into(),
                    input: vec![i, i + 1],
                    trace: faasm_telemetry::TraceCtx::NONE,
                    on_complete: Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                }
            })
            .collect();
        let ids = inst.submit_placed_batch(calls);
        assert_eq!(ids.len(), 8);
        let mut batched: Vec<(u64, Vec<u8>)> = (0..8)
            .map(|_| {
                let r = rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("batch completion");
                assert_eq!(r.status, CallStatus::Success);
                (r.id.0, r.output)
            })
            .collect();
        batched.sort_by_key(|(id, _)| *id);
        let batched: Vec<Vec<u8>> = batched.into_iter().map(|(_, out)| out).collect();
        assert_eq!(batched, per_call, "batched results must match per-call");
        assert_eq!(cluster.total_calls(), 16);
    }

    #[test]
    fn shutdown_answers_every_batched_callback() {
        use crate::instance::PlacedCall;
        use std::sync::mpsc;
        use std::time::Duration;

        // One host, slow native calls: most of the batch is still queued
        // when shutdown runs. Every callback must fire anyway — a leaked
        // callback would wedge any ingress tier counting in-flight slots.
        let cluster = Cluster::new(1);
        let slow: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
            std::thread::sleep(Duration::from_millis(20));
            api.write_output(b"done");
            Ok(0)
        });
        cluster.register_native("u", "slow", slow, false);
        let inst = &cluster.instances()[0];
        let (tx, rx) = mpsc::channel();
        let calls: Vec<PlacedCall> = (0..16)
            .map(|_| {
                let tx = tx.clone();
                PlacedCall {
                    user: "u".into(),
                    function: "slow".into(),
                    input: Vec::new(),
                    trace: faasm_telemetry::TraceCtx::NONE,
                    on_complete: Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                }
            })
            .collect();
        let ids = inst.submit_placed_batch(calls);
        assert_eq!(ids.len(), 16);
        std::thread::sleep(Duration::from_millis(5));
        inst.shutdown();
        for i in 0..16 {
            let r = rx
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("callback {i} never fired after shutdown"));
            assert!(
                matches!(r.status, CallStatus::Success | CallStatus::Error(_)),
                "terminal answer expected, got {:?}",
                r.status
            );
        }
    }

    #[test]
    fn forward_is_counted_only_on_successful_send() {
        use crate::ctx::ChainRouter;

        // Positive case: a live warm peer really receives the forward.
        let cluster = Cluster::new(2);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let a = &cluster.instances()[0];
        let b = &cluster.instances()[1];
        // Warm the function on B only, so A's local decision forwards.
        let id = b.submit_placed("u", "echo", vec![1]);
        assert_eq!(b.await_call(id).status, CallStatus::Success);
        let r = a.invoke_local("u", "echo", vec![2]);
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(a.metrics().forwarded(), 1, "delivered forward counts");

        // Regression: a vanished peer that falls back to local execution
        // must NOT count as forwarded (stats measured, not modelled).
        let cluster = Cluster::new(2);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let b = &cluster.instances()[1];
        let id = b.submit_placed("u", "echo", vec![1]);
        assert_eq!(b.await_call(id).status, CallStatus::Success);
        // Kill B: it stays in the global warm set (stale entry), but the
        // fabric send to it now fails.
        cluster.kill_instance(1);
        let a = &cluster.instances()[0];
        let r = a.invoke_local("u", "echo", vec![3]);
        assert_eq!(r.status, CallStatus::Success, "local fallback executes");
        assert_eq!(
            a.metrics().forwarded(),
            0,
            "a send that never left the host is not a forward"
        );
    }

    #[test]
    fn proto_faaslet_published_to_state_tier() {
        let cluster = Cluster::new(1);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        cluster.invoke("u", "echo", vec![1]);
        // First cold start publishes the proto as content-addressed chunks
        // plus a manifest through the global tier.
        let inst = &cluster.instances()[0];
        let manifest_bytes = inst
            .kv()
            .get(&faasm_kvs::manifest_key("u", "echo"))
            .unwrap()
            .expect("first cold start publishes the manifest");
        let manifest = crate::snapdist::ProtoManifest::from_bytes(&manifest_bytes).unwrap();
        for d in manifest.all_digests() {
            assert_eq!(
                inst.kv().exists(&faasm_kvs::chunk_key(&d)),
                Ok(true),
                "every manifest chunk is in the tier"
            );
        }
        let stats = inst.snapshot_stats();
        assert!(stats.chunks_published > 0, "publisher shipped chunks");
        // Object file stored at upload.
        assert!(cluster.object_store().exists("shared/obj/u/echo"));
    }

    #[test]
    fn concurrent_cold_starts_coalesce_to_one_capture() {
        // A barrier-released burst of first calls for one function must
        // produce exactly one cold start + capture: the single-flight
        // resolver elects a leader and parks the rest, which then restore.
        let cluster = Arc::new(Cluster::new(1));
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let burst = 8;
        let barrier = Arc::new(std::sync::Barrier::new(burst));
        let handles: Vec<_> = (0..burst)
            .map(|i| {
                let cluster = Arc::clone(&cluster);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let inst = Arc::clone(&cluster.instances()[0]);
                    barrier.wait();
                    let id = inst.submit_placed("u", "echo", vec![i as u8]);
                    inst.await_call(id)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().status, CallStatus::Success);
        }
        let m = cluster.instances()[0].metrics();
        assert_eq!(
            m.cold_starts(),
            1,
            "burst coalesced to one capture ({} restores / {} warm)",
            m.proto_restores(),
            m.warm_starts()
        );
        assert_eq!(
            m.cold_starts() + m.proto_restores() + m.warm_starts(),
            burst as u64
        );
    }

    #[test]
    fn chunk_fetched_proto_restores_bitwise_identical() {
        let cluster = Cluster::new(2);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let a = &cluster.instances()[0];
        let b = &cluster.instances()[1];
        // A cold-starts, captures and publishes chunks + manifest.
        let id = a.submit_placed("u", "echo", vec![1]);
        assert_eq!(a.await_call(id).status, CallStatus::Success);
        // B resolves through the snapshot plane: manifest fetch, chunk
        // multi-get, digest verify, assembly — no cold start.
        let id = b.submit_placed("u", "echo", vec![2]);
        assert_eq!(b.await_call(id).status, CallStatus::Success);
        assert_eq!(b.metrics().cold_starts(), 0, "B restored, never compiled");
        assert_eq!(b.metrics().proto_restores(), 1);
        let stats = b.snapshot_stats();
        assert!(stats.fetches >= 1);
        assert!(stats.chunks_fetched >= 1, "chunks came over the wire");
        assert_eq!(stats.verify_failures, 0);
        // The fetched proto is bitwise identical to the captured one.
        assert_eq!(
            a.proto_bytes("u", "echo").unwrap(),
            b.proto_bytes("u", "echo").unwrap(),
            "chunk-fetched proto differs from the locally captured one"
        );
    }

    #[test]
    fn corrupt_chunk_rejected_and_repaired_by_republish() {
        let cluster = Cluster::new(2);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let a = &cluster.instances()[0];
        let b = &cluster.instances()[1];
        let id = a.submit_placed("u", "echo", vec![1]);
        assert_eq!(a.await_call(id).status, CallStatus::Success);
        // Corrupt one published page chunk in the tier.
        let manifest_bytes = a
            .kv()
            .get(&faasm_kvs::manifest_key("u", "echo"))
            .unwrap()
            .unwrap();
        let manifest = crate::snapdist::ProtoManifest::from_bytes(&manifest_bytes).unwrap();
        let victim = manifest.pages[0];
        a.kv()
            .set(&faasm_kvs::chunk_key(&victim), b"not the chunk".to_vec())
            .unwrap();
        // B's fetch must reject the chunk at the digest check and fall back
        // to a cold start — never a corrupt restore.
        let id = b.submit_placed("u", "echo", vec![2]);
        assert_eq!(b.await_call(id).status, CallStatus::Success);
        assert!(b.snapshot_stats().verify_failures >= 1);
        assert_eq!(b.metrics().cold_starts(), 1, "fallback was a cold start");
        // The verify deleted the corrupt chunk, so B's own publish repaired
        // it: the tier's bytes hash to the key again.
        let repaired = b
            .kv()
            .get(&faasm_kvs::chunk_key(&victim))
            .unwrap()
            .expect("chunk republished");
        assert_eq!(faasm_kvs::Digest::of(&repaired), victim);
    }

    #[test]
    fn prestage_installs_proto_before_first_call() {
        let cluster = Cluster::new(2);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        let a = &cluster.instances()[0];
        let b = &cluster.instances()[1];
        let id = a.submit_placed("u", "echo", vec![1]);
        assert_eq!(a.await_call(id).status, CallStatus::Success);
        // Pre-stage B the way the autoscaler does: push the manifest over
        // the bus, then wait for B's fetcher to install the proto.
        assert!(a.push_prestage("u", "echo", b.host_id()));
        for _ in 0..400 {
            if b.has_proto("u", "echo") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(b.has_proto("u", "echo"), "pre-stage never landed");
        assert_eq!(b.snapshot_stats().prestages, 1);
        // B's first call is now a pure CoW restore.
        let id = b.submit_placed("u", "echo", vec![2]);
        assert_eq!(b.await_call(id).status, CallStatus::Success);
        assert_eq!(b.metrics().cold_starts(), 0);
        assert_eq!(b.metrics().proto_restores(), 1);
    }

    #[test]
    fn billable_memory_accumulates() {
        let cluster = Cluster::new(1);
        cluster
            .upload_fl("u", "echo", ECHO, UploadOptions::default())
            .unwrap();
        cluster.invoke("u", "echo", vec![0; 128]);
        assert!(cluster.billable_gb_seconds() > 0.0);
        assert!(cluster.host_memory_bytes() > 0);
    }
}
